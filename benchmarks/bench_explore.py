"""Island-model exploration benchmark: wall-clock and front quality.

Run as a script (CI bench smoke job)::

    PYTHONPATH=src python benchmarks/bench_explore.py --quick --out bench-out

or under pytest::

    pytest benchmarks/bench_explore.py -s

The full report runs DT-large twice: a single-process exploration
(``islands=1``) as the quality reference, and the 8-island engine in
worker processes.  The headline target: the island run must reach *at
least* the single-process run's final front hypervolume in at least
``_TARGET_SPEEDUP`` times less wall-clock.  On a one-core box that
speedup is algorithmic, not parallel — each island evolves and selects
over a 1/8th shard, so its SPEA2 pool, its repair churn, and its
evaluator working set all shrink, while migration keeps the shards
converging on one front.

Determinism is asserted alongside: the multi-process island front must
be byte-identical to the inline serial reference of the same request,
and re-running the same request must reproduce it.
"""

import argparse
import json
import sys
import time

from repro.dse import ExploreRequest
from repro.dse.islands import run_explore
from repro.obs.bench import bench_timer, write_bench_report
from repro.serve.encoding import exploration_result_to_dict

_SEED = 7

#: The 8-island run must reach the single-process front quality at
#: least this many times faster (wall-clock, same box, same seed).
_TARGET_SPEEDUP = 3.0

#: Full-mode configuration (DT-large).
_SUITE = "dt-large"
_POPULATION = 128
#: The single-process reference runs until its front has effectively
#: converged (it no longer changes from generation 14 to 16), so the
#: quality bar the islands must clear is the baseline's best.
_SINGLE_GENERATIONS = 16
_ISLANDS = 8
_ISLAND_GENERATIONS = 4
#: Full-mode islands broadcast elites all-to-all at every second
#: generation: on DT-large the injected migrants are what pulls the
#: small shards past the reference front this early in the run.
_MIGRATION_EVERY = 2
_TOPOLOGY = "all"

#: Quick-mode configuration (CI smoke, cruise).
_QUICK_SUITE = "cruise"
_QUICK_POPULATION = 16
_QUICK_GENERATIONS = 6
_QUICK_ISLANDS = 4
_QUICK_MIGRATION_EVERY = 3


def front_hypervolume(pareto, ref_power: float) -> float:
    """Dominated power x service area w.r.t. ``(ref_power, 0)``.

    The reference power must be shared between compared fronts; pass
    the maximum over all of them (scaled up) so every point dominates
    the reference.
    """
    best = {}
    for point in pareto:
        if point.service not in best or point.power < best[point.service]:
            best[point.service] = point.power
    services = sorted(best, reverse=True)
    hv, min_power = 0.0, float("inf")
    for index, service in enumerate(services):
        # Between this service level and the next lower one, the front's
        # power is the best among all points serving at least this much.
        min_power = min(min_power, best[service])
        floor = services[index + 1] if index + 1 < len(services) else 0.0
        width = ref_power - min_power
        if width > 0 and service > floor:
            hv += width * (service - floor)
    return hv


def _canonical(result) -> str:
    return json.dumps(exploration_result_to_dict(result), sort_keys=True)


def _run(request, execution, timer_name):
    started = time.perf_counter()
    with bench_timer(timer_name).time():
        result = run_explore(request, execution=execution)
    return result, time.perf_counter() - started


def _row(label, islands, generations, result, seconds, hypervolume):
    return {
        "label": label,
        "islands": islands,
        "generations": generations,
        "evaluations": result.statistics.evaluations,
        "seconds": seconds,
        "hypervolume": hypervolume,
        "front_size": len(result.pareto),
    }


def run_report(quick: bool = False) -> dict:
    """Single-process vs. island rows plus the headline verdicts."""
    if quick:
        suite, population = _QUICK_SUITE, _QUICK_POPULATION
        islands, single_generations = _QUICK_ISLANDS, _QUICK_GENERATIONS
        island_generations = _QUICK_GENERATIONS
        migration_every = _QUICK_MIGRATION_EVERY
        topology = "ring"
    else:
        suite, population = _SUITE, _POPULATION
        islands, single_generations = _ISLANDS, _SINGLE_GENERATIONS
        island_generations = _ISLAND_GENERATIONS
        migration_every = _MIGRATION_EVERY
        topology = _TOPOLOGY

    def request(count, generations):
        return ExploreRequest.from_options(
            suite,
            generations=generations,
            population=population,
            seed=_SEED,
            islands=count,
            migration_every=migration_every,
            migrants=2,
            topology=topology,
        )

    single, single_seconds = _run(
        request(1, single_generations), "inline", f"explore.{suite}.single"
    )
    island_request = request(islands, island_generations)
    processed, island_seconds = _run(
        island_request, "process", f"explore.{suite}.islands"
    )
    # The serial in-process reference of the identical request: the
    # multi-process trajectory must match it bit for bit.
    reference, _ = _run(
        island_request, "inline", f"explore.{suite}.islands_ref"
    )
    byte_identical = _canonical(processed) == _canonical(reference)

    fronts = single.pareto + processed.pareto
    ref_power = max((p.power for p in fronts), default=1.0) * 1.05 + 1.0
    single_hv = front_hypervolume(single.pareto, ref_power)
    island_hv = front_hypervolume(processed.pareto, ref_power)
    speedup = single_seconds / island_seconds if island_seconds else None
    return {
        "suite": suite,
        "seed": _SEED,
        "rows": [
            _row("single-process", 1, single_generations, single,
                 single_seconds, single_hv),
            _row(f"{islands}-island", islands, island_generations,
                 processed, island_seconds, island_hv),
        ],
        "reference_power": ref_power,
        "speedup": speedup,
        "target_speedup": _TARGET_SPEEDUP,
        "quality_reached": island_hv >= single_hv,
        "byte_identical": byte_identical,
        "quick": quick,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_island_front_deterministic_and_quality_holds():
    payload = run_report(quick=True)
    assert payload["byte_identical"]
    assert payload["quality_reached"]
    write_bench_report("explore", payload)


# ----------------------------------------------------------------------
# script entry point (CI bench smoke job)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small cruise run, determinism/quality checks only (CI smoke)",
    )
    parser.add_argument(
        "--out", help="directory for BENCH_explore.json (or REPRO_BENCH_DIR)"
    )
    args = parser.parse_args(argv)

    payload = run_report(quick=args.quick)
    path = write_bench_report("explore", payload, out_dir=args.out)

    print(f"{'configuration':>16} | {'gens':>4} | {'evals':>6} | "
          f"{'seconds':>8} | {'hv':>8} | front")
    print("-" * 62)
    for row in payload["rows"]:
        print(
            f"{row['label']:>16} | {row['generations']:>4} | "
            f"{row['evaluations']:>6} | {row['seconds']:>8.2f} | "
            f"{row['hypervolume']:>8.2f} | {row['front_size']}"
        )
    if path is not None:
        print(f"\nwrote {path}")

    if not payload["byte_identical"]:
        print(
            "FAIL: multi-process front differs from the serial reference",
            file=sys.stderr,
        )
        return 1
    if not payload["quality_reached"]:
        print(
            "FAIL: island front quality below the single-process reference",
            file=sys.stderr,
        )
        return 1
    if not payload["quick"] and payload["speedup"] < _TARGET_SPEEDUP:
        print(
            f"FAIL: island speedup {payload['speedup']:.2f}x < "
            f"{_TARGET_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    if payload["quick"]:
        print(
            "\nquick smoke: island front byte-identical across executions "
            "and at least reference quality (speedup not asserted)"
        )
    else:
        print(
            f"\nDT-large: islands reached the reference front quality "
            f"{payload['speedup']:.2f}x faster (target >= "
            f"{_TARGET_SPEEDUP}x), byte-identical across executions"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
