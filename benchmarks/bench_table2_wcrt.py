"""Regenerates Table 2: WCRT of the two critical Cruise applications.

Run:  pytest benchmarks/bench_table2_wcrt.py --benchmark-only -s

Paper reference values (ms) — ours differ in magnitude (different
benchmark reconstruction and back-end) but must reproduce the shape:
``Proposed >= max(Adhoc, WC-Sim)`` and ``Naive >= Proposed`` everywhere.

=========  =====  =====  =====  =====  =====  =====
 method      Mapping 1     Mapping 2     Mapping 3
=========  =====  =====  =====  =====  =====  =====
 Adhoc       661    462    819    723    771    525
 WC-Sim      661    521    649    568    678    480
 Proposed    666    552    842    815    810    563
 Naive       796    641   1035    981   1007    915
=========  =====  =====  =====  =====  =====  =====
"""

import pytest

from repro.experiments.table2 import format_table2, run_table2
from repro.obs.bench import bench_timer, write_bench_report

PROFILES = 400  # paper: 10,000; scaled for benchmark runtime

_PAYLOAD = {}


@pytest.fixture(scope="module", autouse=True)
def _bench_telemetry():
    yield
    write_bench_report("table2_wcrt", _PAYLOAD)


@pytest.fixture(scope="module")
def table2_cells():
    with bench_timer("table2_wcrt.run_table2").time():
        cells = run_table2(profiles=PROFILES, seed=2014)
    _PAYLOAD["profiles"] = PROFILES
    _PAYLOAD["cells"] = [
        {"method": c.method, "mapping": c.mapping, "app": c.app, "wcrt": c.wcrt}
        for c in cells
    ]
    return cells


def test_table2_shape(table2_cells):
    """The orderings Table 2 demonstrates must hold in every column."""
    by_key = {(c.method, c.mapping, c.app): c.wcrt for c in table2_cells}
    mappings = sorted({c.mapping for c in table2_cells})
    apps = sorted({c.app for c in table2_cells})
    for mapping in mappings:
        for app in apps:
            adhoc = by_key[("Adhoc", mapping, app)]
            wcsim = by_key[("WC-Sim", mapping, app)]
            proposed = by_key[("Proposed", mapping, app)]
            naive = by_key[("Naive", mapping, app)]
            assert proposed >= adhoc - 1e-6, (mapping, app)
            assert proposed >= wcsim - 1e-6, (mapping, app)
            assert naive >= proposed - 1e-6, (mapping, app)


def test_naive_strictly_more_pessimistic_somewhere(table2_cells):
    """Naive's extra pessimism must materialise in at least one cell."""
    by_key = {(c.method, c.mapping, c.app): c.wcrt for c in table2_cells}
    gaps = [
        by_key[("Naive", m, a)] - by_key[("Proposed", m, a)]
        for m in (1, 2, 3)
        for a in ("cc", "mon")
    ]
    assert max(gaps) > 1.0


def test_print_table(table2_cells):
    print()
    print(format_table2(table2_cells))


def bench_proposed(benchmark):
    from repro.core import MixedCriticalityAnalysis
    from repro.experiments.table2 import TABLE2_DROPPED
    from repro.suites.cruise import cruise_benchmark, cruise_sample_mappings

    hardened, mappings = cruise_sample_mappings()
    arch = cruise_benchmark().problem.architecture
    analysis = MixedCriticalityAnalysis()
    benchmark(
        lambda: analysis.analyze(hardened, arch, mappings[0], TABLE2_DROPPED)
    )


def test_benchmark_proposed_analysis(benchmark):
    """Wall-clock of one Algorithm-1 run on Cruise mapping 1."""
    bench_proposed(benchmark)


def test_benchmark_naive_analysis(benchmark):
    from repro.core import NaiveAnalysis
    from repro.experiments.table2 import TABLE2_DROPPED
    from repro.suites.cruise import cruise_benchmark, cruise_sample_mappings

    hardened, mappings = cruise_sample_mappings()
    arch = cruise_benchmark().problem.architecture
    analysis = NaiveAnalysis()
    benchmark(
        lambda: analysis.analyze(hardened, arch, mappings[0], TABLE2_DROPPED)
    )


def test_benchmark_wcsim_100_profiles(benchmark):
    from repro.experiments.table2 import TABLE2_DROPPED
    from repro.sim import MonteCarloEstimator, Simulator
    from repro.suites.cruise import cruise_benchmark, cruise_sample_mappings

    hardened, mappings = cruise_sample_mappings()
    arch = cruise_benchmark().problem.architecture
    simulator = Simulator(hardened, arch, mappings[0], dropped=TABLE2_DROPPED)
    estimator = MonteCarloEstimator(simulator)
    benchmark(lambda: estimator.estimate(profiles=100, seed=1))
