"""Regenerates the §5.2 power comparison: optimising with task dropping
enabled vs disabled.

Run:  pytest benchmarks/bench_sec52_power.py --benchmark-only -s

Paper reference: without task dropping the optimized designs spend
14.66 % (DT-med), 16.16 % (DT-large) and 18.52 % (Cruise) more power.
The reproduced shape: whenever both optimizations find feasible designs,
the no-dropping optimum is no cheaper — and typically measurably more
expensive — than the dropping-enabled one.
"""

import pytest

from repro.experiments.dropping import (
    format_power_rows,
    run_power_comparison,
)
from repro.obs.bench import bench_timer, write_bench_report

GENERATIONS = 18
POPULATION = 24

_PAYLOAD = {}


@pytest.fixture(scope="module", autouse=True)
def _bench_telemetry():
    yield
    write_bench_report("sec52_power", _PAYLOAD)


@pytest.fixture(scope="module")
def power_rows():
    with bench_timer("sec52_power.run_power_comparison").time():
        rows = run_power_comparison(
            benchmarks=("dt-med", "cruise"),
            generations=GENERATIONS,
            population=POPULATION,
            seed=2014,
        )
    _PAYLOAD["rows"] = [
        {
            "benchmark": row.benchmark,
            "power_with_dropping": row.power_with_dropping,
            "power_without_dropping": row.power_without_dropping,
            "extra_power_percent": row.extra_power_percent,
        }
        for row in rows
    ]
    return rows


def test_dropping_never_costs_power(power_rows):
    for row in power_rows:
        if row.power_with_dropping is None or row.power_without_dropping is None:
            continue
        assert row.power_without_dropping >= row.power_with_dropping - 1e-9, (
            row.benchmark
        )


def test_dropping_saves_power_somewhere(power_rows):
    gains = [
        row.extra_power_percent
        for row in power_rows
        if row.extra_power_percent is not None
    ]
    assert gains, "expected at least one benchmark with both optima found"
    assert max(gains) > 1.0, "dropping should save measurable power"


def test_print_rows(power_rows):
    print()
    print(format_power_rows(power_rows))


def test_benchmark_dse_generation(benchmark):
    """Wall-clock of a short exploration on DT-med."""
    from repro.dse import Explorer, ExplorerConfig
    from repro.suites import get_benchmark

    problem = get_benchmark("dt-med").problem
    config = ExplorerConfig.from_options(
        population=12, generations=3, seed=1
    )
    benchmark.pedantic(
        lambda: Explorer(problem, config).run(), rounds=1, iterations=1
    )
