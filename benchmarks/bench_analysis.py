"""Fast-path analysis benchmark: memoization + warm starts vs. cold runs.

Run as a script (CI bench smoke job)::

    PYTHONPATH=src python benchmarks/bench_analysis.py --quick --out bench-out

or under pytest::

    pytest benchmarks/bench_analysis.py -s

For each suite the mixed-criticality analysis runs twice on the same
hardened, mapped system over the holistic back-end — once cold
(``fast_path=None``) and once with memoization + warm starts — and the
global fixed-point sweep counter (``sched.holistic.sweeps_total``) is
compared.  The report fails (non-zero exit) when any WCRT,
schedulability verdict, or completion bound differs between the two
runs, and asserts the headline target: at least a 3x sweep reduction on
DT-large.  A window-back-end row double-checks result equality on the
default analysis family.
"""

import argparse
import random
import sys
import time

from repro.core import FastPathConfig, MixedCriticalityAnalysis
from repro.dse.chromosome import heuristic_chromosome
from repro.hardening.transform import harden
from repro.obs.bench import bench_timer, write_bench_report
from repro.obs.metrics import metrics
from repro.sched.holistic import HolisticAnalysisBackend
from repro.suites import get_benchmark

#: Deterministic seed for the heuristic mapping of each suite.
_SEED = 11

#: DT-large must shed at least this fraction of holistic sweeps.
_TARGET_RATIO = 3.0


def _design(suite: str):
    problem = get_benchmark(suite).problem
    design = heuristic_chromosome(problem, random.Random(_SEED)).decode(problem)
    hardened = harden(problem.applications, design.plan)
    return problem, design, hardened


def _run(problem, design, hardened, backend, fast_path, timer_name):
    metrics().reset()
    analysis = MixedCriticalityAnalysis(
        backend=backend,
        granularity="task",
        comm=problem.comm_model(),
        fast_path=fast_path,
    )
    started = time.perf_counter()
    with bench_timer(timer_name).time():
        result = analysis.analyze(
            hardened, problem.architecture, design.mapping, design.dropped
        )
    seconds = time.perf_counter() - started
    counters = metrics().snapshot()["counters"]
    return result, counters, seconds


def _results_equal(cold, fast):
    """Byte-identical WCRTs, verdicts, and completion bounds."""
    if set(cold.verdicts) != set(fast.verdicts):
        return False
    for name, verdict in cold.verdicts.items():
        other = fast.verdicts[name]
        if (
            verdict.wcrt != other.wcrt
            or verdict.normal_wcrt != other.normal_wcrt
            or verdict.meets_deadline != other.meets_deadline
            or verdict.worst_transition != other.worst_transition
        ):
            return False
    return cold.task_completion == fast.task_completion


def compare(suite: str, backend_name: str = "holistic") -> dict:
    """Cold vs. fast-path analysis of one suite; returns the report row."""
    problem, design, hardened = _design(suite)
    make_backend = (
        HolisticAnalysisBackend
        if backend_name == "holistic"
        else _fresh_window_backend
    )
    cold, cold_counters, cold_seconds = _run(
        problem, design, hardened, make_backend(), None,
        f"analysis.{suite}.{backend_name}.cold",
    )
    fast, fast_counters, fast_seconds = _run(
        problem, design, hardened, make_backend(), FastPathConfig(),
        f"analysis.{suite}.{backend_name}.fast",
    )
    cold_sweeps = cold_counters.get("sched.holistic.sweeps_total", 0)
    fast_sweeps = fast_counters.get("sched.holistic.sweeps_total", 0)
    return {
        "suite": suite,
        "backend": backend_name,
        "transitions": cold.transitions_analyzed,
        "sched_invocations_cold": cold_counters.get("sched.invocations", 0),
        "sched_invocations_fast": fast_counters.get("sched.invocations", 0),
        "holistic_sweeps_cold": cold_sweeps,
        "holistic_sweeps_fast": fast_sweeps,
        "sweep_ratio": (cold_sweeps / fast_sweeps) if fast_sweeps else None,
        "cache_hits": fast_counters.get("analysis.cache.hits", 0),
        "cache_misses": fast_counters.get("analysis.cache.misses", 0),
        "warmstart_seeded": fast_counters.get("analysis.warmstart.seeded", 0),
        "seconds_cold": cold_seconds,
        "seconds_fast": fast_seconds,
        "identical_results": _results_equal(cold, fast),
        "schedulable": cold.schedulable,
    }


def _fresh_window_backend():
    from repro.sched.wcrt import WindowAnalysisBackend

    return WindowAnalysisBackend()


def run_report(quick: bool = False) -> dict:
    """All comparison rows plus the headline DT-large verdict."""
    suites = ["dt-large"] if quick else ["cruise", "dt-med", "dt-large"]
    rows = [compare(suite, "holistic") for suite in suites]
    # Equality must also hold for the default (window) analysis family.
    rows.append(compare("dt-large" if quick else "dt-med", "window"))
    headline = next(
        row
        for row in rows
        if row["suite"] == "dt-large" and row["backend"] == "holistic"
    )
    return {
        "rows": rows,
        "dt_large_sweep_ratio": headline["sweep_ratio"],
        "target_sweep_ratio": _TARGET_RATIO,
        "all_identical": all(row["identical_results"] for row in rows),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_fast_path_results_identical_and_dt_large_3x():
    payload = run_report(quick=True)
    assert payload["all_identical"]
    assert payload["dt_large_sweep_ratio"] >= _TARGET_RATIO
    write_bench_report("analysis", payload)


# ----------------------------------------------------------------------
# script entry point (CI bench smoke job)
# ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="DT-large only (CI smoke)"
    )
    parser.add_argument(
        "--out", help="directory for BENCH_analysis.json (or REPRO_BENCH_DIR)"
    )
    args = parser.parse_args(argv)

    payload = run_report(quick=args.quick)
    path = write_bench_report("analysis", payload, out_dir=args.out)

    print(f"{'suite':>10} | {'backend':>8} | {'sweeps':>11} | "
          f"{'ratio':>6} | {'hits':>4} | identical")
    print("-" * 64)
    for row in payload["rows"]:
        sweeps = f"{row['holistic_sweeps_cold']}->{row['holistic_sweeps_fast']}"
        ratio = f"{row['sweep_ratio']:.2f}" if row["sweep_ratio"] else "n/a"
        print(
            f"{row['suite']:>10} | {row['backend']:>8} | {sweeps:>11} | "
            f"{ratio:>6} | {row['cache_hits']:>4} | {row['identical_results']}"
        )
    if path is not None:
        print(f"\nwrote {path}")

    if not payload["all_identical"]:
        print("FAIL: cache-on and cache-off results diverge", file=sys.stderr)
        return 1
    if payload["dt_large_sweep_ratio"] < _TARGET_RATIO:
        print(
            f"FAIL: DT-large sweep reduction "
            f"{payload['dt_large_sweep_ratio']:.2f}x < {_TARGET_RATIO}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nDT-large holistic sweeps reduced "
        f"{payload['dt_large_sweep_ratio']:.2f}x (target >= {_TARGET_RATIO}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
