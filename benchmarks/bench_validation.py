"""Safety validation of the analyses against simulated ground truth.

Run:  pytest benchmarks/bench_validation.py --benchmark-only -s

Reproduces the §5.1 safety claims over random systems: ``Proposed``
dominates every Monte-Carlo observation and ``Naive`` dominates
``Proposed``.  The printed table shows the tightness gap per application.
"""

import pytest

from repro.experiments.validation import format_validation, run_validation
from repro.obs.bench import bench_timer, write_bench_report

_PAYLOAD = {}


@pytest.fixture(scope="module", autouse=True)
def _bench_telemetry():
    yield
    write_bench_report("validation", _PAYLOAD)


@pytest.fixture(scope="module")
def validation_rows():
    with bench_timer("validation.run_validation").time():
        rows = run_validation(seeds=(1, 2, 3, 4, 5), profiles=60)
    _PAYLOAD["rows"] = [
        {
            "system": row.system,
            "safe": row.safe,
            "proposed_gap": row.proposed_gap,
            "dropped": bool(row.dropped),
        }
        for row in rows
    ]
    return rows


def test_no_safety_violations(validation_rows):
    violations = [row for row in validation_rows if not row.safe]
    assert violations == []


def test_every_system_covered(validation_rows):
    assert {row.system for row in validation_rows} == {1, 2, 3, 4, 5}
    assert len(validation_rows) == 15  # 3 applications per system


def test_gaps_are_finite_and_sane(validation_rows):
    for row in validation_rows:
        gap = row.proposed_gap
        if gap is not None and not row.dropped:
            assert 1.0 - 1e-6 <= gap < 50.0


def test_print_table(validation_rows):
    print()
    print(format_validation(validation_rows))


def test_benchmark_validation_sweep(benchmark):
    benchmark.pedantic(
        lambda: run_validation(seeds=(1,), profiles=20), rounds=1, iterations=1
    )
