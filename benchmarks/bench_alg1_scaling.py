"""Algorithm 1 cost profile over growing problem sizes (paper §3).

Run:  pytest benchmarks/bench_alg1_scaling.py --benchmark-only -s

The paper states the complexity ``O(|V|^2 + |V| * C)``: the analysis runs
the back-end once per re-executable/passively-replicated task (plus the
normal-state run).  The benchmark times the analysis for generated
systems of growing size and checks the transition count scales with the
number of hardened tasks.
"""

import random

import pytest

from repro.benchgen.tgff import GraphShape, TgffConfig, generate_problem
from repro.core import MixedCriticalityAnalysis
from repro.dse.chromosome import heuristic_chromosome
from repro.experiments.scaling import run_scaling
from repro.hardening.transform import harden
from repro.obs.bench import bench_timer, write_bench_report

_PAYLOAD = {}


@pytest.fixture(scope="module", autouse=True)
def _bench_telemetry():
    yield
    write_bench_report("alg1_scaling", _PAYLOAD)


def build(size, seed=7):
    problem = generate_problem(
        seed=seed + size,
        critical_graphs=size,
        droppable_graphs=size,
        processors=max(4, size),
        config=TgffConfig(
            shape=GraphShape(min_tasks=4, max_tasks=6),
            period_slack_range=(3.0, 5.0),
        ),
        name_prefix=f"scal{size}",
    )
    chromosome = heuristic_chromosome(problem, random.Random(seed))
    design = chromosome.decode(problem)
    hardened = harden(problem.applications, design.plan)
    return problem, design, hardened


@pytest.mark.parametrize("size", [1, 2, 4])
def test_benchmark_analysis_scaling(benchmark, size):
    problem, design, hardened = build(size)
    analysis = MixedCriticalityAnalysis(granularity="task")

    def run():
        with bench_timer(f"alg1_scaling.analyze_{size}").time():
            return analysis.analyze(
                hardened, problem.architecture, design.mapping, design.dropped
            )

    result = benchmark(run)
    # One transition per hardened (here: re-executable critical) task.
    hardened_tasks = len(hardened.reexec_counts) + len(hardened.passive_tasks)
    assert result.transitions_analyzed == hardened_tasks


@pytest.mark.parametrize("size", [4, 8])
def test_benchmark_fast_backend_scaling(benchmark, size):
    """The vectorised back-end pulls ahead as the job count grows."""
    from repro.sched.fast import FastWindowAnalysisBackend

    problem, design, hardened = build(size)
    analysis = MixedCriticalityAnalysis(
        backend=FastWindowAnalysisBackend(), granularity="task"
    )
    result = benchmark.pedantic(
        lambda: analysis.analyze(
            hardened, problem.architecture, design.mapping, design.dropped
        ),
        rounds=3,
        iterations=1,
    )
    assert result.transitions_analyzed > 0


def test_transition_count_grows_linearly():
    rows = run_scaling(sizes=(1, 2, 4), granularity="task")
    for row in rows:
        bench_timer("alg1_scaling.run_scaling").observe(row.seconds)
    _PAYLOAD["scaling_rows"] = [
        {"tasks": row.tasks, "transitions": row.transitions, "seconds": row.seconds}
        for row in rows
    ]
    transitions = [row.transitions for row in rows]
    assert transitions == sorted(transitions)
    assert transitions[-1] > transitions[0]
    print()
    print("Algorithm 1 scaling:")
    for row in rows:
        print(
            f"  |V'| = {row.tasks:4d}  transitions = {row.transitions:4d}  "
            f"{row.seconds * 1e3:8.1f} ms"
        )
