"""Communication-backend benchmarks on a comm-dominated family.

Run:  pytest benchmarks/bench_comm.py --benchmark-only -s

The contention-aware backends (shared-bus, tdma, noc-xy) pay for their
wider bounds with extra bind-time work (busy periods, slot tables, XY
routes).  These benchmarks time one full Proposed analysis per backend
on the comm-dominated synthetic family (bulk payloads, slow four-PE
fabric) and record the resulting per-graph WCRT bounds, so regressions
in either cost or tightness show up in ``BENCH_comm.json``.  The lattice
(`flat <= contended`, ARQ monotonicity) is asserted on the recorded
bounds as a safety net.
"""

import pytest

from repro.benchgen.tgff import comm_dominated_problem
from repro.comm import COMM_BACKENDS
from repro.core.factory import make_analysis
from repro.model.serialization import SystemBundle
from repro.obs.bench import bench_timer, write_bench_report
from repro.verify.campaign import scatter_state, state_from_bundle

_PAYLOAD = {}


@pytest.fixture(scope="module", autouse=True)
def _bench_telemetry():
    yield
    write_bench_report("comm", _PAYLOAD)


@pytest.fixture(scope="module")
def state():
    problem = comm_dominated_problem()
    bundle = SystemBundle(
        applications=problem.applications,
        architecture=problem.architecture,
        mapping=None,
        plan=None,
    )
    return scatter_state(state_from_bundle(bundle, seed=7))


def _analyze(state, backend_name, arq=0, arq_timeout=0.0):
    analysis = make_analysis(
        comm=backend_name, comm_arq=arq, comm_arq_timeout=arq_timeout
    )
    return analysis.analyze(
        state.hardened(), state.architecture, state.mapping, state.dropped
    )


def _bounds(result):
    return {
        graph: verdict.wcrt
        for graph, verdict in sorted(result.verdicts.items())
        if not verdict.dropped
    }


@pytest.fixture(scope="module")
def backend_bounds(state):
    per_backend = {
        name: _bounds(_analyze(state, name)) for name in COMM_BACKENDS
    }
    _PAYLOAD["wcrt"] = per_backend
    return per_backend


def test_flat_bounds_dominated(backend_bounds):
    flat = backend_bounds["flat"]
    for name in COMM_BACKENDS:
        for graph, wcrt in backend_bounds[name].items():
            assert flat[graph] <= wcrt + 1e-9, (name, graph)


def test_arq_bounds_monotone(state):
    ladder = [
        _bounds(_analyze(state, "shared-bus", arq=k, arq_timeout=0.5))
        for k in range(4)
    ]
    for tighter, wider in zip(ladder, ladder[1:]):
        for graph, wcrt in tighter.items():
            assert wcrt <= wider[graph] + 1e-9, graph
    _PAYLOAD["arq_wcrt"] = {
        f"shared-bus:k={k}": bounds for k, bounds in enumerate(ladder)
    }


@pytest.mark.parametrize("name", COMM_BACKENDS)
def test_benchmark_backend_analysis(benchmark, state, name):
    def run():
        with bench_timer(f"comm.analyze.{name}").time():
            return _analyze(state, name)

    result = benchmark(run)
    assert result.verdicts
