"""Ablations over the design choices called out in DESIGN.md.

Run:  pytest benchmarks/bench_ablation.py --benchmark-only -s

Three knobs of the proposed analysis are compared on the Cruise study:

* trigger granularity — per-job (faithful) vs per-task (cheaper,
  strictly more conservative);
* transition-mode bcet — keeping nominal bcets (sound refinement) vs the
  literal ``[0, wcet]`` of Algorithm 1's line 23;
* the Naive baseline — no chronological state reasoning at all.
"""

import pytest

from repro.core import MixedCriticalityAnalysis, NaiveAnalysis
from repro.experiments.table2 import TABLE2_DROPPED
from repro.obs.bench import bench_timer, write_bench_report
from repro.suites.cruise import cruise_benchmark, cruise_sample_mappings

_PAYLOAD = {}


@pytest.fixture(scope="module", autouse=True)
def _bench_telemetry():
    yield
    write_bench_report("ablation", _PAYLOAD)


@pytest.fixture(scope="module")
def study():
    hardened, mappings = cruise_sample_mappings()
    arch = cruise_benchmark().problem.architecture
    return hardened, arch, mappings[0]


class TestGranularityAblation:
    def test_task_granularity_conservative(self, study):
        hardened, arch, mapping = study
        job = MixedCriticalityAnalysis(granularity="job").analyze(
            hardened, arch, mapping, TABLE2_DROPPED
        )
        task = MixedCriticalityAnalysis(granularity="task").analyze(
            hardened, arch, mapping, TABLE2_DROPPED
        )
        for app in ("cc", "mon"):
            assert task.wcrt_of(app) >= job.wcrt_of(app) - 1e-9
        print(
            f"\ngranularity ablation (cc): job={job.wcrt_of('cc'):.0f} "
            f"task={task.wcrt_of('cc'):.0f}"
        )

    def test_benchmark_job_granularity(self, benchmark, study):
        hardened, arch, mapping = study
        analysis = MixedCriticalityAnalysis(granularity="job")

        def run():
            with bench_timer("ablation.job_granularity").time():
                return analysis.analyze(hardened, arch, mapping, TABLE2_DROPPED)

        benchmark(run)

    def test_benchmark_task_granularity(self, benchmark, study):
        hardened, arch, mapping = study
        analysis = MixedCriticalityAnalysis(granularity="task")

        def run():
            with bench_timer("ablation.task_granularity").time():
                return analysis.analyze(hardened, arch, mapping, TABLE2_DROPPED)

        benchmark(run)


class TestBcetAblation:
    def test_literal_zero_bcet_is_looser(self, study):
        hardened, arch, mapping = study
        refined = MixedCriticalityAnalysis(zero_dropped_bcet=False).analyze(
            hardened, arch, mapping, TABLE2_DROPPED
        )
        literal = MixedCriticalityAnalysis(zero_dropped_bcet=True).analyze(
            hardened, arch, mapping, TABLE2_DROPPED
        )
        naive = NaiveAnalysis().analyze(hardened, arch, mapping, TABLE2_DROPPED)
        for app in ("cc", "mon"):
            assert literal.wcrt_of(app) >= refined.wcrt_of(app) - 1e-9
            assert naive.wcrt_of(app) >= refined.wcrt_of(app) - 1e-9
        print(
            f"\nbcet ablation (cc): refined={refined.wcrt_of('cc'):.0f} "
            f"literal={literal.wcrt_of('cc'):.0f} naive={naive.wcrt_of('cc'):.0f}"
        )


class TestPolicyAblation:
    def test_edf_analysis_runs_and_reports(self, study):
        hardened, arch, mapping = study
        fp = MixedCriticalityAnalysis(policy="fp").analyze(
            hardened, arch, mapping, TABLE2_DROPPED
        )
        edf = MixedCriticalityAnalysis(policy="edf").analyze(
            hardened, arch, mapping, TABLE2_DROPPED
        )
        print(
            f"\npolicy ablation (cc): fp={fp.wcrt_of('cc'):.0f} "
            f"edf={edf.wcrt_of('cc'):.0f}"
        )
        for app in ("cc", "mon"):
            assert fp.wcrt_of(app) > 0 and edf.wcrt_of(app) > 0


class TestBusAblation:
    def test_contention_model_dominates_reservation(self, study):
        hardened, arch, mapping = study
        reserved = MixedCriticalityAnalysis().analyze(
            hardened, arch, mapping, TABLE2_DROPPED
        )
        contended = MixedCriticalityAnalysis(bus_contention=True).analyze(
            hardened, arch, mapping, TABLE2_DROPPED
        )
        print(
            f"\nbus ablation (cc): reserved={reserved.wcrt_of('cc'):.0f} "
            f"contended={contended.wcrt_of('cc'):.0f}"
        )
        for app in ("cc", "mon"):
            assert contended.wcrt_of(app) >= reserved.wcrt_of(app) - 1e-6

    def test_benchmark_bus_contention_analysis(self, benchmark, study):
        hardened, arch, mapping = study
        analysis = MixedCriticalityAnalysis(bus_contention=True)

        def run():
            with bench_timer("ablation.bus_contention").time():
                return analysis.analyze(hardened, arch, mapping, TABLE2_DROPPED)

        benchmark.pedantic(run, rounds=3, iterations=1)


class TestBackendFamilies:
    def test_holistic_backend_comparison(self, study):
        from repro.sched.holistic import HolisticAnalysisBackend

        hardened, arch, mapping = study
        window = MixedCriticalityAnalysis().analyze(
            hardened, arch, mapping, TABLE2_DROPPED
        )
        holistic = MixedCriticalityAnalysis(
            backend=HolisticAnalysisBackend()
        ).analyze(hardened, arch, mapping, TABLE2_DROPPED)
        print(
            f"\nbackend families (cc): window={window.wcrt_of('cc'):.0f} "
            f"holistic={holistic.wcrt_of('cc'):.0f}"
        )
        for app in ("cc", "mon"):
            assert holistic.wcrt_of(app) > 0

    def test_benchmark_holistic_backend(self, benchmark, study):
        from repro.sched.holistic import HolisticAnalysisBackend

        hardened, arch, mapping = study
        analysis = MixedCriticalityAnalysis(backend=HolisticAnalysisBackend())

        def run():
            with bench_timer("ablation.holistic_backend").time():
                return analysis.analyze(hardened, arch, mapping, TABLE2_DROPPED)

        benchmark.pedantic(run, rounds=3, iterations=1)


class TestBackendSweeps:
    def test_benchmark_backend_alone(self, benchmark, study):
        from repro.sched.wcrt import WindowAnalysisBackend

        hardened, arch, mapping = study
        analysis = MixedCriticalityAnalysis()
        base = analysis._base_jobset(hardened, arch, mapping)
        backend = WindowAnalysisBackend()
        bounds = benchmark(lambda: backend.analyze(base))
        assert bounds.converged

    def test_benchmark_fast_backend(self, benchmark, study):
        from repro.sched.fast import FastWindowAnalysisBackend

        hardened, arch, mapping = study
        analysis = MixedCriticalityAnalysis()
        base = analysis._base_jobset(hardened, arch, mapping)
        backend = FastWindowAnalysisBackend()
        backend.analyze(base)  # warm the structural cache
        bounds = benchmark(lambda: backend.analyze(base))
        assert bounds.converged

    def test_fast_backend_matches_reference(self, study):
        from repro.sched.fast import FastWindowAnalysisBackend
        from repro.sched.wcrt import WindowAnalysisBackend

        hardened, arch, mapping = study
        analysis = MixedCriticalityAnalysis()
        base = analysis._base_jobset(hardened, arch, mapping)
        reference = WindowAnalysisBackend().analyze(base)
        fast = FastWindowAnalysisBackend().analyze(base)
        for job in base.jobs:
            assert fast.bounds_at(job.index).max_finish == pytest.approx(
                reference.bounds_at(job.index).max_finish, abs=1e-6
            )
