"""Simulator throughput benchmarks.

Run:  pytest benchmarks/bench_sim.py --benchmark-only -s

The Monte-Carlo estimator (WC-Sim) dominates the cost of the Table 2
study, so the per-run simulation cost matters: these benchmarks track a
single fault-free run, a run with faults and dropping, and the adhoc
worst trace on the Cruise benchmark.
"""

import pytest

from repro.experiments.table2 import TABLE2_DROPPED
from repro.obs.bench import bench_timer, write_bench_report
from repro.sim import Simulator, WorstCaseSampler
from repro.sim.faults import adhoc_profile, random_profile
from repro.suites.cruise import cruise_benchmark, cruise_sample_mappings

_PAYLOAD = {}


@pytest.fixture(scope="module", autouse=True)
def _bench_telemetry():
    yield
    write_bench_report("sim", _PAYLOAD)


@pytest.fixture(scope="module")
def setup():
    hardened, mappings = cruise_sample_mappings()
    arch = cruise_benchmark().problem.architecture
    simulator = Simulator(hardened, arch, mappings[0], dropped=TABLE2_DROPPED)
    return hardened, simulator


def test_benchmark_fault_free_run(benchmark, setup):
    _hardened, simulator = setup

    def run():
        with bench_timer("sim.fault_free_run").time():
            return simulator.run(sampler=WorstCaseSampler())

    result = benchmark(run)
    assert not result.entered_critical_state


def test_benchmark_faulty_run_with_dropping(benchmark, setup):
    import random

    hardened, simulator = setup
    profile = random_profile(hardened, random.Random(1), max_faults=3)

    def run():
        with bench_timer("sim.faulty_run_with_dropping").time():
            return simulator.run(profile=profile, sampler=WorstCaseSampler())

    result = benchmark(run)
    assert result.faults_observed >= 0


def test_benchmark_adhoc_trace(benchmark, setup):
    hardened, simulator = setup
    profile = adhoc_profile(hardened)

    def run():
        with bench_timer("sim.adhoc_trace").time():
            return simulator.run(
                profile=profile, sampler=WorstCaseSampler(), drop_from_start=True
            )

    result = benchmark(run)
    assert result.entered_critical_state
