"""Regenerates the §5.2 feasibility-ratio study: the share of explored
solutions that are feasible only because task dropping is enabled.

Run:  pytest benchmarks/bench_sec52_ratio.py --benchmark-only -s

Paper reference (ratio over all explored solutions, after 5,000
generations): Synth-1 0.02 %, Synth-2 0.685 %, DT-med 29.00 %,
DT-large 22.49 %, Cruise 99.98 %.  The ratio grows with convergence, so
short runs report smaller absolute values; the reproduced shape is the
ordering: the slack-rich synthetic benchmarks barely profit from
dropping, the deadline-tight real-life benchmarks profit heavily.  The
paper also reports the dominance of re-execution among the applied
hardening techniques (83–99 % on the real-life benchmarks).
"""

import pytest

from repro.experiments.dropping import format_ratio_rows, run_dropping_ratios
from repro.obs.bench import bench_timer, write_bench_report

GENERATIONS = 12
POPULATION = 20

_PAYLOAD = {}


@pytest.fixture(scope="module", autouse=True)
def _bench_telemetry():
    yield
    write_bench_report("sec52_ratio", _PAYLOAD)


@pytest.fixture(scope="module")
def ratio_rows():
    with bench_timer("sec52_ratio.run_dropping_ratios").time():
        rows = run_dropping_ratios(
            benchmarks=("synth-1", "synth-2", "dt-med", "cruise"),
            generations=GENERATIONS,
            population=POPULATION,
            seed=2014,
        )
    _PAYLOAD["rows"] = [
        {
            "benchmark": row.benchmark,
            "ratio_over_all": row.ratio_over_all,
            "reexecution_share": row.reexecution_share,
        }
        for row in rows
    ]
    return rows


def _row(rows, name):
    return next(r for r in rows if r.benchmark == name)


def test_synth1_barely_needs_dropping(ratio_rows):
    assert _row(ratio_rows, "synth-1").ratio_over_all < 0.02


def test_real_benchmarks_need_dropping_more_than_synth1(ratio_rows):
    synth1 = _row(ratio_rows, "synth-1").ratio_over_all
    for name in ("dt-med", "cruise"):
        assert _row(ratio_rows, name).ratio_over_all > synth1


def test_reexecution_dominates_hardening_mix(ratio_rows):
    # Paper: 87.03 % / 98.66 % / 83.23 % re-executions on DT-med,
    # DT-large and Cruise.
    for name in ("dt-med", "cruise"):
        assert _row(ratio_rows, name).reexecution_share > 0.5


def test_print_rows(ratio_rows):
    print()
    print(format_ratio_rows(ratio_rows))


def test_benchmark_tracked_exploration(benchmark):
    """Wall-clock of a dropping-gain-tracked exploration on synth-2."""
    from repro.dse import Explorer, ExplorerConfig
    from repro.suites import get_benchmark

    problem = get_benchmark("synth-2").problem
    config = ExplorerConfig.from_options(
        population=12, generations=3, seed=1, track_dropping_gain=True
    )
    benchmark.pedantic(
        lambda: Explorer(problem, config).run(), rounds=1, iterations=1
    )
