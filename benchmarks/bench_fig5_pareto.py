"""Regenerates Figure 5: the power/service Pareto front for DT-med.

Run:  pytest benchmarks/bench_fig5_pareto.py --benchmark-only -s

Paper reference: five Pareto-optimal points over the drop-set lattice of
``{t1, t2, t3}`` — the full drop set is the power optimum, the empty one
the service optimum.  The reproduced shape: the front contains both
extremes, is mutually non-dominated, and power increases with service.
"""

import pytest

from repro.experiments.pareto import format_front, run_fig5
from repro.obs.bench import bench_timer, write_bench_report

GENERATIONS = 30
POPULATION = 28

_PAYLOAD = {}


@pytest.fixture(scope="module", autouse=True)
def _bench_telemetry():
    yield
    write_bench_report("fig5_pareto", _PAYLOAD)


@pytest.fixture(scope="module")
def fig5_result():
    with bench_timer("fig5_pareto.run_fig5").time():
        result = run_fig5(
            generations=GENERATIONS, population=POPULATION, seed=2014
        )
    _PAYLOAD["generations"] = GENERATIONS
    _PAYLOAD["population"] = POPULATION
    _PAYLOAD["front"] = [
        {"power": p.power, "service": p.service, "dropped": list(p.dropped)}
        for p in result.drop_set_front()
    ]
    return result


def test_front_nonempty(fig5_result):
    assert len(fig5_result.drop_set_front()) >= 3


def test_exploration_covers_drop_lattice(fig5_result):
    # Feasible designs exist for every subset of {t1, t2, t3}.
    assert len(fig5_result.best_by_drop_set) == 8


def test_front_is_nondominated_and_monotone(fig5_result):
    front = fig5_result.drop_set_front()  # sorted by power
    services = [point.service for point in front]
    assert services == sorted(services), "service must grow with power"
    powers = [point.power for point in front]
    assert powers == sorted(powers)


def test_service_optimum_is_no_drop(fig5_result):
    front = fig5_result.drop_set_front()
    best_service = max(front, key=lambda p: p.service)
    assert best_service.dropped == ()
    assert best_service.service == 10.0  # 5 + 3 + 2


def test_dropping_everything_is_power_optimal(fig5_result):
    # The full drop set relaxes constraints most, so its best found
    # design costs no more than the no-dropping one.
    full = fig5_result.best_by_drop_set[("t1", "t2", "t3")]
    none = fig5_result.best_by_drop_set[()]
    assert full.power <= none.power + 1e-9


def test_print_front(fig5_result):
    print()
    print(format_front(fig5_result))


def test_benchmark_fig5_exploration(benchmark):
    benchmark.pedantic(
        lambda: run_fig5(generations=5, population=12, seed=3),
        rounds=1,
        iterations=1,
    )
