"""Internal helpers for time arithmetic.

Periods and execution times are plain floats (milliseconds by convention).
Hyperperiod computation needs an exact least common multiple, so floats are
first converted to rationals.
"""

from fractions import Fraction
from math import gcd
from typing import Iterable

from repro.errors import ModelError

#: Denominator cap used when converting float periods to rationals.  A cap
#: of 10**6 resolves periods down to a microsecond when times are expressed
#: in milliseconds, which is far below any modelling granularity used here.
_MAX_DENOMINATOR = 10**6


def as_rational(value: float) -> Fraction:
    """Convert a non-negative time value to an exact rational."""
    if value < 0:
        raise ModelError(f"time value must be non-negative, got {value!r}")
    return Fraction(value).limit_denominator(_MAX_DENOMINATOR)


def lcm_rational(a: Fraction, b: Fraction) -> Fraction:
    """Least common multiple of two positive rationals."""
    num = a.numerator * b.numerator // gcd(a.numerator, b.numerator)
    den = gcd(a.denominator, b.denominator)
    return Fraction(num, den)


def hyperperiod(periods: Iterable[float]) -> float:
    """Least common multiple of a collection of positive periods.

    >>> hyperperiod([10, 15])
    30.0
    >>> hyperperiod([2.5, 10])
    10.0
    """
    result = None
    for period in periods:
        if period <= 0:
            raise ModelError(f"period must be positive, got {period!r}")
        frac = as_rational(period)
        result = frac if result is None else lcm_rational(result, frac)
    if result is None:
        raise ModelError("hyperperiod of an empty period collection")
    return float(result)
