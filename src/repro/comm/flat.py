"""The ``flat`` backend: the paper's guaranteed-bandwidth pipe.

Binding with no ARQ budget returns the plain
:class:`~repro.sched.comm.CommModel` itself, so the legacy analysis path
(and every cached fingerprint) stays byte-identical — ``flat`` is the
reference oracle the contended backends are verified against.  With a
retransmission budget the bound model folds the ARQ margin on top of the
uncontended worst case.
"""

from repro.comm.base import ArqPolicy, BoundComm, CommBackend, attempt_cost
from repro.model.architecture import Architecture, Interconnect
from repro.model.mapping import Mapping
from repro.sched.comm import CommModel


class FlatBound(BoundComm):
    """Uncontended bounds plus the ARQ retransmission margin."""

    def __init__(self, interconnect: Interconnect, arq: ArqPolicy):
        super().__init__(interconnect, arq)

    def attempt_worst(self, src: str, dst: str, size: float) -> float:
        return attempt_cost(self._interconnect, size)

    def describe(self) -> str:
        ic = self._interconnect
        return f"flat:bw={ic.bandwidth.hex()}:lat={ic.base_latency.hex()}"


class FlatBackend(CommBackend):
    """Guaranteed-bandwidth fabric (paper §2.1, ``contention_factor=1``)."""

    name = "flat"

    def bind(self, applications, mapping: Mapping, architecture: Architecture):
        interconnect = architecture.interconnect
        arq = self.resolve_arq(interconnect)
        if not arq.active:
            # Byte-identical legacy path: plain CommModel, no
            # channel_bounds attribute, empty fingerprint token.
            return CommModel(interconnect)
        return FlatBound(interconnect, arq)
