"""Protocol and shared machinery of the contention-aware comm backends.

A :class:`CommBackend` is an *unbound* latency-model recipe selected by
name from the registry (see :mod:`repro.comm`).  At unroll time
:func:`repro.sched.jobs.unroll` *binds* it to the concrete
``(applications, mapping, architecture)`` triple, which is when the
backend learns which channels actually cross the fabric and therefore
compete — the hardened task set (replica/voter channels included) is
what gets bound, not the source graphs.

A bound model answers per-channel latency queries through
``channel_bounds(src, dst, size, same_processor) -> (best, worst)``.
Best-case latencies are always the *uncontended* transfer time (the same
safe lower bound the flat :class:`~repro.sched.comm.CommModel` uses);
contention and the ARQ message-fault margin widen the worst case only.

**ARQ message faults.**  A cross-processor transfer can be hit by a
transient fault and be re-sent up to ``k = arq_retries`` times, each
retransmission costing one more worst-case attempt plus the fixed
loss-detection ``arq_timeout`` — the communication analog of the paper's
task re-execution (Eq. (1)):

    ``worst(k) = (k + 1) * worst_attempt + k * arq_timeout``

which is monotonically non-decreasing in ``k`` (the ARQ-monotonicity
oracle of :mod:`repro.verify.oracles` pins this).  Best-case transfers
are fault-free and keep the single-attempt bound.

Bound models expose :attr:`~BoundComm.fingerprint_token`, a canonical
string that :meth:`repro.sched.jobs.JobSet.fingerprint` folds into the
structural digest, so two systems differing only in their comm
configuration can never collide in the ScheduleCache.  The flat model
with no ARQ binds to the plain :class:`~repro.sched.comm.CommModel`
(empty token), keeping every legacy digest byte-identical.
"""

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ModelError
from repro.model.architecture import Architecture, Interconnect
from repro.model.mapping import Mapping

#: Iteration cap of busy-period fixed points; on non-convergence the
#: backends fall back to a saturated (hyperperiod-census) bound.
BUSY_PERIOD_ITERATIONS = 256


@dataclass(frozen=True)
class ArqPolicy:
    """Message-level transient-fault budget of a channel transfer."""

    #: Maximum retransmissions after a lost transfer.
    retries: int = 0
    #: Loss-detection overhead (timeout + re-arbitration) per resend.
    timeout: float = 0.0

    def __post_init__(self):
        if self.retries < 0:
            raise ModelError(f"ARQ retries must be >= 0, got {self.retries}")
        if self.timeout < 0:
            raise ModelError(f"ARQ timeout must be >= 0, got {self.timeout}")

    def fold_worst(self, worst_attempt: float) -> float:
        """Worst-case latency with all ``k`` retransmissions consumed."""
        if self.retries == 0:
            return worst_attempt
        return (self.retries + 1) * worst_attempt + self.retries * self.timeout

    @property
    def active(self) -> bool:
        """Whether the fault model changes any bound."""
        return self.retries > 0

    def token(self) -> str:
        """Canonical fingerprint fragment."""
        return f"arq={self.retries}:{self.timeout.hex()}"


@dataclass(frozen=True)
class ChannelSite:
    """One cross-processor channel as seen by the fabric arbiter."""

    src: str
    dst: str
    size: float
    #: Period of the owning graph (the channel's minimum inter-arrival).
    period: float
    src_pe: str
    dst_pe: str

    @property
    def key(self) -> Tuple[str, str]:
        return (self.src, self.dst)


def channel_sites(
    applications, mapping: Mapping, architecture: Architecture
) -> List[ChannelSite]:
    """Every channel that actually crosses the fabric, arbitration-ordered.

    The list is sorted rate-monotonically — smaller period first, ties
    broken by ``(src, dst)`` — which is the fixed-priority order the
    ``shared-bus`` backend arbitrates in.  Same-processor channels never
    touch the fabric and are excluded.
    """
    sites: List[ChannelSite] = []
    for graph in applications.graphs:
        for channel in graph.channels:
            src_pe = mapping[channel.src]
            dst_pe = mapping[channel.dst]
            if src_pe == dst_pe:
                continue
            sites.append(
                ChannelSite(
                    src=channel.src,
                    dst=channel.dst,
                    size=channel.size,
                    period=graph.period,
                    src_pe=src_pe,
                    dst_pe=dst_pe,
                )
            )
    sites.sort(key=lambda s: (s.period, s.src, s.dst))
    return sites


def attempt_cost(interconnect: Interconnect, size: float) -> float:
    """Uncontended fabric occupancy of one transfer attempt.

    Sized transfers occupy the medium for ``base_latency + size / bw``;
    zero-size transfers are pure synchronisation tokens that still pay
    the arbitration ``base_latency`` in the worst case (the same
    asymmetry :class:`~repro.sched.comm.CommModel` pins).
    """
    if size <= 0:
        return interconnect.base_latency
    return interconnect.transfer_time(size)


def _ceil_div(value: float, period: float) -> int:
    """``ceil(value / period)`` with a guard against float-noise overshoot."""
    return max(1, math.ceil(value / period - 1e-12))


class BoundComm:
    """Base of every bound contention model.

    Subclasses implement :meth:`attempt_worst` (single-attempt
    worst-case latency of a known cross-processor channel) and
    :meth:`describe` (the backend-specific fingerprint fragment).
    """

    def __init__(self, interconnect: Interconnect, arq: ArqPolicy):
        self._interconnect = interconnect
        self._arq = arq

    # -- protocol ------------------------------------------------------

    @property
    def arq_retries(self) -> int:
        """Retransmission budget folded into worst-case bounds."""
        return self._arq.retries

    @property
    def arq_timeout(self) -> float:
        """Per-retransmission loss-detection overhead."""
        return self._arq.timeout

    @property
    def fingerprint_token(self) -> str:
        """Canonical comm identity folded into job-set fingerprints."""
        return f"{self.describe()}|{self._arq.token()}"

    def channel_bounds(
        self, src: str, dst: str, size: float, same_processor: bool
    ) -> Tuple[float, float]:
        """``(best, worst)`` latency of the ``src -> dst`` channel.

        Best is the uncontended transfer time; worst folds contention
        and the full ARQ retransmission margin.
        """
        best, worst = self.attempt_bounds(src, dst, size, same_processor)
        if same_processor:
            return best, worst
        return best, self._arq.fold_worst(worst)

    def attempt_bounds(
        self, src: str, dst: str, size: float, same_processor: bool
    ) -> Tuple[float, float]:
        """``(best, worst)`` of one transfer attempt (no ARQ margin).

        The simulator unrolls with these so it can charge retransmission
        delays per injected message fault instead of always paying the
        folded worst case.
        """
        if same_processor:
            return 0.0, 0.0
        best = 0.0 if size <= 0 else self._interconnect.transfer_time(size)
        return best, self.attempt_worst(src, dst, size)

    def without_arq(self) -> "BoundComm":
        """This model with the fault margin stripped (for the simulator)."""
        if not self._arq.active:
            return self
        import copy

        clone = copy.copy(self)
        clone._arq = ArqPolicy()
        return clone

    # -- subclass hooks ------------------------------------------------

    def attempt_worst(self, src: str, dst: str, size: float) -> float:
        """Worst-case single-attempt latency of a cross-PE channel."""
        raise NotImplementedError  # pragma: no cover - abstract

    def describe(self) -> str:
        """Backend-specific canonical parameter string."""
        raise NotImplementedError  # pragma: no cover - abstract


class CommBackend:
    """An unbound contention-model recipe (registry entry).

    ``arq_retries``/``arq_timeout`` overrides win over the interconnect's
    serialized fields; ``None`` defers to the model (so a backend built
    from a name alone picks up whatever the system file declares).
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(
        self,
        arq_retries: Optional[int] = None,
        arq_timeout: Optional[float] = None,
    ):
        self._arq_retries = arq_retries
        self._arq_timeout = arq_timeout

    def resolve_arq(self, interconnect: Interconnect) -> ArqPolicy:
        """The effective fault budget for a given fabric."""
        retries = (
            interconnect.arq_retries
            if self._arq_retries is None
            else self._arq_retries
        )
        timeout = (
            interconnect.arq_timeout
            if self._arq_timeout is None
            else self._arq_timeout
        )
        return ArqPolicy(retries=retries, timeout=timeout)

    def bind(
        self, applications, mapping: Mapping, architecture: Architecture
    ):
        """Bind to a concrete system; returns the per-channel model."""
        raise NotImplementedError  # pragma: no cover - abstract

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def busy_period_worst(
    own_cost: float,
    blocking: float,
    higher_priority: List[Tuple[float, float]],
    hyperperiod_cap: float,
) -> float:
    """Non-preemptive fixed-priority busy-period response of one message.

    ``higher_priority`` lists ``(cost, period)`` of every competing
    channel that wins arbitration; ``blocking`` is the longest
    lower-priority transfer already occupying the medium (transfers are
    not preempted mid-flight).  Iterates the classic recurrence

        ``w = blocking + own + sum_j ceil(w / T_j) * C_j``

    and, if the fixed point does not settle within
    :data:`BUSY_PERIOD_ITERATIONS`, saturates to a census bound charging
    every competitor once per release in ``hyperperiod_cap`` — larger but
    still finite and safe.
    """
    if not higher_priority:
        return blocking + own_cost
    width = blocking + own_cost
    for _ in range(BUSY_PERIOD_ITERATIONS):
        interference = sum(
            _ceil_div(width, period) * cost for cost, period in higher_priority
        )
        updated = blocking + own_cost + interference
        if updated <= width + 1e-12:
            return updated
        width = updated
    # An overloaded medium never settles (the recurrence grows without
    # bound), so saturate over the hyperperiod window instead of the
    # diverged iterate: every competitor is charged one release per
    # period in the window plus one carry-in — wide, but finite.
    horizon = max(hyperperiod_cap, blocking + own_cost)
    saturated = blocking + own_cost + sum(
        (_ceil_div(horizon, period) + 1) * cost
        for cost, period in higher_priority
    )
    return saturated


#: Interference map: for every site key, the ``(cost, period)`` list of
#: the sites that can delay it.  Shared by the bus and NoC backends.
InterferenceTable = Dict[Tuple[str, str], float]
