"""Pluggable contention-aware communication backends.

This package grows the paper's flat guaranteed-bandwidth fabric
(§2.1 ``bw_nw``, reproduced by :class:`repro.sched.comm.CommModel`) into
a registry of interchangeable latency models:

``flat``
    The reference oracle — binds to the plain :class:`CommModel` when no
    ARQ budget is set, byte-identical to the legacy path.
``shared-bus``
    Fixed-priority (rate-monotonic) arbitration over one medium;
    busy-period queueing delay from competing channels.
``tdma``
    Static slot table; slot-alignment worst case, contention-free.
``noc-xy``
    2D-mesh wormhole NoC with XY routing; per-link contention sets.

All backends keep best-case latencies at the uncontended transfer time
and only widen worst cases, so ``flat <= contended`` holds bound-wise —
the differential oracle in :mod:`repro.verify.oracles` enforces this,
alongside ARQ ``k -> k+1`` monotonicity.  Select a backend per system
via ``Interconnect.comm_backend`` or per run via ``--comm-backend``.
"""

from typing import Optional, Union

from repro.comm.base import ArqPolicy, BoundComm, ChannelSite, CommBackend
from repro.comm.flat import FlatBackend
from repro.comm.noc import NocXYBackend
from repro.comm.sharedbus import SharedBusBackend
from repro.comm.tdma import TdmaBackend
from repro.errors import AnalysisError
from repro.model.architecture import Architecture, Interconnect
from repro.sched.comm import CommModel

_REGISTRY = {}


def register_backend(backend_cls) -> None:
    """Register a :class:`CommBackend` subclass under its ``name``."""
    name = backend_cls.name
    if not name or name == "abstract":
        raise AnalysisError(f"comm backend {backend_cls!r} has no usable name")
    _REGISTRY[name] = backend_cls


for _cls in (FlatBackend, SharedBusBackend, TdmaBackend, NocXYBackend):
    register_backend(_cls)

#: Registered backend names, registration-ordered (``flat`` first).
COMM_BACKENDS = tuple(_REGISTRY)


class _DeferredBackend(CommBackend):
    """Backend whose *name* is read off the interconnect at bind time.

    Lets ARQ overrides (``--comm-arq``) apply to whatever backend each
    analyzed architecture declares, without forcing a topology choice.
    """

    name = "auto"

    def bind(self, applications, mapping, architecture: Architecture):
        backend = make_comm(
            architecture.interconnect.comm_backend,
            arq_retries=self._arq_retries,
            arq_timeout=self._arq_timeout,
        )
        return backend.bind(applications, mapping, architecture)


def make_comm(
    name: Optional[str] = None,
    arq_retries: Optional[int] = None,
    arq_timeout: Optional[float] = None,
) -> CommBackend:
    """Instantiate a backend by registry name.

    ``name=None`` defers to the interconnect's ``comm_backend`` field at
    bind time; explicit ARQ arguments override the interconnect's
    serialized budget.  Unknown names raise an :class:`AnalysisError`
    listing every registered backend.
    """
    if name is None:
        return _DeferredBackend(
            arq_retries=arq_retries, arq_timeout=arq_timeout
        )
    try:
        backend_cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise AnalysisError(
            f"unknown comm backend {name!r}; available: {known}"
        ) from None
    return backend_cls(arq_retries=arq_retries, arq_timeout=arq_timeout)


def default_comm(
    architecture: Architecture,
) -> Union[CommModel, CommBackend]:
    """The comm model/backend an architecture asks for.

    Flat with no ARQ budget returns the plain :class:`CommModel` —
    the exact object the legacy call sites constructed — so systems
    that never opt into contention keep byte-identical behaviour and
    fingerprints.  Anything else returns the unbound backend, which
    :func:`repro.sched.jobs.unroll` binds to the hardened task set.
    """
    interconnect = architecture.interconnect
    if interconnect.comm_backend == "flat" and interconnect.arq_retries == 0:
        return CommModel(interconnect)
    return make_comm(interconnect.comm_backend)


def resolve_comm(
    comm: Union[None, str, CommModel, CommBackend],
    architecture: Architecture,
    arq_retries: Optional[int] = None,
    arq_timeout: Optional[float] = None,
) -> Union[CommModel, CommBackend]:
    """Normalise the ``comm`` argument accepted across the public API.

    Accepts ``None`` (architecture decides), a registry name, an
    already-built :class:`CommModel`, or an unbound backend.  Explicit
    ARQ overrides force the backend path even for ``flat`` (the margin
    must be folded somewhere).
    """
    if isinstance(comm, str):
        return make_comm(comm, arq_retries=arq_retries, arq_timeout=arq_timeout)
    if comm is not None:
        return comm
    if arq_retries is not None or arq_timeout is not None:
        return make_comm(
            architecture.interconnect.comm_backend,
            arq_retries=arq_retries,
            arq_timeout=arq_timeout,
        )
    return default_comm(architecture)


def with_comm(
    architecture: Architecture,
    backend: Optional[str] = None,
    arq_retries: Optional[int] = None,
    arq_timeout: Optional[float] = None,
) -> Architecture:
    """Rewrite the fabric's comm configuration, keeping everything else.

    Used by the API/CLI ``--comm-backend``/``--comm-arq`` overrides and
    by the verification oracles' ``k -> k+1`` probes.  ``None`` leaves a
    field untouched; a backend name is validated against the registry.
    """
    ic = architecture.interconnect
    name = ic.comm_backend if backend is None else backend
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise AnalysisError(
            f"unknown comm backend {name!r}; available: {known}"
        )
    rewritten = Interconnect(
        bandwidth=ic.bandwidth,
        base_latency=ic.base_latency,
        kind=ic.kind,
        comm_backend=name,
        arq_retries=ic.arq_retries if arq_retries is None else arq_retries,
        arq_timeout=ic.arq_timeout if arq_timeout is None else arq_timeout,
        mesh_columns=ic.mesh_columns,
        hop_latency=ic.hop_latency,
        slot_length=ic.slot_length,
        slot_count=ic.slot_count,
    )
    return architecture.with_interconnect(rewritten)


__all__ = [
    "ArqPolicy",
    "BoundComm",
    "COMM_BACKENDS",
    "ChannelSite",
    "CommBackend",
    "FlatBackend",
    "NocXYBackend",
    "SharedBusBackend",
    "TdmaBackend",
    "default_comm",
    "make_comm",
    "register_backend",
    "resolve_comm",
    "with_comm",
]
