"""The ``shared-bus`` backend: fixed-priority arbitration with queueing.

Every cross-processor channel competes for one shared medium.  Messages
are arbitrated rate-monotonically — the channel of the shortest-period
graph wins, ties broken lexicographically by ``(src, dst)`` — and a
transfer in flight is never preempted, so a message additionally suffers
one *blocking* transfer from the longest lower-priority competitor.
The worst-case latency of channel ``i`` is the classic non-preemptive
busy-period fixed point

    ``w_i = B_i + C_i + sum_{j in hp(i)} ceil(w_i / T_j) * C_j``

where ``C`` is the uncontended medium occupancy (``base_latency +
size / bw``; pure-sync zero-size messages still occupy the arbiter for
``base_latency``) and ``T_j`` the competitor's graph period.  With no
competitors this collapses to the flat bound, so ``flat <= shared-bus``
holds channel-wise by construction.
"""

from typing import Dict, Tuple

from repro.comm.base import (
    ArqPolicy,
    BoundComm,
    CommBackend,
    attempt_cost,
    busy_period_worst,
    channel_sites,
)
from repro.model.architecture import Architecture, Interconnect
from repro.model.mapping import Mapping


class SharedBusBound(BoundComm):
    """Per-channel busy-period worst cases over one shared medium."""

    def __init__(
        self,
        interconnect: Interconnect,
        arq: ArqPolicy,
        worst_table: Dict[Tuple[str, str], float],
        digest: str,
    ):
        super().__init__(interconnect, arq)
        self._worst_table = worst_table
        self._digest = digest

    def attempt_worst(self, src: str, dst: str, size: float) -> float:
        worst = self._worst_table.get((src, dst))
        if worst is None:
            # Channel unknown to the arbiter (not in the bound task set);
            # fall back to the uncontended occupancy, which still
            # dominates the flat bound.
            return attempt_cost(self._interconnect, size)
        return worst

    def describe(self) -> str:
        return f"shared-bus:{self._digest}"


class SharedBusBackend(CommBackend):
    """Single shared bus with fixed-priority (rate-monotonic) arbitration."""

    name = "shared-bus"

    def bind(self, applications, mapping: Mapping, architecture: Architecture):
        interconnect = architecture.interconnect
        arq = self.resolve_arq(interconnect)
        sites = channel_sites(applications, mapping, architecture)
        costs = [attempt_cost(interconnect, site.size) for site in sites]
        horizon = max((site.period for site in sites), default=0.0)
        worst_table: Dict[Tuple[str, str], float] = {}
        for index, site in enumerate(sites):
            higher = [
                (costs[j], sites[j].period) for j in range(index)
            ]
            blocking = max(costs[index + 1 :], default=0.0)
            worst_table[site.key] = busy_period_worst(
                costs[index], blocking, higher, horizon
            )
        digest = (
            f"bw={interconnect.bandwidth.hex()}"
            f":lat={interconnect.base_latency.hex()}"
            f":n={len(sites)}"
        )
        return SharedBusBound(interconnect, arq, worst_table, digest)
