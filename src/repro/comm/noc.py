"""The ``noc-xy`` backend: wormhole mesh with per-link contention sets.

Processors are laid out row-major on a 2D mesh (``mesh_columns`` wide,
or the nearest square when unset) in architecture insertion order.
Messages follow deterministic XY routing: all the way along the X axis
first, then along Y.  A message occupies every directed link of its
route for the duration of the transfer (wormhole switching), so two
channels interfere iff their routes share at least one directed link.

The worst-case single-attempt latency of a channel is

    ``worst = base_latency + hops * hop_latency + size / bw
              + sum_{j in conflict(i)} C_j``

— head latency through ``hops`` routers, pipeline-serialization of the
payload, plus one blocking transfer from *each* channel whose route
intersects (a link held by a blocked wormhole stays held, so one round
of every conflictor is the single-attempt bound; repeated releases are
covered by the busy-period treatment the shared-bus backend applies to
a single medium).  Cross-processor routes have ``hops >= 1`` and the
conflict sum is non-negative, so the flat bound is always dominated.
``hop_latency`` falls back to ``base_latency`` when unset.
"""

import math
from typing import Dict, FrozenSet, List, Tuple

from repro.comm.base import (
    ArqPolicy,
    BoundComm,
    CommBackend,
    attempt_cost,
    channel_sites,
)
from repro.model.architecture import Architecture, Interconnect
from repro.model.mapping import Mapping

Link = Tuple[Tuple[int, int], Tuple[int, int]]


def mesh_coordinates(architecture: Architecture) -> Dict[str, Tuple[int, int]]:
    """Row-major mesh placement of the processors.

    Uses ``mesh_columns`` when the interconnect pins a width, otherwise
    the nearest square (``ceil(sqrt(P))`` columns).  Placement order is
    architecture insertion order, so the layout is deterministic.
    """
    names = architecture.processor_names
    columns = architecture.interconnect.mesh_columns or max(
        1, math.ceil(math.sqrt(len(names)))
    )
    return {
        name: (index % columns, index // columns)
        for index, name in enumerate(names)
    }


def xy_route(src: Tuple[int, int], dst: Tuple[int, int]) -> FrozenSet[Link]:
    """Directed links of the deterministic XY route ``src -> dst``."""
    links: List[Link] = []
    x, y = src
    step_x = 1 if dst[0] > x else -1
    while x != dst[0]:
        links.append(((x, y), (x + step_x, y)))
        x += step_x
    step_y = 1 if dst[1] > y else -1
    while y != dst[1]:
        links.append(((x, y), (x, y + step_y)))
        y += step_y
    return frozenset(links)


class NocXYBound(BoundComm):
    """Per-channel wormhole bounds with link-intersection contention."""

    def __init__(
        self,
        interconnect: Interconnect,
        arq: ArqPolicy,
        worst_table: Dict[Tuple[str, str], float],
        digest: str,
    ):
        super().__init__(interconnect, arq)
        self._worst_table = worst_table
        self._digest = digest

    def attempt_worst(self, src: str, dst: str, size: float) -> float:
        worst = self._worst_table.get((src, dst))
        if worst is None:
            # Unknown to the bound route table: uncontended occupancy
            # plus one hop of head latency keeps the flat bound dominated.
            hop = self._interconnect.hop_latency or self._interconnect.base_latency
            return attempt_cost(self._interconnect, size) + hop
        return worst

    def describe(self) -> str:
        return f"noc-xy:{self._digest}"


class NocXYBackend(CommBackend):
    """2D-mesh NoC with XY wormhole routing."""

    name = "noc-xy"

    def bind(self, applications, mapping: Mapping, architecture: Architecture):
        interconnect = architecture.interconnect
        arq = self.resolve_arq(interconnect)
        coords = mesh_coordinates(architecture)
        hop_latency = interconnect.hop_latency or interconnect.base_latency
        sites = channel_sites(applications, mapping, architecture)
        routes = [
            xy_route(coords[site.src_pe], coords[site.dst_pe]) for site in sites
        ]
        costs = [attempt_cost(interconnect, site.size) for site in sites]
        worst_table: Dict[Tuple[str, str], float] = {}
        for index, site in enumerate(sites):
            route = routes[index]
            payload = 0.0 if site.size <= 0 else site.size / interconnect.bandwidth
            conflict = sum(
                costs[j]
                for j in range(len(sites))
                if j != index and routes[j] & route
            )
            worst_table[site.key] = (
                interconnect.base_latency
                + len(route) * hop_latency
                + payload
                + conflict
            )
        columns = architecture.interconnect.mesh_columns or max(
            1, math.ceil(math.sqrt(len(architecture)))
        )
        digest = (
            f"cols={columns}"
            f":hop={hop_latency.hex()}"
            f":bw={interconnect.bandwidth.hex()}"
            f":n={len(sites)}"
        )
        return NocXYBound(interconnect, arq, worst_table, digest)
