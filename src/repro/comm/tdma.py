"""The ``tdma`` backend: slot-table latency with slot-alignment worst case.

The medium revolves through a table of ``S`` slots of length ``L``; each
processor owns one sending slot per revolution.  A message of ``size``
bytes needs ``n = ceil(size / (bw * L))`` slots (one slot moves ``bw * L``
bytes; a pure-sync zero-size message still needs one slot).  In the worst
case the message becomes ready *just after* its slot closed, so every one
of the ``n`` payload slots waits a full table revolution:

    ``worst = base_latency + n * S * L``

This is contention-*free* by construction (slots are dedicated), so the
bound is independent of competing channels — it trades the shared-bus
interference term for a fixed alignment penalty.  Since one revolution
``S * L`` moves at least ``bw * L`` bytes per owned slot,
``n * S * L >= size / bw`` and the flat bound is always dominated.

Table defaults when the interconnect does not pin them: ``S`` = number
of processors (one slot each), ``L`` = ``base_latency + 64 / bw`` (a
64-byte flit-sized payload slot).
"""

import math

from repro.comm.base import ArqPolicy, BoundComm, CommBackend
from repro.model.architecture import Architecture, Interconnect
from repro.model.mapping import Mapping


class TdmaBound(BoundComm):
    """Slot-aligned worst case over a fixed slot table."""

    def __init__(
        self,
        interconnect: Interconnect,
        arq: ArqPolicy,
        slot_count: int,
        slot_length: float,
    ):
        super().__init__(interconnect, arq)
        self._slot_count = slot_count
        self._slot_length = slot_length

    def attempt_worst(self, src: str, dst: str, size: float) -> float:
        payload_per_slot = self._interconnect.bandwidth * self._slot_length
        if size <= 0:
            slots = 1
        else:
            slots = max(1, math.ceil(size / payload_per_slot - 1e-12))
        revolution = self._slot_count * self._slot_length
        return self._interconnect.base_latency + slots * revolution

    def describe(self) -> str:
        return (
            f"tdma:S={self._slot_count}"
            f":L={self._slot_length.hex()}"
            f":bw={self._interconnect.bandwidth.hex()}"
        )


class TdmaBackend(CommBackend):
    """Time-division multiplexed bus with a static slot table."""

    name = "tdma"

    def bind(self, applications, mapping: Mapping, architecture: Architecture):
        interconnect = architecture.interconnect
        arq = self.resolve_arq(interconnect)
        slot_count = interconnect.slot_count or len(architecture)
        slot_length = interconnect.slot_length or (
            interconnect.base_latency + 64.0 / interconnect.bandwidth
        )
        return TdmaBound(interconnect, arq, slot_count, slot_length)
