"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single type at API boundaries.
"""


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ModelError(ReproError):
    """An application or architecture model is ill-formed.

    Raised, for example, when a task graph contains a cycle, a channel
    references an unknown task, or a numeric attribute is out of range.
    """


class MappingError(ReproError):
    """A task-to-processor mapping is invalid for the given models.

    Raised when a mapping misses a task, names an unknown processor, or
    places a task on an unallocated processor.
    """


class HardeningError(ReproError):
    """A hardening specification cannot be applied to a task graph."""


class AnalysisError(ReproError):
    """A schedulability or reliability analysis could not be completed."""


class InfeasibleError(ReproError):
    """A design point violates a hard constraint.

    Carries the list of human-readable violation descriptions in
    :attr:`violations`.
    """

    def __init__(self, message, violations=()):
        super().__init__(message)
        self.violations = list(violations)


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ExplorationError(ReproError):
    """The design-space exploration was configured or driven incorrectly."""


class EvaluationGuardError(ReproError):
    """The evaluation guard is misconfigured or cannot set up its log.

    Note that this is *not* raised for guarded evaluation failures — those
    are converted into infeasible evaluation results by design.
    """


class CheckpointError(ReproError):
    """A DSE run snapshot cannot be written, read, or applied.

    Raised, for example, when a resume is requested against a system whose
    digest does not match the snapshot's, or when no valid snapshot exists.
    """
