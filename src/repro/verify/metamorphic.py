"""Metamorphic soundness properties.

Differential oracles need a second implementation to compare against;
metamorphic oracles need only a *relation between two runs of the same
implementation* under a controlled mutation:

* **metamorphic-wcet-monotone** — inflating one task's WCET may never
  shrink any completion bound (Algorithm 1 is monotone in execution
  demand);
* **metamorphic-drop-monotone** — growing the dropped set may never
  worsen a *surviving* graph's bound (dropping removes interference);
* **metamorphic-harden-sound** — adding re-execution to a task yields a
  new system whose bounds must still dominate its own simulated traces
  (hardening legitimately raises bounds; it must never break soundness).

Mutation targets are chosen deterministically from the campaign seed, so
two campaigns with the same seed probe the same mutations.
"""

import random
from typing import List, Optional

from repro.hardening.spec import HardeningSpec
from repro.model.application import ApplicationSet
from repro.verify.oracles import OracleRunner, SystemState, Violation
from repro.verify.scenarios import Scenario, directed_scenarios


def inflate_wcet(
    applications: ApplicationSet, task_name: str, factor: float
) -> ApplicationSet:
    """A copy of ``applications`` with one task's WCET scaled up."""
    graph = applications.owner_of(task_name)
    task = graph.task(task_name)
    inflated = task.with_times(task.bcet, task.wcet * factor)
    new_graph = graph.derive(
        tasks=[inflated if t.name == task_name else t for t in graph.tasks]
    )
    return applications.replacing(new_graph)


def check_wcet_monotonicity(
    runner: OracleRunner,
    state: SystemState,
    task_name: str,
    factor: float = 1.25,
) -> List[Violation]:
    """Inflating ``task_name``'s WCET may never shrink any bound."""
    base = runner.analyze(state)
    mutated = SystemState(
        applications=inflate_wcet(state.applications, task_name, factor),
        architecture=state.architecture,
        mapping=state.mapping,
        plan=state.plan,
        dropped=state.dropped,
    )
    inflated = runner.analyze(mutated)
    tol = runner.tolerance
    violations: List[Violation] = []
    for task, bound in sorted(base.task_completion.items()):
        new_bound = inflated.task_completion.get(task)
        if new_bound is None:
            continue
        if new_bound < bound - tol:
            violations.append(
                Violation(
                    oracle="metamorphic-wcet-monotone",
                    subject=task,
                    expected=bound,
                    actual=new_bound,
                    detail=(
                        f"completion bound shrank after inflating "
                        f"wcet({task_name}) by {factor}x"
                    ),
                )
            )
    for graph, verdict in sorted(base.verdicts.items()):
        new_wcrt = inflated.verdicts[graph].wcrt
        if new_wcrt < verdict.wcrt - tol:
            violations.append(
                Violation(
                    oracle="metamorphic-wcet-monotone",
                    subject=graph,
                    expected=verdict.wcrt,
                    actual=new_wcrt,
                    detail=(
                        f"graph WCRT shrank after inflating "
                        f"wcet({task_name}) by {factor}x"
                    ),
                )
            )
    return violations


def check_drop_monotonicity(
    runner: OracleRunner,
    state: SystemState,
    graph_name: str,
) -> List[Violation]:
    """Adding ``graph_name`` to the drop set may never hurt survivors."""
    base = runner.analyze(state)
    grown = SystemState(
        applications=state.applications,
        architecture=state.architecture,
        mapping=state.mapping,
        plan=state.plan,
        dropped=tuple(sorted(set(state.dropped) | {graph_name})),
    )
    extended = runner.analyze(grown)
    tol = runner.tolerance
    violations: List[Violation] = []
    for graph, verdict in sorted(base.verdicts.items()):
        if verdict.dropped or graph == graph_name:
            continue
        new_wcrt = extended.verdicts[graph].wcrt
        if new_wcrt > verdict.wcrt + tol:
            violations.append(
                Violation(
                    oracle="metamorphic-drop-monotone",
                    subject=graph,
                    expected=verdict.wcrt,
                    actual=new_wcrt,
                    detail=(
                        f"surviving graph's bound worsened after adding "
                        f"{graph_name!r} to the drop set"
                    ),
                )
            )
    return violations


def check_harden_soundness(
    runner: OracleRunner,
    state: SystemState,
    task_name: str,
    scenario_cap: int = 8,
) -> List[Violation]:
    """Hardening a task must keep the mutated system's bounds sound.

    Adds one re-execution to an unhardened primary task (a new critical-
    state trigger appears) and re-runs the sim-dominance oracle on the
    mutated system's own directed scenarios.  Hardening may *raise*
    bounds (detection overhead, extra transitions) — that is legitimate;
    what may never happen is the mutated analysis losing dominance over
    the mutated system's observable behavior.
    """
    mutated = SystemState(
        applications=state.applications,
        architecture=state.architecture,
        mapping=state.mapping,
        plan=state.plan.with_spec(task_name, HardeningSpec.reexecution(1)),
        dropped=state.dropped,
    )
    analysis = runner.analyze(mutated)
    hardened = mutated.hardened()
    violations: List[Violation] = []
    for scenario in directed_scenarios(hardened, analysis)[:scenario_cap]:
        for violation in runner.check_scenario(mutated, scenario, analysis):
            violations.append(
                Violation(
                    oracle="metamorphic-harden-sound",
                    subject=violation.subject,
                    expected=violation.expected,
                    actual=violation.actual,
                    detail=(
                        f"after hardening {task_name!r} with reexecution(1): "
                        f"{violation.detail}"
                    ),
                    scenario=violation.scenario,
                )
            )
    return violations


def metamorphic_targets(
    state: SystemState, rng: random.Random, mutations: int
):
    """Deterministically chosen mutation targets for one campaign.

    Returns ``(wcet_tasks, drop_graphs, harden_tasks)`` — up to
    ``mutations`` entries each.  Drop targets are droppable graphs not
    already dropped; harden targets are unhardened primary tasks whose
    names survive the hardening transform unchanged.
    """
    task_names = sorted(state.applications.all_task_names)
    wcet_tasks = _sample(task_names, rng, mutations)
    candidates = sorted(
        g.name
        for g in state.applications.droppable_graphs
        if g.name not in state.dropped
    )
    drop_graphs = _sample(candidates, rng, mutations)
    unhardened = sorted(
        name for name in task_names if name not in state.plan
    )
    harden_tasks = _sample(unhardened, rng, mutations)
    return wcet_tasks, drop_graphs, harden_tasks


def _sample(pool: List[str], rng: random.Random, count: int) -> List[str]:
    """Up to ``count`` distinct elements, stable given the RNG state."""
    if not pool or count <= 0:
        return []
    if len(pool) <= count:
        return list(pool)
    return sorted(rng.sample(pool, count))
