"""Adversarial soundness verification of the analysis stack.

The paper's central claim (§5.1, Table 2) is that the Proposed WCRT
bound dominates every observable response time under any fault pattern.
``repro.verify`` attacks that claim instead of assuming it:

* :mod:`repro.verify.scenarios` — *directed* fault injection: profiles
  placed at the transition-window boundaries Algorithm 1 enumerates,
  exhaustive small-k enumeration for tiny systems, and seeded random
  fill;
* :mod:`repro.verify.oracles` — the differential dominance lattice
  (sim ≤ Proposed ≤ Naive, Adhoc ≤ Proposed, fast-path and warm-start
  result identity);
* :mod:`repro.verify.metamorphic` — mutation properties (WCET
  inflation, drop-set growth, plan hardening) that must hold without
  knowing exact bounds;
* :mod:`repro.verify.shrink` — greedy counterexample minimization;
* :mod:`repro.verify.reproducer` — self-contained replayable violation
  records (the ``corpus/`` files);
* :mod:`repro.verify.campaign` — the campaign runner behind
  ``repro.api.verify()`` and the ``repro verify`` CLI.
"""

from repro.verify.campaign import (
    CampaignConfig,
    ReplayReport,
    VerificationReport,
    replay_corpus,
    run_campaign,
)
from repro.verify.oracles import OracleRunner, SystemState, Violation
from repro.verify.reproducer import REPRODUCER_SCHEMA, Reproducer
from repro.verify.scenarios import Scenario, generate_scenarios

__all__ = [
    "CampaignConfig",
    "OracleRunner",
    "REPRODUCER_SCHEMA",
    "ReplayReport",
    "Reproducer",
    "Scenario",
    "SystemState",
    "VerificationReport",
    "Violation",
    "generate_scenarios",
    "replay_corpus",
    "run_campaign",
]
