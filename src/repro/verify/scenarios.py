"""Directed fault-injection scenario generation.

Random Monte-Carlo sampling (the paper's ``WC-Sim``) misses exactly the
corner cases Algorithm 1 enumerates: the moments where the first fault
lands on a transition-window boundary.  This module *reads the analysis
result* and generates scenarios at those boundaries instead:

* for every analyzed transition, the first fault hits the trigger task's
  instance — once under the best-case sampler (the fault lands near
  ``minStart_v``, the earliest drop decision) and once under the
  worst-case sampler (near ``maxFinish_v``, the latest);
* for time-redundant triggers, the last-attempt edges: maximum recovery
  (all ``k`` retries consumed, the final attempt succeeds) and attempt
  exhaustion (every attempt faulty);
* pairs of triggers whose normal-state windows overlap (the second fault
  arrives while the drop decision of the first is still in flight);
* message-loss profiles for every cross-processor channel of the mapped
  system (single lost transmission and full ARQ-budget exhaustion),
  when the fabric opted into contention or retransmission;
* exhaustive small-``k`` enumeration (every single fault, then every
  fault pair) when the candidate space is small enough;
* seeded random profiles to fill the remaining budget.

All generation is deterministic given the analysis result and the seed:
the scenario list of a campaign is reproducible bit-for-bit.
"""

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.analysis import MCAnalysisResult, TransitionInfo
from repro.hardening.spec import HardeningKind
from repro.hardening.transform import HardenedSystem
from repro.sim.faults import FaultKey, FaultProfile, random_profile
from repro.sim.sampler import ExecutionSampler, sampler_from_spec

#: Sampler specs used for boundary placement: the best-case sampler
#: realizes executions near ``minStart``, the worst-case sampler near
#: ``maxFinish``; the biased sampler probes in between.
_BOUNDARY_SAMPLERS: Tuple[Dict[str, Any], ...] = (
    {"kind": "worst"},
    {"kind": "best"},
)


@dataclass(frozen=True)
class Scenario:
    """One fault-injection run: a profile plus its sampling regime."""

    name: str
    #: Provenance: ``fault-free``, ``adhoc``, ``directed-boundary``,
    #: ``directed-recovery``, ``directed-pair``, ``directed-message``,
    #: ``exhaustive`` or ``random``.
    origin: str
    profile: FaultProfile
    #: Canonical sampler spec (``sampler.describe()``); rebuilt via
    #: :func:`repro.sim.sampler.sampler_from_spec` at run time.
    sampler_spec: Dict[str, Any] = field(default_factory=lambda: {"kind": "worst"})
    #: Seed of the per-run execution-time RNG.
    sampler_seed: int = 0
    hyperperiods: int = 1

    def sampler(self) -> ExecutionSampler:
        """The execution-time sampler this scenario runs under."""
        return sampler_from_spec(self.sampler_spec)

    def key(self) -> Tuple:
        """Deduplication identity (everything that affects the run)."""
        return (
            tuple(self.profile),
            tuple(sorted(self.profile.message_faults)),
            tuple(sorted(self.sampler_spec.items())),
            self.sampler_seed,
            self.hyperperiods,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (embedded in reports and reproducers)."""
        return {
            "name": self.name,
            "origin": self.origin,
            "profile": self.profile.to_dict(),
            "sampler": dict(self.sampler_spec),
            "sampler_seed": self.sampler_seed,
            "hyperperiods": self.hyperperiods,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload.get("name", "")),
            origin=str(payload.get("origin", "")),
            profile=FaultProfile.from_dict(payload.get("profile", {})),
            sampler_spec=dict(payload.get("sampler", {"kind": "worst"})),
            sampler_seed=int(payload.get("sampler_seed", 0)),
            hyperperiods=int(payload.get("hyperperiods", 1)),
        )

    def with_profile(self, profile: FaultProfile, name: str) -> "Scenario":
        """A copy running a different profile (used by the shrinker)."""
        return Scenario(
            name=name,
            origin=self.origin,
            profile=profile,
            sampler_spec=self.sampler_spec,
            sampler_seed=self.sampler_seed,
            hyperperiods=self.hyperperiods,
        )


# ----------------------------------------------------------------------
# Trigger introspection
# ----------------------------------------------------------------------

def _trigger_fault_task(hardened: HardenedSystem, primary: str) -> str:
    """The ``T'`` task a first fault must hit to fire this trigger.

    Time-redundant triggers fault the task itself; passive triggers fault
    the first *active* copy of the replica group (the voter then requests
    the passive copies).
    """
    if hardened.is_time_redundant(primary):
        return primary
    group = hardened.replica_groups[primary]
    for name in group:
        if name not in hardened.passive_tasks:
            return name
    return group[0]


def _trigger_retries(hardened: HardenedSystem, primary: str) -> int:
    """``k`` for time-redundant triggers, 0 for passive ones."""
    spec = hardened.time_redundancy.get(primary)
    return spec.reexecutions if spec is not None else 0


def _instance_of(transition: TransitionInfo) -> int:
    """Trigger instance; task-granularity transitions anchor instance 0."""
    return transition.instance if transition.instance is not None else 0


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

def directed_scenarios(
    hardened: HardenedSystem,
    analysis: MCAnalysisResult,
    hyperperiods: int = 1,
    max_pairs: int = 32,
) -> List[Scenario]:
    """Boundary, recovery-edge, and overlapping-pair scenarios.

    Reads the analyzed transitions of ``analysis`` and places the first
    fault on each transition's trigger instance, probing both window
    boundaries via the best-/worst-case samplers.
    """
    scenarios: List[Scenario] = []
    transitions = analysis.transitions
    for transition in transitions:
        primary = transition.trigger_primary
        instance = _instance_of(transition)
        fault_task = _trigger_fault_task(hardened, primary)
        first = FaultProfile(
            ((fault_task, instance, 0),), label=f"first-fault:{primary}@{instance}"
        )
        for spec in _BOUNDARY_SAMPLERS:
            scenarios.append(
                Scenario(
                    name=(
                        f"boundary:{primary}@{instance}:{spec['kind']}"
                    ),
                    origin="directed-boundary",
                    profile=first,
                    sampler_spec=dict(spec),
                    hyperperiods=hyperperiods,
                )
            )
        retries = _trigger_retries(hardened, primary)
        if retries >= 1:
            recovery = FaultProfile(
                tuple((primary, instance, attempt) for attempt in range(retries)),
                label=f"max-recovery:{primary}@{instance}",
            )
            exhausted = FaultProfile(
                tuple(
                    (primary, instance, attempt) for attempt in range(retries + 1)
                ),
                label=f"exhausted:{primary}@{instance}",
            )
            scenarios.append(
                Scenario(
                    name=f"recovery:{primary}@{instance}",
                    origin="directed-recovery",
                    profile=recovery,
                    sampler_spec={"kind": "worst"},
                    hyperperiods=hyperperiods,
                )
            )
            scenarios.append(
                Scenario(
                    name=f"exhausted:{primary}@{instance}",
                    origin="directed-recovery",
                    profile=exhausted,
                    sampler_spec={"kind": "worst"},
                    hyperperiods=hyperperiods,
                )
            )
    scenarios.extend(
        _pair_scenarios(hardened, transitions, hyperperiods, max_pairs)
    )
    return scenarios


def _pair_scenarios(
    hardened: HardenedSystem,
    transitions: Sequence[TransitionInfo],
    hyperperiods: int,
    max_pairs: int,
) -> List[Scenario]:
    """Two first faults on triggers with overlapping normal-state windows.

    The second fault arrives while the first drop decision is still in
    flight — the regime where transition classification is subtlest.
    Pairs are enumerated in deterministic transition order and capped.
    """
    scenarios: List[Scenario] = []
    for i, a in enumerate(transitions):
        for b in transitions[i + 1:]:
            if len(scenarios) >= max_pairs:
                return scenarios
            if a.trigger_primary == b.trigger_primary:
                continue
            if a.max_finish < b.min_start or b.max_finish < a.min_start:
                continue  # windows disjoint: no interleaved drop decision
            key_a = (
                _trigger_fault_task(hardened, a.trigger_primary),
                _instance_of(a),
                0,
            )
            key_b = (
                _trigger_fault_task(hardened, b.trigger_primary),
                _instance_of(b),
                0,
            )
            if key_a == key_b:
                continue
            label = (
                f"{a.trigger_primary}@{_instance_of(a)}"
                f"+{b.trigger_primary}@{_instance_of(b)}"
            )
            scenarios.append(
                Scenario(
                    name=f"pair:{label}",
                    origin="directed-pair",
                    profile=FaultProfile((key_a, key_b), label=f"pair:{label}"),
                    sampler_spec={"kind": "worst"},
                    hyperperiods=hyperperiods,
                )
            )
    return scenarios


def fault_candidates(
    hardened: HardenedSystem, hyperperiods: int = 1
) -> List[FaultKey]:
    """Every fault that can change timing, in deterministic order.

    Mirrors the candidate space of
    :func:`repro.sim.faults.random_profile`: attempts of time-redundant
    tasks and first attempts of replica copies.
    """
    candidates: List[FaultKey] = []
    hyperperiod = hardened.applications.hyperperiod
    for graph in hardened.applications.graphs:
        instances = round(hyperperiods * hyperperiod / graph.period)
        for task in graph.tasks:
            if hardened.is_time_redundant(task.name):
                k = hardened.time_redundancy[task.name].reexecutions
                for instance in range(instances):
                    for attempt in range(k + 1):
                        candidates.append((task.name, instance, attempt))
    for primary, spec in hardened.plan.items():
        if not spec.is_replicated:
            continue
        graph = hardened.source.owner_of(primary)
        instances = round(hyperperiods * hyperperiod / graph.period)
        for copy in hardened.replica_groups[primary]:
            for instance in range(instances):
                candidates.append((copy, instance, 0))
    return sorted(set(candidates))


def exhaustive_scenarios(
    hardened: HardenedSystem,
    limit: int,
    hyperperiods: int = 1,
) -> List[Scenario]:
    """Every single fault, then every fault pair, while under ``limit``.

    For tiny systems this covers the complete k ≤ 2 fault space — the
    regime where analysis bugs are easiest to localize.  Returns an empty
    list when even the singletons exceed the limit.
    """
    candidates = fault_candidates(hardened, hyperperiods)
    if not candidates or len(candidates) > limit:
        return []
    scenarios: List[Scenario] = []
    for key in candidates:
        task, instance, attempt = key
        scenarios.append(
            Scenario(
                name=f"k1:{task}@{instance}.{attempt}",
                origin="exhaustive",
                profile=FaultProfile((key,), label="exhaustive-k1"),
                sampler_spec={"kind": "worst"},
                hyperperiods=hyperperiods,
            )
        )
    pair_budget = limit - len(scenarios)
    pairs = (len(candidates) * (len(candidates) - 1)) // 2
    if pairs <= pair_budget:
        for i, a in enumerate(candidates):
            for b in candidates[i + 1:]:
                scenarios.append(
                    Scenario(
                        name=(
                            f"k2:{a[0]}@{a[1]}.{a[2]}+{b[0]}@{b[1]}.{b[2]}"
                        ),
                        origin="exhaustive",
                        profile=FaultProfile((a, b), label="exhaustive-k2"),
                        sampler_spec={"kind": "worst"},
                        hyperperiods=hyperperiods,
                    )
                )
    return scenarios


def message_loss_scenarios(
    hardened: HardenedSystem,
    mapping,
    arq_retries: int,
    hyperperiods: int = 1,
    max_channels: int = 16,
) -> List[Scenario]:
    """Directed message-fault profiles for every cross-processor channel.

    For each channel of the hardened task set whose endpoints map to
    different processors (deterministic channel order, capped at
    ``max_channels``):

    * a single lost first transmission (the ARQ re-send path), and
    * full budget exhaustion — attempts ``0..k`` all lost, probing the
      corrupt-delivery analog of re-execution exhaustion (only when the
      fabric grants retransmissions, ``k >= 1``).

    Returns an empty list when the mapping keeps every channel local or
    the caller passes no mapping.
    """
    if mapping is None:
        return []
    scenarios: List[Scenario] = []
    channels: List[Tuple[str, str]] = []
    seen: Set[Tuple[str, str]] = set()
    for graph in hardened.applications.graphs:
        for channel in graph.channels:
            pair = (channel.src, channel.dst)
            if pair in seen:
                continue
            seen.add(pair)
            try:
                cross = mapping[channel.src] != mapping[channel.dst]
            except Exception:
                continue  # mapping does not cover the channel (partial state)
            if cross:
                channels.append(pair)
    for src, dst in channels[:max_channels]:
        single = FaultProfile(
            (),
            label=f"msg-loss:{src}>{dst}",
            message_faults=((src, dst, 0, 0),),
        )
        scenarios.append(
            Scenario(
                name=f"msg-loss:{src}>{dst}",
                origin="directed-message",
                profile=single,
                sampler_spec={"kind": "worst"},
                hyperperiods=hyperperiods,
            )
        )
        if arq_retries >= 1:
            exhausted = FaultProfile(
                (),
                label=f"msg-exhausted:{src}>{dst}",
                message_faults=tuple(
                    (src, dst, 0, attempt)
                    for attempt in range(arq_retries + 1)
                ),
            )
            scenarios.append(
                Scenario(
                    name=f"msg-exhausted:{src}>{dst}",
                    origin="directed-message",
                    profile=exhausted,
                    sampler_spec={"kind": "worst"},
                    hyperperiods=hyperperiods,
                )
            )
    return scenarios


def random_scenarios(
    hardened: HardenedSystem,
    count: int,
    rng: random.Random,
    max_faults: int = 3,
    hyperperiods: int = 1,
) -> List[Scenario]:
    """Seeded random fill (the classic WC-Sim regime, biased sampling)."""
    scenarios: List[Scenario] = []
    for index in range(count):
        profile = random_profile(
            hardened, rng, max_faults=max_faults, hyperperiods=hyperperiods
        )
        scenarios.append(
            Scenario(
                name=f"random:{index}",
                origin="random",
                profile=profile,
                sampler_spec={"kind": "biased", "worst_probability": 0.5},
                sampler_seed=rng.getrandbits(32),
                hyperperiods=hyperperiods,
            )
        )
    return scenarios


def generate_scenarios(
    hardened: HardenedSystem,
    analysis: MCAnalysisResult,
    budget: int,
    seed: int = 0,
    max_faults: int = 3,
    exhaustive_limit: int = 64,
    hyperperiods: int = 1,
    mapping=None,
    arq_retries: int = 0,
) -> List[Scenario]:
    """The campaign's scenario list: directed first, random fill last.

    Deterministic in ``(analysis, seed, budget)``.  Order of precedence
    under the budget: the fault-free baseline, the adhoc worst trace,
    directed boundary/recovery/pair scenarios, directed message-loss
    profiles (when a ``mapping`` is given), exhaustive small-k
    enumeration, then seeded random profiles.  Duplicates (same profile,
    sampler and seed) are pruned before trimming to the budget.
    """
    from repro.sim.faults import adhoc_profile, no_fault_profile

    ordered: List[Scenario] = [
        Scenario(
            name="fault-free",
            origin="fault-free",
            profile=no_fault_profile(),
            sampler_spec={"kind": "worst"},
            hyperperiods=hyperperiods,
        ),
        Scenario(
            name="adhoc",
            origin="adhoc",
            profile=adhoc_profile(hardened, hyperperiods=hyperperiods),
            sampler_spec={"kind": "worst"},
            hyperperiods=hyperperiods,
        ),
    ]
    ordered.extend(directed_scenarios(hardened, analysis, hyperperiods))
    ordered.extend(
        message_loss_scenarios(
            hardened, mapping, arq_retries, hyperperiods=hyperperiods
        )
    )
    ordered.extend(exhaustive_scenarios(hardened, exhaustive_limit, hyperperiods))

    seen: Set[Tuple] = set()
    unique: List[Scenario] = []
    for scenario in ordered:
        key = scenario.key()
        if key in seen:
            continue
        seen.add(key)
        unique.append(scenario)
    unique = unique[:budget]

    if len(unique) < budget:
        rng = random.Random(seed)
        for scenario in random_scenarios(
            hardened,
            budget - len(unique),
            rng,
            max_faults=max_faults,
            hyperperiods=hyperperiods,
        ):
            key = scenario.key()
            if key in seen:
                continue
            seen.add(key)
            unique.append(scenario)
    return unique
