"""Differential oracles over the dominance lattice.

The soundness claims under test, for a fixed system state:

* **sim-le-proposed** — no simulated response time may exceed the
  Proposed (Algorithm 1) WCRT bound, for any fault profile;
* **proposed-le-naive** — the Naive baseline widens every execution
  range, so its bound must dominate the Proposed bound;
* **adhoc-le-proposed** — the Adhoc worst trace is one observable
  execution, so the Proposed bound must dominate it;
* **fastpath-identical** — enabling memoization/warm-start/pruning may
  not change a single result value;
* **warmstart-identical** — holistic fixed points seeded with the
  normal-state solution must converge to the cold-start solution;
* **flat-le-contended** — every contention-aware comm backend only
  widens channel worst cases over the flat fabric, so re-analyzing the
  same state under the ``flat`` backend must never yield a larger WCRT;
* **arq-monotone** — granting one more ARQ retransmission (``k -> k+1``)
  widens every cross-processor channel bound, so it may never tighten a
  graph's WCRT.

Any inversion is recorded as a :class:`Violation`.  The metamorphic
properties live in :mod:`repro.verify.metamorphic`; both feed the same
violation type so the campaign and the shrinker treat them uniformly.
"""

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.analysis import MCAnalysisResult
from repro.core.factory import make_analysis
from repro.core.fastpath import FastPathConfig
from repro.hardening.spec import HardeningPlan
from repro.hardening.transform import HardenedSystem, harden
from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.model.serialization import (
    application_set_from_dict,
    application_set_to_dict,
    architecture_from_dict,
    architecture_to_dict,
    mapping_from_dict,
    mapping_to_dict,
)
from repro.sched.wcrt import SchedBackend
from repro.sim.engine import Simulator
from repro.sim.trace import SimulationResult
from repro.verify.scenarios import Scenario

#: Oracle names, for report breakdowns and reproducer records.
ORACLES = (
    "sim-le-proposed",
    "proposed-le-naive",
    "adhoc-le-proposed",
    "fastpath-identical",
    "warmstart-identical",
    "metamorphic-wcet-monotone",
    "metamorphic-drop-monotone",
    "metamorphic-harden-sound",
    "flat-le-contended",
    "arq-monotone",
)


@dataclass(frozen=True)
class Violation:
    """One observed inversion of a soundness relation."""

    #: Which relation was violated (one of :data:`ORACLES`).
    oracle: str
    #: The graph or task the numbers belong to.
    subject: str
    #: The value that should dominate (the bound / the reference side).
    expected: float
    #: The value that exceeded or diverged from it.
    actual: float
    detail: str = ""
    #: The fault-injection scenario, for simulation oracles.
    scenario: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {
            "oracle": self.oracle,
            "subject": self.subject,
            "expected": self.expected,
            "actual": self.actual,
            "detail": self.detail,
            "scenario": self.scenario,
        }


@dataclass(frozen=True)
class SystemState:
    """Everything a verification check needs to rebuild the system.

    Unlike :class:`~repro.model.serialization.SystemBundle` this always
    carries a concrete mapping and drop set — it is the unit the shrinker
    mutates and the reproducer serializes.
    """

    applications: ApplicationSet
    architecture: Architecture
    mapping: Mapping
    plan: HardeningPlan = field(default_factory=HardeningPlan)
    dropped: Tuple[str, ...] = ()

    def hardened(self) -> HardenedSystem:
        """``T' = harden(T, plan)``."""
        return harden(self.applications, self.plan)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (reused by reproducers)."""
        return {
            "applications": application_set_to_dict(self.applications),
            "architecture": architecture_to_dict(self.architecture),
            "mapping": mapping_to_dict(self.mapping),
            "plan": self.plan.to_dict(),
            "dropped": sorted(self.dropped),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SystemState":
        """Inverse of :meth:`to_dict`."""
        return cls(
            applications=application_set_from_dict(payload["applications"]),
            architecture=architecture_from_dict(payload["architecture"]),
            mapping=mapping_from_dict(payload["mapping"]),
            plan=HardeningPlan.from_dict(payload.get("plan", {})),
            dropped=tuple(payload.get("dropped", ())),
        )


def result_digest(result: MCAnalysisResult) -> Dict[str, Any]:
    """Canonical content of an analysis result, for identity oracles.

    Exact values, no rounding: the fast path and warm start claim
    *byte-identical* results, so any drift is a violation.
    """
    return {
        "verdicts": {
            name: {
                "wcrt": verdict.wcrt,
                "normal_wcrt": verdict.normal_wcrt,
                "dropped": verdict.dropped,
                "worst_transition": verdict.worst_transition,
            }
            for name, verdict in sorted(result.verdicts.items())
        },
        "task_completion": dict(sorted(result.task_completion.items())),
    }


class OracleRunner:
    """Runs the oracle lattice for one analysis configuration.

    The ``backend`` is the injection point for differential testing: the
    campaign's own tests wire a deliberately broken back-end here and
    assert the oracles catch it.
    """

    def __init__(
        self,
        backend: Optional[SchedBackend] = None,
        granularity: str = "job",
        policy: str = "fp",
        tolerance: float = 1e-6,
    ):
        self._backend = backend
        self._granularity = granularity
        self._policy = policy
        self._tolerance = tolerance

    @property
    def tolerance(self) -> float:
        """Comparison tolerance for the inequality oracles."""
        return self._tolerance

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------

    def analyze(
        self,
        state: SystemState,
        method: str = "proposed",
        fast_path: Optional[FastPathConfig] = None,
        backend: Optional[SchedBackend] = None,
    ) -> MCAnalysisResult:
        """One analysis run of ``state`` under this runner's settings."""
        analysis = make_analysis(
            method=method,
            backend=backend if backend is not None else self._backend,
            granularity=self._granularity,
            policy=self._policy,
            fast_path=fast_path,
        )
        return analysis.analyze(
            state.hardened(), state.architecture, state.mapping, state.dropped
        )

    def simulate(self, state: SystemState, scenario: Scenario) -> SimulationResult:
        """One deterministic simulation of ``scenario`` on ``state``."""
        simulator = Simulator(
            state.hardened(),
            state.architecture,
            state.mapping,
            dropped=state.dropped,
            policy=self._policy,
        )
        return simulator.run(
            profile=scenario.profile,
            sampler=scenario.sampler(),
            rng=random.Random(scenario.sampler_seed),
            hyperperiods=scenario.hyperperiods,
        )

    # ------------------------------------------------------------------
    # Oracles
    # ------------------------------------------------------------------

    def check_scenario(
        self,
        state: SystemState,
        scenario: Scenario,
        analysis: Optional[MCAnalysisResult] = None,
    ) -> List[Violation]:
        """**sim-le-proposed** for one scenario.

        Every simulated response time must stay below the analysis WCRT
        bound of its graph.  Once a run enters the critical state,
        dropped graphs carry no guarantee (their verdict covers the
        normal state only) and are skipped.
        """
        if analysis is None:
            analysis = self.analyze(state)
        sim = self.simulate(state, scenario)
        dropped = frozenset(state.dropped)
        violations: List[Violation] = []
        for graph, response in sorted(sim.response_times().items()):
            if response is None:
                continue
            if sim.entered_critical_state and graph in dropped:
                continue
            bound = analysis.verdicts[graph].wcrt
            if response > bound + self._tolerance:
                violations.append(
                    Violation(
                        oracle="sim-le-proposed",
                        subject=graph,
                        expected=bound,
                        actual=response,
                        detail=(
                            f"simulated response exceeds the Proposed bound "
                            f"under profile {scenario.profile!r}"
                        ),
                        scenario=scenario.to_dict(),
                    )
                )
        return violations

    def check_lattice(
        self,
        state: SystemState,
        analysis: Optional[MCAnalysisResult] = None,
    ) -> List[Violation]:
        """**proposed-le-naive** and **adhoc-le-proposed**."""
        if analysis is None:
            analysis = self.analyze(state)
        naive = self.analyze(state, method="naive")
        adhoc = self.analyze(state, method="adhoc", backend=None)
        violations: List[Violation] = []
        for graph, verdict in sorted(analysis.verdicts.items()):
            if verdict.dropped:
                continue
            naive_bound = naive.verdicts[graph].wcrt
            if verdict.wcrt > naive_bound + self._tolerance:
                violations.append(
                    Violation(
                        oracle="proposed-le-naive",
                        subject=graph,
                        expected=naive_bound,
                        actual=verdict.wcrt,
                        detail="Proposed bound exceeds the Naive baseline",
                    )
                )
            adhoc_response = adhoc.verdicts[graph].wcrt
            if adhoc_response > verdict.wcrt + self._tolerance:
                violations.append(
                    Violation(
                        oracle="adhoc-le-proposed",
                        subject=graph,
                        expected=verdict.wcrt,
                        actual=adhoc_response,
                        detail="Adhoc worst trace exceeds the Proposed bound",
                    )
                )
        return violations

    def check_comm(
        self,
        state: SystemState,
        analysis: Optional[MCAnalysisResult] = None,
    ) -> List[Violation]:
        """**flat-le-contended** and **arq-monotone**.

        Both probes rewrite only the fabric's comm configuration via
        :func:`repro.comm.with_comm` and re-analyze: the flat reference
        (no ARQ) must bound every contended WCRT from below, and one
        extra retransmission in the ARQ budget must never tighten a
        bound.  No-op (empty list) for states whose architecture never
        opted into contention — the flat/no-ARQ configuration *is* the
        reference, so there is nothing to compare.
        """
        from repro.comm import with_comm

        ic = state.architecture.interconnect
        if ic.comm_backend == "flat" and ic.arq_retries == 0:
            return []
        if analysis is None:
            analysis = self.analyze(state)
        violations: List[Violation] = []
        flat_state = replace(
            state,
            architecture=with_comm(
                state.architecture,
                backend="flat",
                arq_retries=0,
                arq_timeout=0.0,
            ),
        )
        flat = self.analyze(flat_state)
        wider_state = replace(
            state,
            architecture=with_comm(
                state.architecture, arq_retries=ic.arq_retries + 1
            ),
        )
        wider = self.analyze(wider_state)
        for graph, verdict in sorted(analysis.verdicts.items()):
            if verdict.dropped:
                continue
            flat_bound = flat.verdicts[graph].wcrt
            if flat_bound > verdict.wcrt + self._tolerance:
                violations.append(
                    Violation(
                        oracle="flat-le-contended",
                        subject=graph,
                        expected=verdict.wcrt,
                        actual=flat_bound,
                        detail=(
                            f"flat reference bound exceeds the "
                            f"{ic.comm_backend!r} backend bound "
                            f"(arq_retries={ic.arq_retries})"
                        ),
                    )
                )
            wider_bound = wider.verdicts[graph].wcrt
            if verdict.wcrt > wider_bound + self._tolerance:
                violations.append(
                    Violation(
                        oracle="arq-monotone",
                        subject=graph,
                        expected=verdict.wcrt,
                        actual=wider_bound,
                        detail=(
                            f"raising the ARQ budget "
                            f"{ic.arq_retries} -> {ic.arq_retries + 1} "
                            f"tightened the WCRT bound"
                        ),
                    )
                )
        return violations

    def check_consistency(self, state: SystemState) -> List[Violation]:
        """**fastpath-identical** and **warmstart-identical**.

        The fast path (memoize + warm start + prune) and a holistic
        warm-started run must be value-identical to their cold
        counterparts.
        """
        violations: List[Violation] = []
        cold = self.analyze(state, fast_path=None)
        fast = self.analyze(state, fast_path=FastPathConfig())
        violations.extend(
            _digest_violations(
                "fastpath-identical", result_digest(cold), result_digest(fast)
            )
        )
        from repro.sched.holistic import HolisticAnalysisBackend

        holistic_cold = self.analyze(
            state, fast_path=None, backend=HolisticAnalysisBackend()
        )
        holistic_warm = self.analyze(
            state,
            fast_path=FastPathConfig(memoize=False, warm_start=True, prune=False),
            backend=HolisticAnalysisBackend(),
        )
        violations.extend(
            _digest_violations(
                "warmstart-identical",
                result_digest(holistic_cold),
                result_digest(holistic_warm),
            )
        )
        return violations


def _digest_violations(
    oracle: str, reference: Dict[str, Any], candidate: Dict[str, Any]
) -> List[Violation]:
    """Per-value diff of two result digests (empty when identical)."""
    violations: List[Violation] = []
    for graph, ref in reference["verdicts"].items():
        cand = candidate["verdicts"].get(graph)
        if cand == ref:
            continue
        violations.append(
            Violation(
                oracle=oracle,
                subject=graph,
                expected=ref["wcrt"],
                actual=cand["wcrt"] if cand is not None else float("nan"),
                detail=f"verdict diverged: {ref!r} != {cand!r}",
            )
        )
    for task, ref_bound in reference["task_completion"].items():
        cand_bound = candidate["task_completion"].get(task)
        if cand_bound == ref_bound:
            continue
        violations.append(
            Violation(
                oracle=oracle,
                subject=task,
                expected=ref_bound,
                actual=cand_bound if cand_bound is not None else float("nan"),
                detail="task completion bound diverged",
            )
        )
    return violations
