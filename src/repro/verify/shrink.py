"""Greedy counterexample minimization (delta debugging, one-at-a-time).

A raw violation from the campaign typically drags a full benchmark
system and a multi-fault profile along.  The shrinker minimizes it in
two phases while the violation keeps reproducing:

1. **fault profile** — remove faults one at a time (a sim-dominance
   counterexample with one fault localizes the broken transition);
2. **system** — remove whole applications, then individual tasks (with
   their channels), then remaining channels.  Every candidate is
   validated by simply re-running the oracle: candidates that fail to
   build (dangling mapping entries are pruned, but e.g. removing the
   last graph raises) are rejected.

The reproduction predicate is injected, so the same shrinker serves
simulation oracles (re-simulate the profile) and analysis-level oracles
(re-run the comparison).  The total number of re-checks is bounded;
shrinking is best-effort, never a soundness requirement.
"""

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.model.application import ApplicationSet
from repro.model.mapping import Mapping
from repro.sim.faults import FaultProfile
from repro.verify.oracles import SystemState, Violation

#: ``reproduces(state, profile) -> Violation | None`` — re-runs the
#: original oracle on a candidate; ``profile`` is ``None`` for
#: profile-free (analysis-level) violations.
ReproducePredicate = Callable[
    [SystemState, Optional[FaultProfile]], Optional[Violation]
]


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    state: SystemState
    profile: Optional[FaultProfile]
    violation: Violation
    #: Successful reduction steps (accepted candidates).
    steps: int
    #: Oracle re-runs spent (accepted + rejected candidates).
    checks: int
    #: Whether the check budget ran out before a fixed point.
    exhausted: bool


class _Budget:
    """Counts oracle re-runs against a hard cap."""

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def take(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def shrink_counterexample(
    state: SystemState,
    profile: Optional[FaultProfile],
    violation: Violation,
    reproduces: ReproducePredicate,
    max_checks: int = 300,
) -> ShrinkResult:
    """Minimize ``(state, profile)`` while ``reproduces`` keeps firing.

    ``violation`` is the original finding; every accepted candidate
    replaces it with the (equivalent-oracle) violation the candidate
    produced, so the final result's numbers match the final system.
    """
    budget = _Budget(max_checks)
    steps = 0

    if profile is not None:
        profile, violation, removed = _shrink_profile(
            state, profile, violation, reproduces, budget
        )
        steps += removed

    state, profile, violation, removed = _shrink_system(
        state, profile, violation, reproduces, budget
    )
    steps += removed

    return ShrinkResult(
        state=state,
        profile=profile,
        violation=violation,
        steps=steps,
        checks=budget.used,
        exhausted=budget.used >= budget.limit,
    )


# ----------------------------------------------------------------------
# Phase 1: the fault profile
# ----------------------------------------------------------------------

def _shrink_profile(
    state: SystemState,
    profile: FaultProfile,
    violation: Violation,
    reproduces: ReproducePredicate,
    budget: _Budget,
) -> Tuple[FaultProfile, Violation, int]:
    """Drop faults one at a time until no single removal reproduces."""
    steps = 0
    changed = True
    while changed:
        changed = False
        for fault in list(profile):
            remaining = [f for f in profile if f != fault]
            candidate = FaultProfile(remaining, label=profile.label)
            if not budget.take():
                return profile, violation, steps
            found = _try(reproduces, state, candidate)
            if found is not None:
                profile = candidate
                violation = found
                steps += 1
                changed = True
                break
    return profile, violation, steps


# ----------------------------------------------------------------------
# Phase 2: the system
# ----------------------------------------------------------------------

def _shrink_system(
    state: SystemState,
    profile: Optional[FaultProfile],
    violation: Violation,
    reproduces: ReproducePredicate,
    budget: _Budget,
) -> Tuple[SystemState, Optional[FaultProfile], Violation, int]:
    """Remove applications, then tasks, then channels."""
    steps = 0
    for builder in (_without_graph, _without_task, _without_channel):
        changed = True
        while changed:
            changed = False
            for target in builder.targets(state):
                candidate = _try_build(builder, state, target)
                if candidate is None:
                    continue
                cand_profile = _restrict_profile(profile, candidate)
                if not budget.take():
                    return state, profile, violation, steps
                found = _try(reproduces, candidate, cand_profile)
                if found is not None:
                    state = candidate
                    profile = cand_profile
                    violation = found
                    steps += 1
                    changed = True
                    break
    return state, profile, violation, steps


def _try(
    reproduces: ReproducePredicate,
    state: SystemState,
    profile: Optional[FaultProfile],
) -> Optional[Violation]:
    """Run the predicate; a raising candidate counts as not reproducing."""
    try:
        return reproduces(state, profile)
    except Exception:  # noqa: BLE001 — invalid candidates are expected
        return None


def _try_build(builder, state: SystemState, target) -> Optional[SystemState]:
    try:
        return builder(state, target)
    except Exception:  # noqa: BLE001 — e.g. removing the last graph/task
        return None


def _restrict_profile(
    profile: Optional[FaultProfile], state: SystemState
) -> Optional[FaultProfile]:
    """Drop faults whose primary task left the system.

    Fault keys name ``T'`` tasks (replica copies contain ``#``); a key
    survives iff the primary it descends from still exists.
    """
    if profile is None:
        return None
    known = set(state.applications.all_task_names)
    kept = [
        key
        for key in profile
        if key[0].split("#", 1)[0] in known
    ]
    return FaultProfile(kept, label=profile.label)


def _restrict_mapping(mapping: Mapping, removed_primaries: set) -> Mapping:
    """Drop mapping entries of ``T'`` tasks descending from removed tasks."""
    return Mapping(
        {
            task: processor
            for task, processor in mapping.as_dict().items()
            if task.split("#", 1)[0] not in removed_primaries
        }
    )


def _restrict_state(
    state: SystemState,
    applications: ApplicationSet,
    removed_primaries: set,
    removed_graphs: set,
) -> SystemState:
    plan = state.plan
    for task in sorted(removed_primaries):
        if task in plan:
            from repro.hardening.spec import HardeningSpec

            plan = plan.with_spec(task, HardeningSpec.none())
    return SystemState(
        applications=applications,
        architecture=state.architecture,
        mapping=_restrict_mapping(state.mapping, removed_primaries),
        plan=plan,
        dropped=tuple(
            name for name in state.dropped if name not in removed_graphs
        ),
    )


def _without_graph(state: SystemState, graph_name: str) -> SystemState:
    graphs = [g for g in state.applications.graphs if g.name != graph_name]
    removed = {
        task.name for task in state.applications.graph(graph_name).tasks
    }
    return _restrict_state(
        state, ApplicationSet(graphs), removed, {graph_name}
    )


def _without_graph_targets(state: SystemState) -> List[str]:
    return [g.name for g in state.applications.graphs]


_without_graph.targets = _without_graph_targets


def _without_task(state: SystemState, target: Tuple[str, str]) -> SystemState:
    graph_name, task_name = target
    graph = state.applications.graph(graph_name)
    tasks = [t for t in graph.tasks if t.name != task_name]
    channels = [
        c
        for c in graph.channels
        if c.src != task_name and c.dst != task_name
    ]
    new_graph = graph.derive(tasks=tasks, channels=channels)
    return _restrict_state(
        state,
        state.applications.replacing(new_graph),
        {task_name},
        set(),
    )


def _without_task_targets(state: SystemState) -> List[Tuple[str, str]]:
    return [
        (graph.name, task.name)
        for graph in state.applications.graphs
        for task in graph.tasks
    ]


_without_task.targets = _without_task_targets


def _without_channel(
    state: SystemState, target: Tuple[str, str, str]
) -> SystemState:
    graph_name, src, dst = target
    graph = state.applications.graph(graph_name)
    channels = [c for c in graph.channels if (c.src, c.dst) != (src, dst)]
    new_graph = graph.derive(channels=channels)
    return _restrict_state(
        state, state.applications.replacing(new_graph), set(), set()
    )


def _without_channel_targets(state: SystemState) -> List[Tuple[str, str, str]]:
    return [
        (graph.name, channel.src, channel.dst)
        for graph in state.applications.graphs
        for channel in graph.channels
    ]


_without_channel.targets = _without_channel_targets
