"""Self-contained, replayable violation records (the ``corpus/`` files).

A reproducer carries *everything* needed to re-observe a violation from
its JSON alone: the (shrunken) system, the fault profile and sampling
regime, and the recorded expected/actual values.  Replay does **not**
need the implementation that produced the bad bound — the violated
expectation is stored as data — so a reproducer minted against a broken
back-end still replays after that back-end is gone: it re-simulates the
scenario deterministically and checks the recorded bound against the
recomputed observation.

Two kinds exist:

* ``scenario`` — a sim-dominance (or metamorphic-harden) violation;
  replay re-simulates and compares against the recorded bound;
* ``quarantine`` — a DSE poison point imported from a PR-2
  :class:`~repro.core.guard.QuarantineLog`; replay re-evaluates the
  design and checks whether it still fails.

Analysis-level violations (lattice inversions, fast-path divergence)
are also written as ``scenario``-less records; their replay re-runs the
recorded oracle with the stock implementations.
"""

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ReproError
from repro.verify.oracles import OracleRunner, SystemState, Violation
from repro.verify.scenarios import Scenario

#: Schema marker of reproducer JSON files.
REPRODUCER_SCHEMA = "repro.verify.reproducer/1"

#: Schema marker of the quarantine-log header line (see
#: :class:`repro.core.guard.GuardedEvaluator`).
QUARANTINE_HEADER_SCHEMA = "repro.verify.quarantine-header/1"


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one reproducer."""

    #: Whether the recorded violation still fires.
    reproduced: bool
    #: Whether the recomputation matched the recorded ``actual`` value
    #: (bit-for-bit determinism of the replay pipeline).
    deterministic: bool
    expected: float
    #: The value recomputed by this replay.
    actual: float
    detail: str = ""


@dataclass(frozen=True)
class Reproducer:
    """One violation, frozen with its full reproduction context."""

    kind: str  # "scenario" | "analysis" | "quarantine"
    oracle: str
    subject: str
    expected: float
    actual: float
    detail: str
    system: Dict[str, Any]
    scenario: Optional[Dict[str, Any]] = None
    #: Quarantine payload (design + error) for ``quarantine`` records.
    design: Optional[Dict[str, Any]] = None
    policy: str = "fp"
    granularity: str = "job"
    tolerance: float = 1e-6
    #: Accepted shrink steps that produced this minimal form.
    shrink_steps: int = 0
    #: Free-form provenance (campaign seed, source file, ...).
    meta: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_violation(
        cls,
        violation: Violation,
        state: SystemState,
        policy: str = "fp",
        granularity: str = "job",
        tolerance: float = 1e-6,
        shrink_steps: int = 0,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "Reproducer":
        """Freeze a campaign violation together with its system state."""
        kind = "scenario" if violation.scenario is not None else "analysis"
        return cls(
            kind=kind,
            oracle=violation.oracle,
            subject=violation.subject,
            expected=violation.expected,
            actual=violation.actual,
            detail=violation.detail,
            system=state.to_dict(),
            scenario=violation.scenario,
            policy=policy,
            granularity=granularity,
            tolerance=tolerance,
            shrink_steps=shrink_steps,
            meta=dict(meta or {}),
        )

    @classmethod
    def from_quarantine(
        cls, header: Dict[str, Any], record: Dict[str, Any]
    ) -> "Reproducer":
        """Adapt one quarantine JSONL record to the reproducer schema.

        ``header`` is the one-time first line the PR-2 guard writes
        (schema marker + problem serialization); ``record`` is one
        poison-point line.
        """
        if header.get("schema") != QUARANTINE_HEADER_SCHEMA:
            raise ReproError(
                f"not a quarantine header: {header.get('schema')!r}"
            )
        design = record.get("design")
        if design is None:
            raise ReproError("quarantine record carries no design")
        system = {
            "applications": header["applications"],
            "architecture": header["architecture"],
            # DesignPoint serializes the bare assignment dict; wrap it in
            # the mapping codec's envelope so SystemState can rebuild it.
            "mapping": {"assignment": design.get("mapping", {})},
            "plan": design.get("plan", {}),
            "dropped": design.get("dropped", []),
        }
        return cls(
            kind="quarantine",
            oracle="guard-quarantine",
            subject=record.get("stage", "evaluate"),
            expected=0.0,
            actual=1.0,
            detail=(
                f"{record.get('error_type', 'Exception')}: "
                f"{record.get('error', '')}"
            ),
            system=system,
            design=design,
            meta={
                "error_type": record.get("error_type"),
                "attempts": record.get("attempts"),
            },
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (the on-disk corpus format)."""
        payload: Dict[str, Any] = {
            "schema": REPRODUCER_SCHEMA,
            "kind": self.kind,
            "oracle": self.oracle,
            "subject": self.subject,
            "expected": self.expected,
            "actual": self.actual,
            "detail": self.detail,
            "system": self.system,
            "scenario": self.scenario,
            "policy": self.policy,
            "granularity": self.granularity,
            "tolerance": self.tolerance,
            "shrink_steps": self.shrink_steps,
            "meta": self.meta,
        }
        if self.design is not None:
            payload["design"] = self.design
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Reproducer":
        """Inverse of :meth:`to_dict`."""
        if payload.get("schema") != REPRODUCER_SCHEMA:
            raise ReproError(
                f"unsupported reproducer schema {payload.get('schema')!r} "
                f"(expected {REPRODUCER_SCHEMA!r})"
            )
        return cls(
            kind=payload["kind"],
            oracle=payload["oracle"],
            subject=payload["subject"],
            expected=float(payload["expected"]),
            actual=float(payload["actual"]),
            detail=payload.get("detail", ""),
            system=payload["system"],
            scenario=payload.get("scenario"),
            design=payload.get("design"),
            policy=payload.get("policy", "fp"),
            granularity=payload.get("granularity", "job"),
            tolerance=float(payload.get("tolerance", 1e-6)),
            shrink_steps=int(payload.get("shrink_steps", 0)),
            meta=dict(payload.get("meta", {})),
        )

    def digest(self) -> str:
        """Content digest identifying this reproducer (file naming)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def save(self, corpus_dir: Union[str, Path]) -> Path:
        """Write into ``corpus_dir`` as ``reproducer-<digest12>.json``."""
        directory = Path(corpus_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"reproducer-{self.digest()[:12]}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Reproducer":
        """Read one reproducer JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def state(self) -> SystemState:
        """The recorded system, rebuilt."""
        return SystemState.from_dict(self.system)

    def replay(self) -> ReplayResult:
        """Re-observe the violation from the record alone."""
        if self.kind == "scenario":
            return self._replay_scenario()
        if self.kind == "quarantine":
            return self._replay_quarantine()
        return self._replay_analysis()

    def _replay_scenario(self) -> ReplayResult:
        """Re-simulate deterministically; compare to the recorded bound."""
        if self.scenario is None:
            raise ReproError("scenario reproducer carries no scenario")
        state = self.state()
        runner = OracleRunner(policy=self.policy, granularity=self.granularity)
        scenario = Scenario.from_dict(self.scenario)
        sim = runner.simulate(state, scenario)
        response = sim.graph_response_time(self.subject)
        if response is None:
            return ReplayResult(
                reproduced=False,
                deterministic=False,
                expected=self.expected,
                actual=float("nan"),
                detail=f"subject {self.subject!r} produced no response",
            )
        deterministic = abs(response - self.actual) <= 1e-9
        reproduced = response > self.expected + self.tolerance
        return ReplayResult(
            reproduced=reproduced,
            deterministic=deterministic,
            expected=self.expected,
            actual=response,
            detail=(
                "observed response still exceeds the recorded bound"
                if reproduced
                else "recorded bound dominates the replayed observation"
            ),
        )

    def _replay_analysis(self) -> ReplayResult:
        """Re-run the recorded oracle with the stock implementations."""
        state = self.state()
        runner = OracleRunner(policy=self.policy, granularity=self.granularity)
        if self.oracle in ("fastpath-identical", "warmstart-identical"):
            violations = runner.check_consistency(state)
        elif self.oracle in ("proposed-le-naive", "adhoc-le-proposed"):
            violations = runner.check_lattice(state)
        else:
            raise ReproError(
                f"cannot replay analysis oracle {self.oracle!r}"
            )
        match = next(
            (
                v
                for v in violations
                if v.oracle == self.oracle and v.subject == self.subject
            ),
            None,
        )
        if match is None:
            return ReplayResult(
                reproduced=False,
                deterministic=True,
                expected=self.expected,
                actual=self.expected,
                detail="oracle no longer fires with stock implementations",
            )
        return ReplayResult(
            reproduced=True,
            deterministic=abs(match.actual - self.actual) <= 1e-9,
            expected=match.expected,
            actual=match.actual,
            detail=match.detail,
        )

    def _replay_quarantine(self) -> ReplayResult:
        """Re-evaluate the quarantined design; does it still blow up?"""
        if self.design is None:
            raise ReproError("quarantine reproducer carries no design")
        from repro.core.evaluator import Evaluator
        from repro.core.problem import DesignPoint, Problem

        state = self.state()
        problem = Problem(
            applications=state.applications, architecture=state.architecture
        )
        design = DesignPoint.from_dict(self.design)
        try:
            Evaluator(problem).evaluate(design)
        except Exception as error:  # noqa: BLE001 — that IS the check
            return ReplayResult(
                reproduced=True,
                deterministic=type(error).__name__ == self.meta.get("error_type"),
                expected=self.expected,
                actual=self.actual,
                detail=f"evaluation still raises {type(error).__name__}: {error}",
            )
        return ReplayResult(
            reproduced=False,
            deterministic=True,
            expected=self.expected,
            actual=self.expected,
            detail="quarantined design evaluates cleanly now",
        )


def load_quarantine_reproducers(path: Union[str, Path]) -> List[Reproducer]:
    """Parse one quarantine JSONL file into reproducers.

    Files written before the header line existed (or with the header
    lost) yield an empty list — the caller should surface a warning, not
    an error, so old logs don't break corpus replay.
    """
    lines = [
        line
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
    if not lines:
        return []
    header = json.loads(lines[0])
    if header.get("schema") != QUARANTINE_HEADER_SCHEMA:
        return []
    reproducers = []
    for line in lines[1:]:
        record = json.loads(line)
        if record.get("design") is None:
            continue
        reproducers.append(Reproducer.from_quarantine(header, record))
    return reproducers
