"""The verification campaign runner.

One campaign = one system state + one seeded scenario budget, pushed
through every oracle:

1. analyze once with the configured (possibly adversarial) back-end;
2. simulate the generated scenario list, checking **sim-le-proposed**;
3. run the analysis-level lattice (**proposed-le-naive**,
   **adhoc-le-proposed**) and consistency (**fastpath-identical**,
   **warmstart-identical**) oracles;
4. run the metamorphic mutations;
5. shrink each violation to a minimal reproducer and write it into the
   corpus directory.

Everything is deterministic in ``(system, config.seed, config.budget)``:
two runs produce identical :class:`VerificationReport` content, which
the acceptance tests and CI assert literally.

Surfaced as :func:`repro.api.verify` and the ``repro verify`` CLI.
"""

import json
import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.analysis import MCAnalysisResult
from repro.core.problem import Problem
from repro.errors import ReproError
from repro.hardening.spec import HardeningPlan
from repro.model.serialization import SystemBundle
from repro.obs import events as obs_events
from repro.obs.events import VerificationCompleted, ViolationFound
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.sched.wcrt import SchedBackend
from repro.sim.faults import FaultProfile
from repro.verify import metamorphic as meta_checks
from repro.verify.oracles import OracleRunner, SystemState, Violation
from repro.verify.reproducer import (
    REPRODUCER_SCHEMA,
    Reproducer,
    load_quarantine_reproducers,
)
from repro.verify.scenarios import Scenario, generate_scenarios
from repro.verify.shrink import ReproducePredicate, shrink_counterexample

_LOG = get_logger("verify")


@dataclass(frozen=True)
class CampaignConfig:
    """Tuning knobs of one verification campaign."""

    #: Fault-injection scenarios to run (directed first, random fill).
    budget: int = 200
    #: Drives scenario fill, mutation choice, and the default design.
    seed: int = 0
    granularity: str = "job"
    policy: str = "fp"
    #: Faults per random profile.
    max_faults: int = 3
    hyperperiods: int = 1
    #: Max scenarios for the exhaustive small-k enumeration.
    exhaustive_limit: int = 64
    #: Run the analysis-level lattice oracles.
    lattice: bool = True
    #: Run the fast-path / warm-start identity oracles.
    consistency: bool = True
    #: Run the metamorphic mutation properties.
    metamorphic: bool = True
    #: Mutation targets per metamorphic property.
    metamorphic_mutations: int = 2
    #: Shrink violations before writing reproducers.
    shrink: bool = True
    #: Oracle re-runs the shrinker may spend per violation.
    max_shrink_checks: int = 300
    #: Violations to shrink + persist (the rest are reported unshrunk).
    max_reproducers: int = 5
    #: Where reproducer JSON files go (``None``: keep them in memory).
    corpus_dir: Optional[Union[str, Path]] = None
    #: ``sched()`` back-end under test (``None``: the stock default).
    #: This is the fault-injection point for the harness's own tests.
    backend: Optional[SchedBackend] = None
    tolerance: float = 1e-6

    def __post_init__(self):
        if self.budget < 1:
            raise ReproError(f"verify budget must be >= 1, got {self.budget}")
        if self.max_shrink_checks < 0:
            raise ReproError("max_shrink_checks must be >= 0")
        if self.metamorphic_mutations < 0:
            raise ReproError("metamorphic_mutations must be >= 0")


@dataclass
class VerificationReport:
    """Everything one campaign did, in deterministic JSON-ready form."""

    label: str
    seed: int
    budget: int
    granularity: str
    policy: str
    #: One entry per simulated scenario: the scenario's canonical dict
    #: plus its verdict (``ok`` or ``violation``).
    scenarios: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-oracle check/violation tallies.
    oracles: Dict[str, Dict[str, int]] = field(default_factory=dict)
    violations: List[Dict[str, Any]] = field(default_factory=list)
    #: Corpus paths of the written reproducers.
    reproducers: List[str] = field(default_factory=list)
    #: Accepted shrink steps across all shrunk violations.
    shrink_steps: int = 0
    #: Oracle re-runs the shrinker spent.
    shrink_checks: int = 0

    @property
    def ok(self) -> bool:
        """Whether the campaign observed zero violations."""
        return not self.violations

    @property
    def checks(self) -> int:
        """Total oracle checks."""
        return sum(entry["checks"] for entry in self.oracles.values())

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form — no wall-clock, bit-stable across runs."""
        return {
            "label": self.label,
            "seed": self.seed,
            "budget": self.budget,
            "granularity": self.granularity,
            "policy": self.policy,
            "ok": self.ok,
            "scenarios": self.scenarios,
            "oracles": self.oracles,
            "violations": self.violations,
            "reproducers": self.reproducers,
            "shrink_steps": self.shrink_steps,
            "shrink_checks": self.shrink_checks,
        }

    def write(self, path: Union[str, Path]) -> None:
        """Write the report as indented, key-sorted JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True)
        )


# ----------------------------------------------------------------------
# System-state resolution
# ----------------------------------------------------------------------

def state_from_bundle(bundle: SystemBundle, seed: int = 0) -> SystemState:
    """A concrete system state from a (possibly mapping-less) bundle.

    Bundles without a mapping (the built-in suite names) get a
    deterministic seeded design: the locality-first partition heuristic
    with uniform re-execution and every *second* droppable graph dropped
    — leaving both surviving droppables (for the drop-monotonicity
    mutations) and nontrivial critical-state transitions.
    """
    if bundle.mapping is not None:
        return SystemState(
            applications=bundle.applications,
            architecture=bundle.architecture,
            mapping=bundle.mapping,
            plan=bundle.plan or HardeningPlan(),
            dropped=(),
        )
    from repro.dse.chromosome import partition_chromosome

    problem = Problem(
        applications=bundle.applications, architecture=bundle.architecture
    )
    droppable = tuple(
        g.name for g in bundle.applications.droppable_graphs
    )
    design = partition_chromosome(
        problem, random.Random(seed), dropped=droppable[::2]
    ).decode(problem)
    return SystemState(
        applications=bundle.applications,
        architecture=bundle.architecture,
        mapping=design.mapping,
        plan=design.plan,
        dropped=tuple(sorted(design.dropped)),
    )


def scatter_state(state: SystemState) -> SystemState:
    """A copy of ``state`` remapped round-robin across all processors.

    The seeded default design is locality-first: whole graphs collapse
    onto one processor, so no channel ever crosses the fabric and the
    contention-aware comm backends degenerate to the flat reference.
    Comm verification wants the opposite — deterministic round-robin
    over the hardened task set maximises cross-processor channels, so
    arbitration, ARQ folding and message-loss scenarios are actually
    exercised.
    """
    hardened = state.hardened()
    processors = state.architecture.processor_names
    assignment = {}
    index = 0
    for graph in hardened.applications.graphs:
        for task in graph.tasks:
            assignment[task.name] = processors[index % len(processors)]
            index += 1
    from repro.model.mapping import Mapping

    return replace(state, mapping=Mapping(assignment))


# ----------------------------------------------------------------------
# Findings: a violation plus everything needed to re-check it
# ----------------------------------------------------------------------

@dataclass
class _Finding:
    violation: Violation
    state: SystemState
    profile: Optional[FaultProfile]
    recheck: ReproducePredicate


def _retag(violation: Violation, oracle: str) -> Violation:
    if violation.oracle == oracle:
        return violation
    return replace(violation, oracle=oracle)


def _scenario_recheck(
    runner: OracleRunner, scenario: Scenario, oracle: str
) -> ReproducePredicate:
    """Re-simulate (a possibly reduced profile of) the scenario."""

    def recheck(
        state: SystemState, profile: Optional[FaultProfile]
    ) -> Optional[Violation]:
        candidate = (
            scenario
            if profile is None
            else scenario.with_profile(profile, scenario.name)
        )
        for violation in runner.check_scenario(state, candidate):
            return _retag(violation, oracle)
        return None

    return recheck


def _oracle_recheck(
    check: Callable[[SystemState], List[Violation]], oracle: str
) -> ReproducePredicate:
    """Re-run a profile-free oracle and pick the matching violation."""

    def recheck(
        state: SystemState, profile: Optional[FaultProfile]
    ) -> Optional[Violation]:
        for violation in check(state):
            if violation.oracle == oracle:
                return violation
        return None

    return recheck


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------

def run_campaign(
    state: SystemState,
    config: Optional[CampaignConfig] = None,
    label: str = "system",
) -> VerificationReport:
    """Run one full verification campaign against ``state``."""
    config = config or CampaignConfig()
    registry = metrics()
    registry.counter("verify.campaigns").inc()
    runner = OracleRunner(
        backend=config.backend,
        granularity=config.granularity,
        policy=config.policy,
        tolerance=config.tolerance,
    )
    report = VerificationReport(
        label=label,
        seed=config.seed,
        budget=config.budget,
        granularity=config.granularity,
        policy=config.policy,
    )
    findings: List[_Finding] = []

    with registry.timer("verify.seconds").time():
        analysis = runner.analyze(state)
        _run_scenarios(runner, state, analysis, config, report, findings)
        if config.lattice:
            _run_profile_free(
                runner.check_lattice,
                ("proposed-le-naive", "adhoc-le-proposed"),
                runner,
                state,
                report,
                findings,
            )
            if _comm_active(state):
                _run_profile_free(
                    runner.check_comm,
                    ("flat-le-contended", "arq-monotone"),
                    runner,
                    state,
                    report,
                    findings,
                )
        if config.consistency:
            _run_profile_free(
                runner.check_consistency,
                ("fastpath-identical", "warmstart-identical"),
                runner,
                state,
                report,
                findings,
            )
        if config.metamorphic:
            _run_metamorphic(runner, state, analysis, config, report, findings)
        _shrink_and_persist(config, report, findings)

    registry.counter("verify.violations").inc(len(report.violations))
    bus = obs_events.bus()
    if bus.wants(VerificationCompleted):
        bus.publish(
            VerificationCompleted(
                label=label,
                scenarios=len(report.scenarios),
                checks=report.checks,
                violations=len(report.violations),
                shrink_steps=report.shrink_steps,
                reproducers=len(report.reproducers),
            )
        )
    _LOG.info(
        "campaign finished %s",
        kv(
            label=label,
            scenarios=len(report.scenarios),
            checks=report.checks,
            violations=len(report.violations),
        ),
    )
    return report


def _tally(report: VerificationReport, oracle: str, violations: int) -> None:
    entry = report.oracles.setdefault(oracle, {"checks": 0, "violations": 0})
    entry["checks"] += 1
    entry["violations"] += violations


def _record_violation(
    report: VerificationReport, violation: Violation
) -> None:
    report.violations.append(violation.to_dict())
    metrics().counter("verify.violations.found").inc()
    bus = obs_events.bus()
    if bus.wants(ViolationFound):
        scenario = violation.scenario or {}
        bus.publish(
            ViolationFound(
                oracle=violation.oracle,
                subject=violation.subject,
                expected=violation.expected,
                actual=violation.actual,
                scenario=scenario.get("name"),
            )
        )


def _comm_active(state: SystemState) -> bool:
    """Whether the state's fabric opted into contention or ARQ.

    Gates the comm oracles and message-loss scenarios so legacy systems
    (flat backend, no retransmission budget) keep byte-identical
    campaign reports.
    """
    interconnect = state.architecture.interconnect
    return (
        getattr(interconnect, "comm_backend", "flat") != "flat"
        or getattr(interconnect, "arq_retries", 0) > 0
    )


def _run_scenarios(
    runner: OracleRunner,
    state: SystemState,
    analysis: MCAnalysisResult,
    config: CampaignConfig,
    report: VerificationReport,
    findings: List[_Finding],
) -> None:
    comm_active = _comm_active(state)
    scenarios = generate_scenarios(
        state.hardened(),
        analysis,
        budget=config.budget,
        seed=config.seed,
        max_faults=config.max_faults,
        exhaustive_limit=config.exhaustive_limit,
        hyperperiods=config.hyperperiods,
        mapping=state.mapping if comm_active else None,
        arq_retries=state.architecture.interconnect.arq_retries
        if comm_active
        else 0,
    )
    counter = metrics().counter("verify.scenarios")
    for scenario in scenarios:
        counter.inc()
        violations = runner.check_scenario(state, scenario, analysis)
        _tally(report, "sim-le-proposed", len(violations))
        entry = scenario.to_dict()
        entry["verdict"] = "violation" if violations else "ok"
        report.scenarios.append(entry)
        for violation in violations:
            _record_violation(report, violation)
            findings.append(
                _Finding(
                    violation=violation,
                    state=state,
                    profile=scenario.profile,
                    recheck=_scenario_recheck(
                        runner, scenario, violation.oracle
                    ),
                )
            )


def _run_profile_free(
    check: Callable[[SystemState], List[Violation]],
    oracles: Tuple[str, ...],
    runner: OracleRunner,
    state: SystemState,
    report: VerificationReport,
    findings: List[_Finding],
) -> None:
    violations = check(state)
    by_oracle: Dict[str, int] = {name: 0 for name in oracles}
    for violation in violations:
        by_oracle[violation.oracle] = by_oracle.get(violation.oracle, 0) + 1
        _record_violation(report, violation)
        findings.append(
            _Finding(
                violation=violation,
                state=state,
                profile=None,
                recheck=_oracle_recheck(check, violation.oracle),
            )
        )
    for name in oracles:
        _tally(report, name, by_oracle.get(name, 0))


def _run_metamorphic(
    runner: OracleRunner,
    state: SystemState,
    analysis: MCAnalysisResult,
    config: CampaignConfig,
    report: VerificationReport,
    findings: List[_Finding],
) -> None:
    rng = random.Random(config.seed ^ 0x5EED)
    wcet_tasks, drop_graphs, harden_tasks = meta_checks.metamorphic_targets(
        state, rng, config.metamorphic_mutations
    )
    for task in wcet_tasks:
        check = _bind(meta_checks.check_wcet_monotonicity, runner, task)
        _apply_metamorphic(
            check, "metamorphic-wcet-monotone", state, report, findings
        )
    for graph in drop_graphs:
        check = _bind(meta_checks.check_drop_monotonicity, runner, graph)
        _apply_metamorphic(
            check, "metamorphic-drop-monotone", state, report, findings
        )
    for task in harden_tasks:
        check = _bind(meta_checks.check_harden_soundness, runner, task)
        _apply_metamorphic(
            check, "metamorphic-harden-sound", state, report, findings
        )


def _bind(
    check_fn, runner: OracleRunner, target: str
) -> Callable[[SystemState], List[Violation]]:
    def check(state: SystemState) -> List[Violation]:
        return check_fn(runner, state, target)

    return check


def _apply_metamorphic(
    check: Callable[[SystemState], List[Violation]],
    oracle: str,
    state: SystemState,
    report: VerificationReport,
    findings: List[_Finding],
) -> None:
    violations = check(state)
    _tally(report, oracle, len(violations))
    for violation in violations:
        _record_violation(report, violation)
        findings.append(
            _Finding(
                violation=violation,
                state=state,
                profile=None,
                recheck=_oracle_recheck(check, oracle),
            )
        )


def _shrink_and_persist(
    config: CampaignConfig,
    report: VerificationReport,
    findings: List[_Finding],
) -> None:
    registry = metrics()
    for finding in findings[: config.max_reproducers]:
        state, profile, violation = (
            finding.state,
            finding.profile,
            finding.violation,
        )
        steps = 0
        if config.shrink and config.max_shrink_checks > 0:
            result = shrink_counterexample(
                state,
                profile,
                violation,
                finding.recheck,
                max_checks=config.max_shrink_checks,
            )
            state, profile, violation = (
                result.state,
                result.profile,
                result.violation,
            )
            steps = result.steps
            report.shrink_steps += result.steps
            report.shrink_checks += result.checks
            registry.counter("verify.shrink.steps").inc(result.steps)
            registry.counter("verify.shrink.checks").inc(result.checks)
        reproducer = Reproducer.from_violation(
            violation,
            state,
            policy=config.policy,
            granularity=config.granularity,
            tolerance=config.tolerance,
            shrink_steps=steps,
            meta={"seed": config.seed, "label": report.label},
        )
        if config.corpus_dir is not None:
            path = reproducer.save(config.corpus_dir)
            report.reproducers.append(str(path))
            registry.counter("verify.reproducers").inc()
            _LOG.warning(
                "reproducer written %s",
                kv(oracle=violation.oracle, path=str(path)),
            )


# ----------------------------------------------------------------------
# Corpus replay
# ----------------------------------------------------------------------

@dataclass
class ReplayReport:
    """Outcome of replaying a corpus directory."""

    #: One entry per replayed reproducer.
    entries: List[Dict[str, Any]] = field(default_factory=list)
    #: Files that were skipped (wrong schema, unreadable).
    skipped: List[str] = field(default_factory=list)

    @property
    def still_reproducing(self) -> int:
        """Reproducers whose violation still fires."""
        return sum(1 for e in self.entries if e["reproduced"])

    @property
    def ok(self) -> bool:
        """Whether every replayed violation is gone (bug fixed)."""
        return self.still_reproducing == 0

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {
            "ok": self.ok,
            "still_reproducing": self.still_reproducing,
            "entries": self.entries,
            "skipped": self.skipped,
        }


def replay_corpus(corpus_dir: Union[str, Path]) -> ReplayReport:
    """Replay every reproducer (and quarantine log) under a directory.

    ``*.json`` files carrying the reproducer schema are replayed
    directly; ``*.jsonl`` files are treated as PR-2 quarantine logs and
    replayed through the quarantine adapter.  Anything else lands in
    ``skipped``.
    """
    directory = Path(corpus_dir)
    if not directory.exists():
        raise ReproError(f"corpus directory {directory} does not exist")
    report = ReplayReport()
    for path in sorted(directory.rglob("*.json")):
        try:
            reproducer = Reproducer.load(path)
        except (ReproError, KeyError, ValueError, OSError):
            report.skipped.append(str(path))
            continue
        _replay_one(report, reproducer, str(path))
    for path in sorted(directory.rglob("*.jsonl")):
        try:
            reproducers = load_quarantine_reproducers(path)
        except (ValueError, OSError):
            report.skipped.append(str(path))
            continue
        if not reproducers:
            report.skipped.append(str(path))
            continue
        for index, reproducer in enumerate(reproducers):
            _replay_one(report, reproducer, f"{path}#{index}")
    metrics().counter("verify.replays").inc(len(report.entries))
    return report


def _replay_one(
    report: ReplayReport, reproducer: Reproducer, source: str
) -> None:
    try:
        outcome = reproducer.replay()
    except Exception as error:  # noqa: BLE001 — a broken record is a finding
        report.entries.append(
            {
                "source": source,
                "kind": reproducer.kind,
                "oracle": reproducer.oracle,
                "subject": reproducer.subject,
                "reproduced": True,
                "deterministic": False,
                "detail": f"replay raised {type(error).__name__}: {error}",
            }
        )
        return
    report.entries.append(
        {
            "source": source,
            "kind": reproducer.kind,
            "oracle": reproducer.oracle,
            "subject": reproducer.subject,
            "reproduced": outcome.reproduced,
            "deterministic": outcome.deterministic,
            "detail": outcome.detail,
        }
    )


# Re-exported for corpus tooling convenience.
__all__ = [
    "CampaignConfig",
    "REPRODUCER_SCHEMA",
    "ReplayReport",
    "VerificationReport",
    "replay_corpus",
    "run_campaign",
    "scatter_state",
    "state_from_bundle",
]
