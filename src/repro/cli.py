"""Command-line interface: ``python -m repro <command>``.

Operates on JSON system files (written by
:func:`repro.model.serialization.save_system` or ``repro export``):

* ``analyze``  — WCRT analysis of a mapped system (proposed/naive/adhoc);
* ``simulate`` — Monte-Carlo simulation campaign (WC-Sim);
* ``explore``  — GA design-space exploration, optionally saving the
  Pareto-optimal design points;
* ``verify``   — adversarial soundness campaign (differential oracles,
  metamorphic properties, counterexample shrinking, corpus replay);
* ``export``   — write a built-in benchmark suite to a system file;
* ``generate`` — write a random TGFF-style system to a file;
* ``serve``    — run the JSON-over-HTTP analysis/exploration service
  (``--processes N`` pre-forks a supervised SO_REUSEPORT fleet);
* ``submit``   — send a request to a running ``repro serve`` instance
  (retries 429/503/transport faults idempotently by default);
* ``chaos``    — fault-injection campaign against a supervised fleet,
  asserting zero wrong answers under worker kills and broken sockets.

Examples::

    python -m repro export cruise cruise.json --with-reference-mapping
    python -m repro analyze cruise.json --dropped info,diag,log,cam
    python -m repro simulate cruise.json --profiles 500 --dropped info
    python -m repro explore cruise.json --generations 20 --out pareto.json

Every command accepts the observability flags ``--log-level``,
``--progress``, ``--metrics-out PATH`` (JSON metrics + per-generation
records) and ``--trace-out PATH`` (JSONL event + span trace); final
results go to stdout, telemetry to stderr/files.  A recorded trace is
inspected offline with ``repro trace summarize <file>`` (per-phase
self-time and critical path) or converted for Perfetto with
``repro trace chrome <file> <out.json>``.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.api import validate_dropped
from repro.benchgen.tgff import generate_problem
from repro.core import FastPathConfig, make_analysis
from repro.errors import ReproError
from repro.hardening.spec import HardeningPlan
from repro.hardening.transform import harden
from repro.model.serialization import load_system, save_system
from repro.obs import events as obs_events
from repro.obs.events import (
    EarlyStopped,
    GenerationCompleted,
    JsonlTraceWriter,
    InMemoryCollector,
    ProgressLogger,
    event_to_dict,
)
from repro.obs.logging import configure as configure_logging
from repro.obs.logging import get_logger
from repro.obs.metrics import metrics
from repro.obs.trace import tracer
from repro.sim import BiasedSampler, MonteCarloEstimator, Simulator
from repro.suites import benchmark_names, get_benchmark

_LOG = get_logger("cli")


def _load_mapped_system(args):
    bundle = load_system(args.system)
    if bundle.mapping is None:
        raise ReproError(
            f"{args.system} carries no mapping; add one or use `repro explore`"
        )
    if args.plan:
        plan = HardeningPlan.from_dict(json.loads(Path(args.plan).read_text()))
    elif bundle.plan is not None:
        plan = bundle.plan
    else:
        plan = HardeningPlan()
    hardened = harden(bundle.applications, plan)
    dropped = validate_dropped(bundle.applications, args.dropped or "")
    architecture = _comm_overridden(bundle.architecture, args)
    return hardened, architecture, bundle.mapping, dropped


def _add_comm_flags(parser) -> None:
    """The ``--comm-*`` flag group shared by analyze/simulate/verify.

    ``--comm-backend`` validates against the registry via argparse
    ``choices`` — unknown names list every registered backend, the same
    UX as ``--method``.
    """
    from repro.comm import COMM_BACKENDS

    parser.add_argument(
        "--comm-backend", choices=COMM_BACKENDS, default=None,
        help="interconnect contention model (overrides the system's "
        "comm_backend field)",
    )
    parser.add_argument(
        "--comm-arq", type=int, default=None, metavar="K",
        help="message-fault budget: lost transfers are re-sent up to K "
        "times (overrides the system's arq_retries field)",
    )
    parser.add_argument(
        "--comm-arq-timeout", type=float, default=None, metavar="T",
        help="loss-detection overhead charged per ARQ retransmission",
    )


def _comm_overridden(architecture, args):
    """Apply the ``--comm-backend``/``--comm-arq`` flags to the fabric."""
    backend = getattr(args, "comm_backend", None)
    arq = getattr(args, "comm_arq", None)
    timeout = getattr(args, "comm_arq_timeout", None)
    if backend is None and arq is None and timeout is None:
        return architecture
    from repro.comm import with_comm

    return with_comm(
        architecture, backend=backend, arq_retries=arq, arq_timeout=timeout
    )


def _cmd_analyze(args) -> int:
    hardened, architecture, mapping, dropped = _load_mapped_system(args)
    analysis = make_analysis(
        method=args.method,
        backend=None if args.backend == "window" else args.backend,
        granularity=args.granularity,
        policy=args.policy,
        bus_contention=args.bus_contention,
        # Memoization + warm starts change no reported number (prune
        # stays off), so the fast path is on unless explicitly disabled.
        fast_path=None if args.no_fast_path else FastPathConfig(),
    )
    result = analysis.analyze(hardened, architecture, mapping, dropped)
    print(f"{'application':>16} | {'wcrt':>10} | {'deadline':>9} | status")
    print("-" * 52)
    for name, verdict in result.verdicts.items():
        status = "dropped" if verdict.dropped else (
            "ok" if verdict.meets_deadline else "MISS"
        )
        print(
            f"{name:>16} | {verdict.wcrt:10.2f} | {verdict.deadline:9.1f} | {status}"
        )
    if args.method == "proposed":
        print(f"\ntransitions analyzed: {result.transitions_analyzed}")
    return 0 if result.schedulable else 1


def _cmd_simulate(args) -> int:
    hardened, architecture, mapping, dropped = _load_mapped_system(args)
    simulator = Simulator(
        hardened, architecture, mapping, dropped=dropped, policy=args.policy
    )
    estimator = MonteCarloEstimator(
        simulator, sampler=BiasedSampler(args.worst_bias), max_faults=args.max_faults
    )
    result = estimator.estimate(profiles=args.profiles, seed=args.seed)
    print(
        f"{'application':>16} | {'max resp':>9} | {'p99':>9} | {'mean':>9}"
    )
    print("-" * 54)
    for graph, worst in sorted(result.worst_response.items()):
        p99 = result.percentile(graph, 0.99)
        mean = result.mean_response(graph)
        print(f"{graph:>16} | {worst:9.2f} | {p99:9.2f} | {mean:9.2f}")
    print(
        f"\nprofiles: {result.profiles}, critical runs: {result.critical_runs}, "
        f"runs with drops: {result.runs_with_drops}"
    )
    if result.deadline_miss_runs:
        for graph, count in sorted(result.deadline_miss_runs.items()):
            print(f"deadline misses observed for {graph!r} in {count} run(s)")
    return 0


def _explore_request_from_args(args):
    """The ``ExploreRequest`` an ``explore`` argv resolves to.

    Split out so the config-parity tests can assert that a flag vector,
    the equivalent HTTP payload and the equivalent ``api`` call all land
    on the same request.
    """
    from repro.dse import ExploreRequest

    return ExploreRequest.from_options(
        args.system,
        backend=args.backend,
        islands=args.islands,
        migration_every=args.migration_every,
        migrants=args.migrants,
        topology=args.topology,
        generations=args.generations,
        population=args.population,
        seed=args.seed,
        workers=args.workers,
        eval_retries=args.eval_retries,
        eval_budget=args.eval_budget,
        quarantine=args.quarantine,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )


def _cmd_explore(args) -> int:
    from repro.dse.islands import run_explore

    request = _explore_request_from_args(args)
    result = run_explore(
        request, execution=args.execution, fleet=args.fleet
    )
    print(f"evaluations: {result.statistics.evaluations}, "
          f"feasible: {result.statistics.feasible}")
    if result.statistics.guard_failures:
        print(
            f"guarded failures: {result.statistics.guard_failures} "
            f"(fallback evaluations: {result.statistics.fallback_evaluations})"
        )
    if result.statistics.interrupted:
        print(f"interrupted after generation {result.generations_run}")
    print(f"\nPareto front ({len(result.pareto)} points):")
    print(f"{'power':>10} | {'service':>8} | dropped")
    print("-" * 44)
    for power, service, dropped in result.front_as_rows():
        label = "{" + ", ".join(dropped) + "}" if dropped else "{}"
        print(f"{power:10.3f} | {service:8.1f} | {label}")
    if args.out:
        payload = {
            "pareto": [
                {
                    "power": point.power,
                    "service": point.service,
                    "design": point.design.to_dict(),
                }
                for point in result.pareto
            ]
        }
        Path(args.out).write_text(json.dumps(payload, indent=2))
        _LOG.info("wrote %d design point(s) to %s", len(result.pareto), args.out)
    return 0 if result.pareto else 1


def _cmd_verify(args) -> int:
    from repro import api
    from repro.verify.campaign import replay_corpus

    if args.replay:
        report = replay_corpus(args.replay)
        for entry in report.entries:
            status = "REPRODUCES" if entry["reproduced"] else "fixed"
            print(
                f"{status:>10} | {entry['oracle']:>26} | "
                f"{entry['subject']:>16} | {entry['source']}"
            )
        for source in report.skipped:
            print(f"{'skipped':>10} | {'-':>26} | {'-':>16} | {source}")
        print(
            f"\nreplayed: {len(report.entries)}, "
            f"still reproducing: {report.still_reproducing}, "
            f"skipped: {len(report.skipped)}"
        )
        if args.out:
            Path(args.out).write_text(
                json.dumps(report.to_dict(), indent=2, sort_keys=True)
            )
            _LOG.info("wrote replay report to %s", args.out)
        return 0 if report.ok else 1

    if not args.system:
        raise ReproError("a system (file or suite name) is required "
                         "unless --replay is given")
    report = api.verify(
        args.system,
        budget=args.budget,
        seed=args.seed,
        granularity=args.granularity,
        policy=args.policy,
        max_faults=args.max_faults,
        shrink=not args.no_shrink,
        metamorphic=not args.no_metamorphic,
        corpus_dir=args.corpus,
        comm_backend=args.comm_backend,
        comm_arq=args.comm_arq,
        comm_arq_timeout=args.comm_arq_timeout,
    )
    print(f"{'oracle':>26} | {'checks':>6} | violations")
    print("-" * 50)
    for oracle, entry in sorted(report.oracles.items()):
        print(
            f"{oracle:>26} | {entry['checks']:6d} | {entry['violations']}"
        )
    print(
        f"\nscenarios: {len(report.scenarios)}, checks: {report.checks}, "
        f"violations: {len(report.violations)}"
    )
    if report.violations:
        for violation in report.violations:
            print(
                f"VIOLATION [{violation['oracle']}] {violation['subject']}: "
                f"expected <= {violation['expected']:.6f}, "
                f"observed {violation['actual']:.6f}"
            )
        if report.reproducers:
            print("reproducers written:")
            for path in report.reproducers:
                print(f"  {path}")
    if args.out:
        report.write(args.out)
        _LOG.info("wrote verification report to %s", args.out)
    return 0 if report.ok else 1


def _cmd_margins(args) -> int:
    from repro.core.sensitivity import deadline_margins, wcet_scaling_margin

    bundle = load_system(args.system)
    if bundle.mapping is None:
        raise ReproError(f"{args.system} carries no mapping")
    plan = bundle.plan or HardeningPlan()
    if args.plan:
        plan = HardeningPlan.from_dict(json.loads(Path(args.plan).read_text()))
    dropped = validate_dropped(bundle.applications, args.dropped or "")

    margins = deadline_margins(
        bundle.applications, plan, bundle.architecture, bundle.mapping, dropped
    )
    print(f"{'application':>16} | {'deadline margin':>15}")
    print("-" * 36)
    for name, margin in sorted(margins.items()):
        print(f"{name:>16} | {margin:15.2f}")
    scaling = wcet_scaling_margin(
        bundle.applications,
        plan,
        bundle.architecture,
        bundle.mapping,
        dropped,
        tolerance=args.tolerance,
    )
    print("\nuniform WCET scaling margin: " + f"{scaling:.2f}x")
    return 0 if scaling > 0 else 1


def _cmd_export(args) -> int:
    benchmark = get_benchmark(args.benchmark)
    if args.with_reference_mapping and args.benchmark == "cruise":
        from repro.suites.cruise import cruise_reference_plan, cruise_sample_mappings

        _hardened, mappings = cruise_sample_mappings()
        save_system(
            args.out,
            benchmark.problem.applications,
            benchmark.problem.architecture,
            mapping=mappings[0],
            plan=cruise_reference_plan(),
        )
        _LOG.info(
            "wrote %s with reference plan and sample mapping 1 to %s",
            args.benchmark,
            args.out,
        )
        return 0
    save_system(
        args.out,
        benchmark.problem.applications,
        benchmark.problem.architecture,
    )
    _LOG.info("wrote %s to %s", args.benchmark, args.out)
    return 0


def _cmd_generate(args) -> int:
    problem = generate_problem(
        seed=args.seed,
        critical_graphs=args.critical,
        droppable_graphs=args.droppable,
        processors=args.processors,
    )
    save_system(args.out, problem.applications, problem.architecture)
    _LOG.info(
        "wrote random system (seed %d, %d tasks, %d processors) to %s",
        args.seed,
        len(problem.applications.all_tasks),
        len(problem.architecture),
        args.out,
    )
    return 0


def _serve_cache_dir(args):
    """The disk-cache directory: explicit flag, else under state-dir."""
    if args.cache_dir:
        return args.cache_dir
    if args.state_dir:
        return str(Path(args.state_dir) / "cache")
    return None


def _cmd_serve_supervised(args) -> int:
    """Run a pre-fork fleet: N ``repro serve`` workers on one port."""
    from repro.serve.supervisor import Supervisor, SupervisorConfig

    worker_argv = [
        sys.executable, "-m", "repro", "serve",
        "--processes", "1",
        "--workers", str(args.workers),
        "--queue-size", str(args.queue_size),
        "--max-batch", str(args.max_batch),
        "--batch-window-ms", str(args.batch_window_ms),
        "--job-workers", str(args.job_workers),
        "--drain-timeout", str(args.drain_timeout),
        "--brownout-enter", str(args.brownout_enter),
        "--brownout-exit", str(args.brownout_exit),
        "--brownout-dwell", str(args.brownout_dwell),
        "--aging-floor", str(args.aging_floor),
    ]
    if args.quota_rps is not None:
        worker_argv += ["--quota-rps", str(args.quota_rps)]
    if args.quota_burst is not None:
        worker_argv += ["--quota-burst", str(args.quota_burst)]
    if args.brownout:
        worker_argv.append("--brownout")
    if args.state_dir:
        worker_argv += ["--state-dir", args.state_dir]
    cache_dir = _serve_cache_dir(args)
    if cache_dir:
        worker_argv += ["--cache-dir", cache_dir]
    if args.cache_size is not None:
        worker_argv += ["--cache-size", str(args.cache_size)]
    if args.allow_local_paths:
        worker_argv.append("--allow-local-paths")
    status_path = args.status_file
    if status_path is None and args.state_dir:
        status_path = str(Path(args.state_dir) / "supervisor.json")
    supervisor = Supervisor(SupervisorConfig(
        worker_argv,
        processes=args.processes,
        host=args.host,
        port=args.port,
        status_path=status_path,
        drain_timeout=args.drain_timeout,
    ))
    supervisor.start()
    print(
        f"supervising {args.processes} workers on {supervisor.url}",
        file=sys.stderr,
    )
    return supervisor.run()


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.serve.app import ReproServer, ServeConfig

    if args.processes > 1:
        return _cmd_serve_supervised(args)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        max_batch=args.max_batch,
        batch_window_seconds=args.batch_window_ms / 1000.0,
        state_dir=args.state_dir,
        job_workers=args.job_workers,
        cache_capacity=args.cache_size,
        allow_local_paths=args.allow_local_paths,
        cache_dir=_serve_cache_dir(args),
        reuse_port=args.reuse_port,
        drain_timeout=args.drain_timeout,
        worker_id=args._worker_id,
        supervisor_status_path=args._status_file,
        quota_rps=args.quota_rps,
        quota_burst=args.quota_burst,
        brownout=args.brownout,
        brownout_enter=args.brownout_enter,
        brownout_exit=args.brownout_exit,
        brownout_dwell=args.brownout_dwell,
        aging_seconds=args.aging_floor,
    )
    server = ReproServer(config)
    stop = threading.Event()

    def _on_signal(_signum, _frame):
        stop.set()

    # SIGTERM drains exactly like Ctrl-C: finish/park in-flight work,
    # commit checkpoints, exit 0 (the supervisor relies on this).
    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    server.start()
    print(f"serving on {server.url}", file=sys.stderr)
    try:
        while not stop.wait(0.5):
            pass
    except KeyboardInterrupt:
        pass
    clean = server.drain(timeout=args.drain_timeout)
    return 0 if clean else 1


def _cmd_chaos(args) -> int:
    if args.mode == "overload":
        from repro.serve.chaos import OverloadConfig, run_overload

        report = run_overload(OverloadConfig(
            seed=args.seed,
            duration_seconds=args.duration,
            critical_budget_seconds=args.critical_budget,
            report_path=args.report,
        ))
        print(report.render())
        return 0 if report.ok else 1

    from repro.serve.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        seed=args.seed,
        processes=args.processes,
        duration_seconds=args.duration,
        clients=args.clients,
        kill_every_seconds=args.kill_every,
        mischief_every_seconds=args.mischief_every,
        state_dir=args.state_dir,
        report_path=args.report,
    )
    report = run_chaos(config)
    print(report.render())
    return 0 if report.ok else 1


def _submit_system(spec: str):
    """A ``repro submit`` system argument as the request's system field.

    A readable local file is inlined (self-contained request); anything
    else passes through as a suite name or server-local path.
    """
    path = Path(spec)
    if path.is_file():
        return json.loads(path.read_text())
    return spec


def _submit_client(args):
    from repro.serve.client import RetryPolicy, ServeClient

    retries = getattr(args, "retries", 0)
    retry = RetryPolicy(retries=retries) if retries else None
    return ServeClient(
        args.server,
        timeout=args.timeout,
        retry=retry,
        criticality=getattr(args, "criticality", None),
        client_id=getattr(args, "client_id", None),
    )


def _cmd_submit_analyze(args) -> int:
    client = _submit_client(args)
    params = {
        "granularity": args.granularity,
        "policy": args.policy,
        "bus_contention": args.bus_contention,
        "method": args.method,
    }
    if args.backend != "window":
        params["backend"] = args.backend
    if args.dropped:
        params["dropped"] = args.dropped
    if args.deadline is not None:
        params["deadline_seconds"] = args.deadline
    result = client.analyze(_submit_system(args.system), **params)
    print(f"{'application':>16} | {'wcrt':>10} | {'deadline':>9} | status")
    print("-" * 52)
    for name, verdict in sorted(result["verdicts"].items()):
        status = "dropped" if verdict["dropped"] else (
            "ok" if verdict["meets_deadline"] else "MISS"
        )
        print(
            f"{name:>16} | {verdict['wcrt']:10.2f} | "
            f"{verdict['deadline']:9.1f} | {status}"
        )
    print(f"\ntransitions analyzed: {result['transitions_analyzed']}")
    return 0 if result["schedulable"] else 1


def _cmd_submit_simulate(args) -> int:
    client = _submit_client(args)
    params = {
        "profiles": args.profiles,
        "seed": args.seed,
        "policy": args.policy,
        "max_faults": args.max_faults,
        "worst_bias": args.worst_bias,
    }
    if args.dropped:
        params["dropped"] = args.dropped
    if args.deadline is not None:
        params["deadline_seconds"] = args.deadline
    result = client.simulate(_submit_system(args.system), **params)
    print(f"{'application':>16} | {'max resp':>9} | {'p99':>9} | {'mean':>9}")
    print("-" * 54)
    for graph in sorted(result["worst_response"]):
        print(
            f"{graph:>16} | {result['worst_response'][graph]:9.2f} | "
            f"{result['p99_response'][graph]:9.2f} | "
            f"{result['mean_response'][graph]:9.2f}"
        )
    print(
        f"\nprofiles: {result['profiles']}, "
        f"critical runs: {result['critical_runs']}, "
        f"runs with drops: {result['runs_with_drops']}"
    )
    return 0


def _cmd_submit_explore(args) -> int:
    client = _submit_client(args)
    stub = client.explore(
        _submit_system(args.system),
        generations=args.generations,
        population=args.population,
        seed=args.seed,
        workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        islands=args.islands,
        migration_every=args.migration_every,
        migrants=args.migrants,
        topology=args.topology,
        backend=args.backend,
        deadline_seconds=args.deadline,
    )
    print(f"job accepted: {stub['id']}")
    if not args.wait:
        print(f"poll with: python -m repro submit job {stub['id']}")
        return 0
    record = client.wait_job(stub["id"], timeout=args.timeout)
    print(f"job {record['id']}: {record['status']}")
    if record.get("error"):
        print(f"error: {record['error']}", file=sys.stderr)
    result = record.get("result")
    if result:
        print(f"generations run: {result['generations_run']}")
        print(f"Pareto front ({len(result['pareto'])} points):")
        for point in result["pareto"]:
            label = (
                "{" + ", ".join(point["dropped"]) + "}"
                if point["dropped"]
                else "{}"
            )
            print(
                f"{point['power']:10.3f} | {point['service']:8.1f} | {label}"
            )
    return 0 if record["status"] == "done" else 1


def _cmd_submit_job(args) -> int:
    client = _submit_client(args)
    record = client.job(args.job_id)
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def _cmd_submit_cancel(args) -> int:
    client = _submit_client(args)
    record = client.cancel(args.job_id)
    print(f"job {record['id']}: {record['status']} "
          f"(cancel_requested={record['cancel_requested']})")
    return 0


def _cmd_trace_summarize(args) -> int:
    from repro.obs.export import format_summary, read_spans, summarize

    spans = read_spans(args.trace_file)
    if not spans:
        print(f"no spans in {args.trace_file}", file=sys.stderr)
        return 1
    print(format_summary(summarize(spans), top=args.top))
    return 0


def _cmd_trace_chrome(args) -> int:
    from repro.obs.export import read_spans, write_chrome_trace

    spans = read_spans(args.trace_file)
    if not spans:
        print(f"no spans in {args.trace_file}", file=sys.stderr)
        return 1
    write_chrome_trace(spans, args.out)
    print(
        f"wrote {len(spans)} span(s) to {args.out} "
        "(load in Perfetto or chrome://tracing)"
    )
    return 0


def observability_options() -> argparse.ArgumentParser:
    """Parent parser carrying the shared observability flags."""
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("observability")
    group.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="repro.* logger verbosity (stderr)",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        help="print per-generation progress lines to stderr",
    )
    group.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the metrics registry (plus per-generation records) "
        "as JSON when the command finishes",
    )
    group.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write every telemetry event and span as a JSON line to "
        "PATH (inspect with `repro trace summarize`)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Fault-tolerant mixed-criticality MPSoC mapping toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    obs = [observability_options()]

    analyze = sub.add_parser(
        "analyze", help="WCRT analysis of a mapped system", parents=obs
    )
    analyze.add_argument("system", help="system JSON (applications+architecture+mapping)")
    analyze.add_argument("--plan", help="hardening plan JSON")
    analyze.add_argument("--dropped", help="comma-separated dropped applications")
    analyze.add_argument(
        "--method", choices=("proposed", "naive", "adhoc"), default="proposed"
    )
    analyze.add_argument("--granularity", choices=("job", "task"), default="job")
    analyze.add_argument(
        "--policy", choices=("fp", "edf"), default="fp",
        help="per-processor scheduling policy",
    )
    analyze.add_argument(
        "--bus-contention", action="store_true",
        help="model the shared bus as a priority-arbitrated resource",
    )
    analyze.add_argument(
        "--backend", choices=("window", "fast", "holistic"), default="window",
        help="schedulability back-end for the proposed analysis",
    )
    analyze.add_argument(
        "--no-fast-path", action="store_true",
        help="disable sched() memoization and warm-started fixed points "
        "(results are identical either way)",
    )
    _add_comm_flags(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    simulate = sub.add_parser(
        "simulate", help="Monte-Carlo simulation campaign", parents=obs
    )
    simulate.add_argument("system")
    simulate.add_argument("--plan", help="hardening plan JSON")
    simulate.add_argument("--dropped", help="comma-separated dropped applications")
    simulate.add_argument("--profiles", type=int, default=500)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--max-faults", type=int, default=3)
    simulate.add_argument("--worst-bias", type=float, default=0.5)
    simulate.add_argument(
        "--policy", choices=("fp", "edf"), default="fp",
        help="per-processor scheduling policy",
    )
    _add_comm_flags(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    explore = sub.add_parser(
        "explore", help="design-space exploration", parents=obs
    )
    explore.add_argument("system", help="system JSON path or suite name")
    explore.add_argument("--generations", type=int, default=25)
    explore.add_argument("--population", type=int, default=32)
    explore.add_argument("--seed", type=int, default=0)
    explore.add_argument("--out", help="write Pareto designs to this JSON file")
    explore.add_argument(
        "--backend", choices=("fast", "window", "holistic"), default="fast",
        help="schedulability back-end driving the evaluator",
    )
    explore.add_argument(
        "--workers", type=int, default=1,
        help="thread-pool size for candidate evaluation (1 = serial)",
    )
    explore.add_argument(
        "--checkpoint-dir",
        help="directory for crash-safe run snapshots (enables checkpointing)",
    )
    explore.add_argument(
        "--checkpoint-every", type=int, default=10,
        help="snapshot every N generations (with --checkpoint-dir)",
    )
    explore.add_argument(
        "--resume", action="store_true",
        help="restart from the latest valid snapshot in --checkpoint-dir",
    )
    explore.add_argument(
        "--quarantine",
        help="JSONL file collecting poison design points "
        "(default: <checkpoint-dir>/quarantine.jsonl when checkpointing)",
    )
    explore.add_argument(
        "--eval-retries", type=int, default=1,
        help="extra evaluation attempts after a raising backend",
    )
    explore.add_argument(
        "--eval-budget", type=float, default=None,
        help="per-evaluation wall-clock soft budget in seconds",
    )
    explore.add_argument(
        "--islands", type=int, default=1,
        help="island-model shards evolving in parallel (1 = plain GA)",
    )
    explore.add_argument(
        "--migration-every", type=int, default=10,
        help="generations between archive-migrant exchanges",
    )
    explore.add_argument(
        "--migrants", type=int, default=2,
        help="archive members each island donates per exchange",
    )
    explore.add_argument(
        "--topology", choices=("ring", "all", "none"), default="ring",
        help="island migration topology",
    )
    explore.add_argument(
        "--execution", choices=("process", "inline"), default=None,
        help="island execution mode (default: worker processes)",
    )
    explore.add_argument(
        "--fleet",
        help="serve base URL; fan island epochs out as durable jobs",
    )
    explore.set_defaults(handler=_cmd_explore)

    verify = sub.add_parser(
        "verify",
        help="adversarial soundness campaign against a system",
        parents=obs,
    )
    verify.add_argument(
        "system", nargs="?",
        help="system JSON or suite name (optional with --replay)",
    )
    verify.add_argument("--budget", type=int, default=200,
                        help="fault-injection scenarios to run")
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--granularity", choices=("job", "task"), default="job")
    verify.add_argument(
        "--policy", choices=("fp", "edf"), default="fp",
        help="per-processor scheduling policy",
    )
    verify.add_argument("--max-faults", type=int, default=3,
                        help="faults per random profile")
    verify.add_argument(
        "--corpus", metavar="DIR",
        help="write shrunken reproducer JSON files into this directory",
    )
    verify.add_argument(
        "--replay", metavar="DIR",
        help="replay an existing corpus instead of running a campaign "
        "(exit 1 while any reproducer still fires)",
    )
    verify.add_argument("--out", help="write the report JSON to this file")
    verify.add_argument("--no-shrink", action="store_true",
                        help="skip counterexample minimization")
    _add_comm_flags(verify)
    verify.add_argument("--no-metamorphic", action="store_true",
                        help="skip the metamorphic mutation properties")
    verify.set_defaults(handler=_cmd_verify)

    margins = sub.add_parser(
        "margins",
        help="deadline and WCET-scaling sensitivity of a design",
        parents=obs,
    )
    margins.add_argument("system")
    margins.add_argument("--plan", help="hardening plan JSON")
    margins.add_argument("--dropped", help="comma-separated dropped applications")
    margins.add_argument("--tolerance", type=float, default=0.05)
    margins.set_defaults(handler=_cmd_margins)

    export = sub.add_parser(
        "export", help="write a built-in benchmark to JSON", parents=obs
    )
    export.add_argument("benchmark", choices=benchmark_names())
    export.add_argument("out")
    export.add_argument(
        "--with-reference-mapping",
        action="store_true",
        help="cruise only: apply the reference plan and sample mapping 1",
    )
    export.set_defaults(handler=_cmd_export)

    generate = sub.add_parser(
        "generate", help="write a random system to JSON", parents=obs
    )
    generate.add_argument("out")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--critical", type=int, default=2)
    generate.add_argument("--droppable", type=int, default=2)
    generate.add_argument("--processors", type=int, default=4)
    generate.set_defaults(handler=_cmd_generate)

    serve = sub.add_parser(
        "serve",
        help="run the JSON-over-HTTP analysis/exploration service",
        parents=obs,
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8352, help="0 picks a free port"
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="analysis/simulation worker threads",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64,
        help="admission queue bound (full queue answers 429)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8,
        help="max requests coalesced into one worker dispatch",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="micro-batching window in milliseconds",
    )
    serve.add_argument(
        "--state-dir",
        help="durable job directory (enables /v1/explore and "
        "resume-on-restart)",
    )
    serve.add_argument(
        "--job-workers", type=int, default=1,
        help="threads running exploration jobs",
    )
    serve.add_argument(
        "--cache-size", type=int, default=None,
        help="capacity of the process-wide schedule cache",
    )
    serve.add_argument(
        "--allow-local-paths", action="store_true",
        help="let a request's system field name a server-local file "
        "(off by default: any client could read arbitrary paths)",
    )
    serve.add_argument(
        "--processes", type=int, default=1,
        help="worker processes; >1 runs a pre-fork SO_REUSEPORT "
        "supervisor with crash-restart and graceful fleet drain",
    )
    serve.add_argument(
        "--cache-dir",
        help="disk tier of the schedule cache, shared across worker "
        "processes and restarts (default: <state-dir>/cache)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds granted to finish/park in-flight work on "
        "SIGTERM/SIGINT before hard shutdown",
    )
    serve.add_argument(
        "--reuse-port", action="store_true",
        help="bind with SO_REUSEPORT so multiple server processes can "
        "share the port",
    )
    serve.add_argument(
        "--status-file",
        help="supervisor status JSON path "
        "(default: <state-dir>/supervisor.json)",
    )
    serve.add_argument(
        "--quota-rps", type=float, default=None,
        help="per-client token-bucket rate in requests/second "
        "(keyed on X-Repro-Client; default: no quotas)",
    )
    serve.add_argument(
        "--quota-burst", type=float, default=None,
        help="token-bucket burst capacity (default: 2x the rate)",
    )
    serve.add_argument(
        "--brownout", action="store_true",
        help="enable the brownout controller: shed best-effort, then "
        "degrade standard analyze when the queue delay grows",
    )
    serve.add_argument(
        "--brownout-enter", type=float, default=0.75,
        help="estimated queue delay (s) that enters brownout stage 1",
    )
    serve.add_argument(
        "--brownout-exit", type=float, default=0.25,
        help="delay (s) the system must stay under to recover a stage",
    )
    serve.add_argument(
        "--brownout-dwell", type=float, default=2.0,
        help="seconds the delay must stay under the exit threshold "
        "before a stage clears (hysteresis)",
    )
    serve.add_argument(
        "--aging-floor", type=float, default=5.0,
        help="seconds after which a queued request outranks younger "
        "higher-priority work (anti-starvation)",
    )
    serve.add_argument(
        "--_worker-id", dest="_worker_id", type=int, default=None,
        help=argparse.SUPPRESS,
    )
    serve.add_argument(
        "--_status-file", dest="_status_file", default=None,
        help=argparse.SUPPRESS,
    )
    serve.set_defaults(handler=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection campaign against a supervised serve fleet",
        parents=obs,
    )
    chaos.add_argument(
        "--mode", choices=("faults", "overload"), default="faults",
        help="faults: worker kills + connection mischief; overload: 4x "
        "sustained load asserting the criticality rely-guarantee",
    )
    chaos.add_argument(
        "--critical-budget", type=float, default=10.0,
        help="overload mode: p99 latency budget (s) critical requests "
        "must keep under sustained overload",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--processes", type=int, default=2, help="fleet worker processes"
    )
    chaos.add_argument(
        "--duration", type=float, default=20.0,
        help="campaign duration in seconds",
    )
    chaos.add_argument(
        "--clients", type=int, default=4, help="concurrent client threads"
    )
    chaos.add_argument(
        "--kill-every", type=float, default=3.0,
        help="mean seconds between SIGKILLs of a random worker",
    )
    chaos.add_argument(
        "--mischief-every", type=float, default=0.5,
        help="mean seconds between connection-level faults (garbage "
        "bytes, half-close, RST, slow sends)",
    )
    chaos.add_argument(
        "--state-dir",
        help="durable state directory (default: a fresh temp dir)",
    )
    chaos.add_argument("--report", help="write the JSON report here")
    chaos.set_defaults(handler=_cmd_chaos)

    submit = sub.add_parser(
        "submit", help="send a request to a running repro serve instance"
    )
    submit_sub = submit.add_subparsers(dest="action", required=True)

    def submit_common(sp):
        sp.add_argument(
            "--server", default="http://127.0.0.1:8352",
            help="base URL of the repro serve instance",
        )
        sp.add_argument(
            "--timeout", type=float, default=600.0,
            help="client-side request/poll timeout in seconds",
        )
        sp.add_argument(
            "--retries", type=int, default=4,
            help="retry budget for 429/503/transport faults (0 disables)",
        )
        sp.add_argument(
            "--class", dest="criticality", default=None,
            choices=("critical", "standard", "best-effort"),
            help="criticality class sent as X-Repro-Class "
            "(server default: standard)",
        )
        sp.add_argument(
            "--client", dest="client_id", default=None,
            help="client id sent as X-Repro-Client (quota-bucket key)",
        )

    s_analyze = submit_sub.add_parser(
        "analyze", help="served WCRT analysis", parents=obs
    )
    s_analyze.add_argument("system", help="system JSON path or suite name")
    s_analyze.add_argument("--dropped", help="comma-separated dropped applications")
    s_analyze.add_argument(
        "--method", choices=("proposed", "naive", "adhoc"), default="proposed"
    )
    s_analyze.add_argument("--granularity", choices=("job", "task"), default="job")
    s_analyze.add_argument("--policy", choices=("fp", "edf"), default="fp")
    s_analyze.add_argument("--bus-contention", action="store_true")
    s_analyze.add_argument(
        "--backend", choices=("window", "fast", "holistic"), default="window"
    )
    s_analyze.add_argument(
        "--deadline", type=float, default=None,
        help="server-side deadline in seconds (504 when exceeded queued)",
    )
    submit_common(s_analyze)
    s_analyze.set_defaults(handler=_cmd_submit_analyze)

    s_simulate = submit_sub.add_parser(
        "simulate", help="served Monte-Carlo campaign", parents=obs
    )
    s_simulate.add_argument("system", help="system JSON path or suite name")
    s_simulate.add_argument("--dropped", help="comma-separated dropped applications")
    s_simulate.add_argument("--profiles", type=int, default=500)
    s_simulate.add_argument("--seed", type=int, default=0)
    s_simulate.add_argument("--max-faults", type=int, default=3)
    s_simulate.add_argument("--worst-bias", type=float, default=0.5)
    s_simulate.add_argument("--policy", choices=("fp", "edf"), default="fp")
    s_simulate.add_argument(
        "--deadline", type=float, default=None,
        help="overall request budget in seconds (propagated as "
        "X-Repro-Deadline; 504 when exceeded)",
    )
    submit_common(s_simulate)
    s_simulate.set_defaults(handler=_cmd_submit_simulate)

    s_explore = submit_sub.add_parser(
        "explore", help="submit an async exploration job", parents=obs
    )
    s_explore.add_argument("system", help="system JSON path or suite name")
    s_explore.add_argument("--generations", type=int, default=25)
    s_explore.add_argument("--population", type=int, default=32)
    s_explore.add_argument("--seed", type=int, default=0)
    s_explore.add_argument("--workers", type=int, default=1)
    s_explore.add_argument("--checkpoint-every", type=int, default=2)
    s_explore.add_argument("--islands", type=int, default=1)
    s_explore.add_argument("--migration-every", type=int, default=10)
    s_explore.add_argument("--migrants", type=int, default=2)
    s_explore.add_argument(
        "--topology", choices=("ring", "all", "none"), default="ring"
    )
    s_explore.add_argument(
        "--backend", choices=("fast", "window", "holistic"), default="fast"
    )
    s_explore.add_argument(
        "--deadline", type=float, default=None,
        help="overall budget in seconds (becomes the job's cooperative "
        "deadline)",
    )
    s_explore.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print its front",
    )
    submit_common(s_explore)
    s_explore.set_defaults(handler=_cmd_submit_explore)

    s_job = submit_sub.add_parser(
        "job", help="print a job record", parents=obs
    )
    s_job.add_argument("job_id")
    submit_common(s_job)
    s_job.set_defaults(handler=_cmd_submit_job)

    s_cancel = submit_sub.add_parser(
        "cancel", help="request job cancellation", parents=obs
    )
    s_cancel.add_argument("job_id")
    submit_common(s_cancel)
    s_cancel.set_defaults(handler=_cmd_submit_cancel)

    trace = sub.add_parser(
        "trace", help="inspect a span trace written by --trace-out"
    )
    trace_sub = trace.add_subparsers(dest="action", required=True)
    t_summarize = trace_sub.add_parser(
        "summarize",
        help="per-phase self-time table and critical-path breakdown",
        parents=obs,
    )
    t_summarize.add_argument("trace_file", help="JSONL trace file")
    t_summarize.add_argument(
        "--top", type=int, default=20, help="phases to list"
    )
    t_summarize.set_defaults(handler=_cmd_trace_summarize)
    t_chrome = trace_sub.add_parser(
        "chrome",
        help="convert to Chrome trace-event JSON (Perfetto-loadable)",
        parents=obs,
    )
    t_chrome.add_argument("trace_file", help="JSONL trace file")
    t_chrome.add_argument("out", help="Chrome trace JSON output path")
    t_chrome.set_defaults(handler=_cmd_trace_chrome)

    return parser


def _write_metrics_report(args, collector: InMemoryCollector) -> None:
    """Assemble the ``--metrics-out`` JSON report."""
    metrics().write_json(
        args.metrics_out,
        extra={
            "command": args.command,
            "generations": [
                event_to_dict(e)
                for e in collector.of_type(GenerationCompleted)
            ],
            "early_stop": [
                event_to_dict(e) for e in collector.of_type(EarlyStopped)
            ],
        },
    )
    _LOG.info("wrote metrics report to %s", args.metrics_out)


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    bus = obs_events.bus()

    subscribers = []
    collector = InMemoryCollector()
    trace_writer = None
    if args.metrics_out:
        # Per-command report: snapshot deltas, not process history.
        metrics().reset()
        bus.subscribe(GenerationCompleted, collector)
        bus.subscribe(EarlyStopped, collector)
        subscribers.append(collector)
    if args.progress:
        progress = ProgressLogger(stream=sys.stderr)
        bus.subscribe(GenerationCompleted, progress)
        bus.subscribe(EarlyStopped, progress)
        subscribers.append(progress)
    if getattr(args, "trace_out", None):
        try:
            trace_writer = JsonlTraceWriter(args.trace_out)
        except OSError as error:
            print(f"error: cannot open trace file: {error}", file=sys.stderr)
            return 2
        bus.subscribe_all(trace_writer)
        subscribers.append(trace_writer)
        # Events and spans interleave in one JSONL stream; the span
        # records carry a "span" key, event records an "event" key.
        tracer().enable(trace_writer.write_record)

    try:
        code = args.handler(args)
        if args.metrics_out:
            try:
                _write_metrics_report(args, collector)
            except OSError as error:
                print(
                    f"error: cannot write metrics report: {error}",
                    file=sys.stderr,
                )
                return 2
        return code
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        for subscriber in subscribers:
            bus.unsubscribe(subscriber)
        if trace_writer is not None:
            tracer().reset()
            trace_writer.close()
