"""Task-to-processor mapping ``map : V -> P`` (paper §2.3)."""

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping as TMapping, Optional, Tuple

from repro.errors import MappingError
from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture


class Mapping:
    """An immutable assignment of tasks to processors.

    A mapping is a plain ``task name -> processor name`` association.  Use
    :meth:`validate` to check it against an application set, an architecture
    and (optionally) the allocated-processor set of a design point.
    """

    def __init__(self, assignment: TMapping[str, str]):
        self._assignment: Dict[str, str] = dict(assignment)
        for task, processor in self._assignment.items():
            if not task or not processor:
                raise MappingError(
                    f"mapping entries must be non-empty names, got "
                    f"{task!r} -> {processor!r}"
                )

    # ------------------------------------------------------------------
    # Dictionary-like access
    # ------------------------------------------------------------------

    def __getitem__(self, task_name: str) -> str:
        try:
            return self._assignment[task_name]
        except KeyError:
            raise MappingError(f"no mapping for task {task_name!r}") from None

    def get(self, task_name: str, default: Optional[str] = None) -> Optional[str]:
        """Processor of a task, or ``default`` when unmapped."""
        return self._assignment.get(task_name, default)

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._assignment

    def __len__(self) -> int:
        return len(self._assignment)

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignment)

    def items(self) -> Iterable[Tuple[str, str]]:
        """``(task, processor)`` pairs."""
        return self._assignment.items()

    def as_dict(self) -> Dict[str, str]:
        """A defensive copy of the underlying dictionary."""
        return dict(self._assignment)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def tasks_on(self, processor_name: str) -> List[str]:
        """Names of all tasks mapped on a processor, sorted."""
        return sorted(
            task for task, pe in self._assignment.items() if pe == processor_name
        )

    @property
    def used_processors(self) -> FrozenSet[str]:
        """Processors that host at least one task."""
        return frozenset(self._assignment.values())

    def co_located(self, task_a: str, task_b: str) -> bool:
        """Whether two tasks share a processor."""
        return self[task_a] == self[task_b]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def with_assignment(self, task_name: str, processor_name: str) -> "Mapping":
        """Return a copy with one task reassigned (or newly assigned)."""
        updated = dict(self._assignment)
        updated[task_name] = processor_name
        return Mapping(updated)

    def restricted_to(self, task_names: Iterable[str]) -> "Mapping":
        """Return a copy containing only the named tasks."""
        names = set(task_names)
        return Mapping(
            {task: pe for task, pe in self._assignment.items() if task in names}
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(
        self,
        applications: ApplicationSet,
        architecture: Architecture,
        allocated: Optional[Iterable[str]] = None,
    ) -> None:
        """Raise :class:`~repro.errors.MappingError` unless the mapping is
        total over the application's tasks, names only known processors and
        uses only allocated processors.

        Parameters
        ----------
        allocated:
            Processor names switched on by the design point (the allocation
            section of the paper's chromosome).  ``None`` means every
            processor of the architecture is available.
        """
        allocated_set = (
            set(architecture.processor_names) if allocated is None else set(allocated)
        )
        unknown_pes = allocated_set - set(architecture.processor_names)
        if unknown_pes:
            raise MappingError(f"unknown allocated processors: {sorted(unknown_pes)}")

        missing = [
            task.name for task in applications.all_tasks
            if task.name not in self._assignment
        ]
        if missing:
            raise MappingError(f"unmapped tasks: {missing}")

        for task, processor in self._assignment.items():
            if processor not in architecture:
                raise MappingError(
                    f"task {task!r} mapped on unknown processor {processor!r}"
                )
            if processor not in allocated_set:
                raise MappingError(
                    f"task {task!r} mapped on unallocated processor {processor!r}"
                )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(frozenset(self._assignment.items()))

    def __repr__(self) -> str:
        return f"Mapping({len(self._assignment)} tasks on {len(self.used_processors)} processors)"
