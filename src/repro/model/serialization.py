"""JSON (de)serialization of application, architecture and mapping models.

The dictionary formats are stable and versioned so benchmark systems can be
shipped as plain ``.json`` files and reloaded bit-exactly.
"""

import json
from pathlib import Path
from typing import Any, Dict, NamedTuple, Optional, Union

from repro.errors import ModelError
from repro.model.application import ApplicationSet
from repro.model.architecture import (
    Architecture,
    Interconnect,
    InterconnectKind,
    Processor,
)
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task, TaskRole
from repro.model.taskgraph import TaskGraph

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Tasks and channels
# ----------------------------------------------------------------------

def task_to_dict(task: Task) -> Dict[str, Any]:
    """Serialize a task."""
    data: Dict[str, Any] = {
        "name": task.name,
        "bcet": task.bcet,
        "wcet": task.wcet,
        "voting_overhead": task.voting_overhead,
        "detection_overhead": task.detection_overhead,
    }
    if task.role is not TaskRole.PRIMARY:
        data["role"] = task.role.value
        data["origin"] = task.origin
        data["replica_index"] = task.replica_index
    return data


def task_from_dict(data: Dict[str, Any]) -> Task:
    """Deserialize a task."""
    return Task(
        name=data["name"],
        bcet=data["bcet"],
        wcet=data["wcet"],
        voting_overhead=data.get("voting_overhead", 0.0),
        detection_overhead=data.get("detection_overhead", 0.0),
        role=TaskRole(data.get("role", "primary")),
        origin=data.get("origin"),
        replica_index=data.get("replica_index", 0),
    )


def channel_to_dict(channel: Channel) -> Dict[str, Any]:
    """Serialize a channel."""
    data: Dict[str, Any] = {
        "src": channel.src,
        "dst": channel.dst,
        "size": channel.size,
    }
    if channel.on_demand:
        data["on_demand"] = True
    return data


def channel_from_dict(data: Dict[str, Any]) -> Channel:
    """Deserialize a channel."""
    return Channel(
        src=data["src"],
        dst=data["dst"],
        size=data.get("size", 0.0),
        on_demand=data.get("on_demand", False),
    )


# ----------------------------------------------------------------------
# Task graphs and application sets
# ----------------------------------------------------------------------

def task_graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Serialize a task graph."""
    return {
        "name": graph.name,
        "period": graph.period,
        "deadline": graph.deadline,
        "reliability_target": graph.reliability_target,
        "service_value": None if not graph.droppable else graph.service_value,
        "tasks": [task_to_dict(t) for t in graph.tasks],
        "channels": [channel_to_dict(c) for c in graph.channels],
    }


def task_graph_from_dict(data: Dict[str, Any]) -> TaskGraph:
    """Deserialize a task graph."""
    return TaskGraph(
        name=data["name"],
        tasks=[task_from_dict(t) for t in data["tasks"]],
        channels=[channel_from_dict(c) for c in data.get("channels", [])],
        period=data["period"],
        deadline=data.get("deadline"),
        reliability_target=data.get("reliability_target"),
        service_value=data.get("service_value"),
    )


def application_set_to_dict(applications: ApplicationSet) -> Dict[str, Any]:
    """Serialize an application set."""
    return {
        "format_version": FORMAT_VERSION,
        "graphs": [task_graph_to_dict(g) for g in applications.graphs],
    }


def application_set_from_dict(data: Dict[str, Any]) -> ApplicationSet:
    """Deserialize an application set."""
    _check_version(data)
    return ApplicationSet(task_graph_from_dict(g) for g in data["graphs"])


# ----------------------------------------------------------------------
# Architecture
# ----------------------------------------------------------------------

#: Contention/ARQ fields of :class:`Interconnect`, serialized only when
#: they differ from the default so legacy system files stay byte-stable.
_INTERCONNECT_OPTIONALS = (
    ("comm_backend", "flat"),
    ("arq_retries", 0),
    ("arq_timeout", 0.0),
    ("mesh_columns", 0),
    ("hop_latency", 0.0),
    ("slot_length", 0.0),
    ("slot_count", 0),
)


def architecture_to_dict(architecture: Architecture) -> Dict[str, Any]:
    """Serialize an architecture."""
    fabric = architecture.interconnect
    fabric_data: Dict[str, Any] = {
        "bandwidth": fabric.bandwidth,
        "base_latency": fabric.base_latency,
        "kind": fabric.kind.value,
    }
    for field_name, default in _INTERCONNECT_OPTIONALS:
        value = getattr(fabric, field_name)
        if value != default:
            fabric_data[field_name] = value
    return {
        "format_version": FORMAT_VERSION,
        "processors": [
            {
                "name": p.name,
                "ptype": p.ptype,
                "static_power": p.static_power,
                "dynamic_power": p.dynamic_power,
                "fault_rate": p.fault_rate,
                "speed": p.speed,
            }
            for p in architecture.processors
        ],
        "interconnect": fabric_data,
    }


def architecture_from_dict(data: Dict[str, Any]) -> Architecture:
    """Deserialize an architecture."""
    _check_version(data)
    processors = [
        Processor(
            name=p["name"],
            ptype=p.get("ptype", "generic"),
            static_power=p.get("static_power", 0.0),
            dynamic_power=p.get("dynamic_power", 0.0),
            fault_rate=p.get("fault_rate", 0.0),
            speed=p.get("speed", 1.0),
        )
        for p in data["processors"]
    ]
    fabric_data = data["interconnect"]
    interconnect = Interconnect(
        bandwidth=fabric_data["bandwidth"],
        base_latency=fabric_data.get("base_latency", 0.0),
        kind=InterconnectKind(fabric_data.get("kind", "shared_bus")),
        **{
            field_name: fabric_data.get(field_name, default)
            for field_name, default in _INTERCONNECT_OPTIONALS
        },
    )
    return Architecture(processors, interconnect)


# ----------------------------------------------------------------------
# Mapping
# ----------------------------------------------------------------------

def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Serialize a mapping."""
    return {
        "format_version": FORMAT_VERSION,
        "assignment": mapping.as_dict(),
    }


def mapping_from_dict(data: Dict[str, Any]) -> Mapping:
    """Deserialize a mapping."""
    _check_version(data)
    return Mapping(data["assignment"])


# ----------------------------------------------------------------------
# Whole-system convenience I/O
# ----------------------------------------------------------------------

class SystemBundle(NamedTuple):
    """Everything a system file can carry.

    ``applications`` are the *source* (unhardened) task graphs; when a
    ``plan`` is present, analyses apply it first and the ``mapping`` is
    expected to cover the transformed task set ``T'``.
    """

    applications: ApplicationSet
    architecture: Architecture
    mapping: Optional[Mapping]
    plan: Optional["HardeningPlan"]


def save_system(
    path: Union[str, Path],
    applications: ApplicationSet,
    architecture: Architecture,
    mapping: Optional[Mapping] = None,
    plan: Optional["HardeningPlan"] = None,
) -> None:
    """Write a system bundle to JSON.

    ``applications`` should be the source (unhardened) task graphs; pass
    the hardening decisions via ``plan`` so they can be re-applied on
    load (re-execution is invisible in the graph topology).
    """
    payload: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "applications": application_set_to_dict(applications),
        "architecture": architecture_to_dict(architecture),
    }
    if mapping is not None:
        payload["mapping"] = mapping_to_dict(mapping)
    if plan is not None:
        payload["hardening_plan"] = plan.to_dict()
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_system(path: Union[str, Path]) -> SystemBundle:
    """Read a system bundle previously written by :func:`save_system`."""
    from repro.hardening.spec import HardeningPlan

    payload = json.loads(Path(path).read_text())
    _check_version(payload)
    applications = application_set_from_dict(payload["applications"])
    architecture = architecture_from_dict(payload["architecture"])
    mapping = None
    if "mapping" in payload:
        mapping = mapping_from_dict(payload["mapping"])
    plan = None
    if "hardening_plan" in payload:
        plan = HardeningPlan.from_dict(payload["hardening_plan"])
    return SystemBundle(applications, architecture, mapping, plan)


def _check_version(data: Dict[str, Any]) -> None:
    version = data.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ModelError(
            f"unsupported serialization format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
