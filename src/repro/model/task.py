"""Tasks and channels (paper §2.1).

Each task ``v`` is characterised by ``(bcet_v, wcet_v, ve_v, dt_v)``: its
best/worst-case execution time, the voting overhead ``ve`` incurred by a
voter merging replicas of ``v``, and the detection overhead ``dt`` covering
fault detection, context save/restore and roll-back for re-execution.

Tasks are immutable value objects; hardening transformations produce *new*
tasks (replicas and voters) whose :attr:`Task.role` and :attr:`Task.origin`
record their provenance.
"""

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ModelError


class TaskRole(enum.Enum):
    """Provenance of a task in a (possibly hardened) task graph."""

    #: An application task as specified by the designer.
    PRIMARY = "primary"
    #: A replica created by active or passive replication.
    REPLICA = "replica"
    #: A majority voter merging replica outputs.
    VOTER = "voter"


@dataclass(frozen=True)
class Task:
    """A single task of a task graph.

    Parameters
    ----------
    name:
        Identifier, unique within the enclosing :class:`~repro.model.taskgraph.TaskGraph`
        (and, by convention of the benchmark builders, globally unique).
    bcet, wcet:
        Best-/worst-case execution time on a reference processor
        (milliseconds).  ``0 <= bcet <= wcet`` is enforced.
    voting_overhead:
        Execution time of a voter over this task's replicas (``ve_v``).
    detection_overhead:
        Fault detection + roll-back overhead added per (re-)execution
        (``dt_v``).
    role, origin, replica_index:
        Provenance metadata filled in by :mod:`repro.hardening`.  For
        :attr:`TaskRole.PRIMARY` tasks ``origin`` is ``None``; replicas and
        voters name the primary task they derive from.
    """

    name: str
    bcet: float
    wcet: float
    voting_overhead: float = 0.0
    detection_overhead: float = 0.0
    role: TaskRole = TaskRole.PRIMARY
    origin: Optional[str] = None
    replica_index: int = 0

    def __post_init__(self):
        if not self.name:
            raise ModelError("task name must be a non-empty string")
        if self.bcet < 0:
            raise ModelError(f"task {self.name!r}: bcet must be >= 0, got {self.bcet}")
        if self.wcet < self.bcet:
            raise ModelError(
                f"task {self.name!r}: wcet ({self.wcet}) must be >= bcet ({self.bcet})"
            )
        if self.voting_overhead < 0:
            raise ModelError(f"task {self.name!r}: voting overhead must be >= 0")
        if self.detection_overhead < 0:
            raise ModelError(f"task {self.name!r}: detection overhead must be >= 0")
        if self.role is TaskRole.PRIMARY and self.origin is not None:
            raise ModelError(f"task {self.name!r}: primary tasks must not set origin")
        if self.role is not TaskRole.PRIMARY and not self.origin:
            raise ModelError(f"task {self.name!r}: {self.role.value} tasks require origin")

    @property
    def primary_name(self) -> str:
        """Name of the primary task this task derives from (itself if primary)."""
        return self.origin if self.origin is not None else self.name

    def with_times(self, bcet: float, wcet: float) -> "Task":
        """Return a copy with new execution-time bounds."""
        return replace(self, bcet=bcet, wcet=wcet)

    def renamed(self, name: str) -> "Task":
        """Return a copy under a different name."""
        return replace(self, name=name)


@dataclass(frozen=True)
class Channel:
    """A directed data dependency between two tasks (paper §2.1).

    Each transmission over the channel transfers ``size`` bytes.  Channels
    between tasks mapped on the same processor cost nothing; between
    processors the interconnect model of
    :class:`~repro.model.architecture.Interconnect` applies.
    """

    src: str
    dst: str
    size: float = 0.0
    #: ``True`` for the voter-request edges of passive replication: the
    #: transfer (and the downstream task) only happens after the voter has
    #: detected a fault.
    on_demand: bool = field(default=False)

    def __post_init__(self):
        if not self.src or not self.dst:
            raise ModelError("channel endpoints must be non-empty task names")
        if self.src == self.dst:
            raise ModelError(f"channel {self.src!r} -> {self.dst!r} is a self-loop")
        if self.size < 0:
            raise ModelError(
                f"channel {self.src!r} -> {self.dst!r}: size must be >= 0"
            )

    @property
    def key(self):
        """``(src, dst)`` pair identifying the channel within its graph."""
        return (self.src, self.dst)
