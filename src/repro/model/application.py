"""The application set ``T`` (paper §2.1).

Multiple task graphs with different criticality levels share the MPSoC.
The :class:`ApplicationSet` is the container handed to analyses and to the
design-space exploration; it enforces globally unique task names so that a
mapping can be expressed as a flat ``task name -> processor`` dictionary.
"""

from typing import Dict, FrozenSet, Iterable, Iterator, Tuple

from repro._timing import hyperperiod
from repro.errors import ModelError
from repro.model.task import Task
from repro.model.taskgraph import TaskGraph


class ApplicationSet:
    """An immutable collection of task graphs sharing the platform."""

    def __init__(self, graphs: Iterable[TaskGraph]):
        self._graphs: Dict[str, TaskGraph] = {}
        self._owner: Dict[str, str] = {}
        for graph in graphs:
            if graph.name in self._graphs:
                raise ModelError(f"duplicate task graph {graph.name!r}")
            for task in graph.tasks:
                if task.name in self._owner:
                    raise ModelError(
                        f"task name {task.name!r} appears in graphs "
                        f"{self._owner[task.name]!r} and {graph.name!r}; task "
                        f"names must be globally unique"
                    )
                self._owner[task.name] = graph.name
            self._graphs[graph.name] = graph
        if not self._graphs:
            raise ModelError("application set must contain at least one graph")
        self._order: Tuple[str, ...] = tuple(self._graphs)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def graphs(self) -> Tuple[TaskGraph, ...]:
        """All task graphs, in insertion order."""
        return tuple(self._graphs[name] for name in self._order)

    @property
    def graph_names(self) -> Tuple[str, ...]:
        """Names of all task graphs, in insertion order."""
        return self._order

    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[TaskGraph]:
        return iter(self.graphs)

    def __contains__(self, graph_name: str) -> bool:
        return graph_name in self._graphs

    def graph(self, name: str) -> TaskGraph:
        """Look up a task graph by name."""
        try:
            return self._graphs[name]
        except KeyError:
            raise ModelError(f"no task graph named {name!r}") from None

    def owner_of(self, task_name: str) -> TaskGraph:
        """Return the graph containing the named task."""
        try:
            return self._graphs[self._owner[task_name]]
        except KeyError:
            raise ModelError(f"no task named {task_name!r} in any graph") from None

    def task(self, task_name: str) -> Task:
        """Look up a task by (globally unique) name."""
        return self.owner_of(task_name).task(task_name)

    @property
    def all_tasks(self) -> Tuple[Task, ...]:
        """Every task of every graph, grouped by graph in insertion order."""
        return tuple(task for graph in self.graphs for task in graph.tasks)

    @property
    def all_task_names(self) -> Tuple[str, ...]:
        """Names of every task of every graph."""
        return tuple(task.name for task in self.all_tasks)

    # ------------------------------------------------------------------
    # Criticality partition
    # ------------------------------------------------------------------

    @property
    def droppable_graphs(self) -> Tuple[TaskGraph, ...]:
        """Graphs the scheduler may drop in the critical state."""
        return tuple(g for g in self.graphs if g.droppable)

    @property
    def critical_graphs(self) -> Tuple[TaskGraph, ...]:
        """Non-droppable graphs (carry reliability constraints)."""
        return tuple(g for g in self.graphs if not g.droppable)

    def service_of(self, dropped: Iterable[str] = ()) -> float:
        """Quality of service after dropping the named graphs (paper §2.3).

        The quality of service is the sum of service values of the *alive*
        droppable graphs.  Dropping a non-droppable graph is a model error.
        """
        dropped_set = self.validate_drop_set(dropped)
        return sum(
            g.service_value
            for g in self.droppable_graphs
            if g.name not in dropped_set
        )

    @property
    def max_service(self) -> float:
        """Quality of service when nothing is dropped."""
        return self.service_of(())

    def validate_drop_set(self, dropped: Iterable[str]) -> FrozenSet[str]:
        """Check a candidate drop set ``T_d`` and return it as a frozenset.

        Every element must name a *droppable* graph of this set (the paper
        requires ``sv_t != inf`` for every ``t in T_d``).
        """
        dropped_set = frozenset(dropped)
        for name in dropped_set:
            graph = self.graph(name)
            if not graph.droppable:
                raise ModelError(
                    f"graph {name!r} is non-droppable and cannot be in the "
                    f"dropped set"
                )
        return dropped_set

    # ------------------------------------------------------------------
    # Timing aggregates
    # ------------------------------------------------------------------

    @property
    def hyperperiod(self) -> float:
        """Least common multiple of all graph periods."""
        return hyperperiod(g.period for g in self.graphs)

    def total_utilization(self) -> float:
        """Sum of per-graph WCET utilizations."""
        return sum(g.utilization() for g in self.graphs)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def replacing(self, *graphs: TaskGraph) -> "ApplicationSet":
        """Return a new set where the named graphs replace their originals.

        Used by hardening: ``apps.replacing(hardened_graph)`` swaps in the
        transformed topology while leaving other applications untouched.
        """
        replacements = {g.name: g for g in graphs}
        unknown = set(replacements) - set(self._graphs)
        if unknown:
            raise ModelError(f"cannot replace unknown graphs: {sorted(unknown)}")
        return ApplicationSet(
            replacements.get(name, self._graphs[name]) for name in self._order
        )

    def __repr__(self) -> str:
        return (
            f"ApplicationSet({len(self._graphs)} graphs, "
            f"{len(self._owner)} tasks, hyperperiod={self.hyperperiod})"
        )
