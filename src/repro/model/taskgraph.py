"""Periodic task graphs with mixed criticality (paper §2.1).

A task graph ``t = (V_t, E_t, pr_t, f_t, sv_t)`` is a DAG of tasks released
every ``pr_t`` time units.  *Non-droppable* graphs carry a reliability
constraint ``f_t in (0, 1]`` — the maximum allowed unsafe executions per
unit time — and an infinite service value.  *Droppable* graphs carry a
finite service value ``sv_t`` (their contribution to the quality of service
when they are not dropped) and no reliability constraint; the paper encodes
this as ``f_t = -1``, here it is ``reliability_target=None``.
"""

import enum
import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.errors import ModelError
from repro.model.task import Channel, Task


class Criticality(enum.Enum):
    """Criticality level of a task graph, derived from its droppability."""

    #: Non-droppable: must stay schedulable even under faults.
    HIGH = "high"
    #: Droppable: may be dropped by the scheduler in the critical state.
    LOW = "low"


class TaskGraph:
    """An immutable periodic task graph.

    Parameters
    ----------
    name:
        Unique application identifier.
    tasks:
        The task set ``V_t``.
    channels:
        The channel set ``E_t``; endpoints must name tasks from ``tasks``
        and the induced directed graph must be acyclic.
    period:
        Invocation period ``pr_t`` (an instance is released every
        ``period`` time units).
    deadline:
        Relative deadline of each instance; defaults to ``period``.
    reliability_target:
        ``f_t`` — maximum allowed unsafe executions per unit time.  ``None``
        marks the graph as droppable (the paper writes ``f_t = -1``).
    service_value:
        ``sv_t`` — relative importance of the graph's service.  Must be a
        finite positive number for droppable graphs; forced to ``math.inf``
        for non-droppable graphs (they may never be dropped).
    """

    def __init__(
        self,
        name: str,
        tasks: Iterable[Task],
        channels: Iterable[Channel],
        period: float,
        deadline: Optional[float] = None,
        reliability_target: Optional[float] = None,
        service_value: Optional[float] = None,
    ):
        if not name:
            raise ModelError("task graph name must be a non-empty string")
        if period <= 0:
            raise ModelError(f"graph {name!r}: period must be positive, got {period}")
        self._name = name
        self._period = float(period)
        self._deadline = float(period if deadline is None else deadline)
        if self._deadline <= 0:
            raise ModelError(f"graph {name!r}: deadline must be positive")

        self._tasks: Dict[str, Task] = {}
        for task in tasks:
            if task.name in self._tasks:
                raise ModelError(f"graph {name!r}: duplicate task {task.name!r}")
            self._tasks[task.name] = task
        if not self._tasks:
            raise ModelError(f"graph {name!r}: must contain at least one task")

        self._channels: Dict[Tuple[str, str], Channel] = {}
        graph = nx.DiGraph()
        graph.add_nodes_from(self._tasks)
        for channel in channels:
            for endpoint in (channel.src, channel.dst):
                if endpoint not in self._tasks:
                    raise ModelError(
                        f"graph {name!r}: channel references unknown task {endpoint!r}"
                    )
            if channel.key in self._channels:
                raise ModelError(
                    f"graph {name!r}: duplicate channel {channel.src!r} -> {channel.dst!r}"
                )
            self._channels[channel.key] = channel
            graph.add_edge(channel.src, channel.dst)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise ModelError(f"graph {name!r}: contains a cycle {cycle}")
        self._graph = graph

        if reliability_target is not None:
            if not 0 < reliability_target <= 1:
                raise ModelError(
                    f"graph {name!r}: reliability target must lie in (0, 1], "
                    f"got {reliability_target}"
                )
            if service_value is not None and math.isfinite(service_value):
                raise ModelError(
                    f"graph {name!r}: non-droppable graphs cannot carry a finite "
                    f"service value"
                )
            self._reliability_target: Optional[float] = float(reliability_target)
            self._service_value = math.inf
        else:
            if service_value is None or not math.isfinite(service_value):
                raise ModelError(
                    f"graph {name!r}: droppable graphs (no reliability target) "
                    f"require a finite service value"
                )
            if service_value < 0:
                raise ModelError(f"graph {name!r}: service value must be >= 0")
            self._reliability_target = None
            self._service_value = float(service_value)

        self._topo: Tuple[str, ...] = tuple(nx.lexicographical_topological_sort(graph))

    # ------------------------------------------------------------------
    # Identity and scalar attributes
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Application identifier."""
        return self._name

    @property
    def period(self) -> float:
        """Invocation period ``pr_t``."""
        return self._period

    @property
    def deadline(self) -> float:
        """Relative deadline of every instance."""
        return self._deadline

    @property
    def reliability_target(self) -> Optional[float]:
        """``f_t`` for non-droppable graphs, ``None`` for droppable ones."""
        return self._reliability_target

    @property
    def service_value(self) -> float:
        """``sv_t``; ``math.inf`` for non-droppable graphs."""
        return self._service_value

    @property
    def droppable(self) -> bool:
        """Whether the scheduler may drop this graph in the critical state."""
        return self._reliability_target is None

    @property
    def criticality(self) -> Criticality:
        """Criticality level derived from droppability."""
        return Criticality.LOW if self.droppable else Criticality.HIGH

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------

    @property
    def tasks(self) -> Tuple[Task, ...]:
        """All tasks, in deterministic (topological) order."""
        return tuple(self._tasks[name] for name in self._topo)

    @property
    def task_names(self) -> Tuple[str, ...]:
        """Task names in topological order."""
        return self._topo

    @property
    def channels(self) -> Tuple[Channel, ...]:
        """All channels, in deterministic order."""
        return tuple(self._channels[key] for key in sorted(self._channels))

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        try:
            return self._tasks[name]
        except KeyError:
            raise ModelError(f"graph {self._name!r}: no task named {name!r}") from None

    def channel(self, src: str, dst: str) -> Channel:
        """Look up a channel by its endpoints."""
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise ModelError(
                f"graph {self._name!r}: no channel {src!r} -> {dst!r}"
            ) from None

    def predecessors(self, task_name: str) -> List[str]:
        """Direct predecessors of a task, sorted by name."""
        self.task(task_name)
        return sorted(self._graph.predecessors(task_name))

    def successors(self, task_name: str) -> List[str]:
        """Direct successors of a task, sorted by name."""
        self.task(task_name)
        return sorted(self._graph.successors(task_name))

    def in_channels(self, task_name: str) -> List[Channel]:
        """Channels entering a task."""
        return [self._channels[(p, task_name)] for p in self.predecessors(task_name)]

    def out_channels(self, task_name: str) -> List[Channel]:
        """Channels leaving a task."""
        return [self._channels[(task_name, s)] for s in self.successors(task_name)]

    @property
    def sources(self) -> List[str]:
        """Tasks without predecessors."""
        return sorted(n for n in self._graph if self._graph.in_degree(n) == 0)

    @property
    def sinks(self) -> List[str]:
        """Tasks without successors."""
        return sorted(n for n in self._graph if self._graph.out_degree(n) == 0)

    def topological_order(self) -> Tuple[str, ...]:
        """Deterministic topological ordering of the task names."""
        return self._topo

    def depth(self, task_name: str) -> int:
        """Length of the longest predecessor chain ending at the task."""
        self.task(task_name)
        depths: Dict[str, int] = {}
        for name in self._topo:
            preds = list(self._graph.predecessors(name))
            depths[name] = 1 + max((depths[p] for p in preds), default=-1)
        return depths[task_name]

    def to_networkx(self) -> nx.DiGraph:
        """Copy of the dependency structure as a :class:`networkx.DiGraph`.

        Nodes carry a ``task`` attribute, edges a ``channel`` attribute.
        """
        graph = nx.DiGraph(name=self._name)
        for name, task in self._tasks.items():
            graph.add_node(name, task=task)
        for channel in self._channels.values():
            graph.add_edge(channel.src, channel.dst, channel=channel)
        return graph

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def total_wcet(self) -> float:
        """Sum of worst-case execution times over all tasks."""
        return sum(task.wcet for task in self._tasks.values())

    def critical_path_wcet(self) -> float:
        """Longest path through the graph weighted by task WCETs.

        This is a lower bound on the makespan of one instance on any number
        of processors (ignoring communication).
        """
        finish: Dict[str, float] = {}
        for name in self._topo:
            start = max(
                (finish[p] for p in self._graph.predecessors(name)), default=0.0
            )
            finish[name] = start + self._tasks[name].wcet
        return max(finish.values())

    def utilization(self) -> float:
        """WCET utilization of one instance, ``total_wcet / period``."""
        return self.total_wcet() / self._period

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def derive(
        self,
        tasks: Optional[Iterable[Task]] = None,
        channels: Optional[Iterable[Channel]] = None,
        name: Optional[str] = None,
    ) -> "TaskGraph":
        """Return a new graph sharing this graph's scalar attributes.

        Used by hardening transformations to rebuild the topology while
        keeping period, deadline, criticality and service value.
        """
        return TaskGraph(
            name=self._name if name is None else name,
            tasks=self.tasks if tasks is None else tasks,
            channels=self.channels if channels is None else channels,
            period=self._period,
            deadline=self._deadline,
            reliability_target=self._reliability_target,
            service_value=None if self._reliability_target is not None else self._service_value,
        )

    def __repr__(self) -> str:
        kind = "droppable" if self.droppable else "non-droppable"
        return (
            f"TaskGraph({self._name!r}, |V|={len(self._tasks)}, "
            f"|E|={len(self._channels)}, period={self._period}, {kind})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return (
            self._name == other._name
            and self._period == other._period
            and self._deadline == other._deadline
            and self._reliability_target == other._reliability_target
            and self._service_value == other._service_value
            and self._tasks == other._tasks
            and self._channels == other._channels
        )

    def __hash__(self) -> int:
        return hash((self._name, self._period, len(self._tasks), len(self._channels)))
