"""MPSoC architecture model ``A = (P, nw)`` (paper §2.1).

The platform consists of a set of (possibly heterogeneous) processors
connected by an on-chip interconnect (shared bus, crossbar or NoC).  Each
processor carries a type, leakage (static) power, dynamic power and a
constant transient-fault rate per time unit; the interconnect provides a
maximum bandwidth.  Faults on communication links are assumed transparent
(protected by low-level error-resilient techniques) and are not modelled.
"""

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Tuple

from repro.errors import ModelError


@dataclass(frozen=True)
class Processor:
    """A processing element.

    Parameters
    ----------
    name:
        Unique processor identifier.
    ptype:
        Architecture type label (e.g. ``"RISC"``, ``"DSP"``); tasks run
        ``speed`` times faster than their reference execution time on
        processors of higher speed.
    static_power:
        Leakage power ``stat_p`` drawn whenever the processor is allocated.
    dynamic_power:
        Dynamic power ``dyn_p`` drawn in proportion to utilization.
    fault_rate:
        Constant transient-fault rate ``lambda_p`` per time unit.
    speed:
        Relative speed factor; an execution time ``c`` on the reference
        processor takes ``c / speed`` here.  Defaults to 1 (homogeneous
        timing, heterogeneous power/fault characteristics).
    """

    name: str
    ptype: str = "generic"
    static_power: float = 0.0
    dynamic_power: float = 0.0
    fault_rate: float = 0.0
    speed: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ModelError("processor name must be a non-empty string")
        if self.static_power < 0 or self.dynamic_power < 0:
            raise ModelError(f"processor {self.name!r}: power must be >= 0")
        if self.fault_rate < 0:
            raise ModelError(f"processor {self.name!r}: fault rate must be >= 0")
        if self.speed <= 0:
            raise ModelError(f"processor {self.name!r}: speed must be positive")

    def scale_time(self, reference_time: float) -> float:
        """Execution time on this processor for a reference-time budget."""
        return reference_time / self.speed


class InterconnectKind(enum.Enum):
    """Topology family of the on-chip communication fabric."""

    SHARED_BUS = "shared_bus"
    CROSSBAR = "crossbar"
    NOC = "noc"


@dataclass(frozen=True)
class Interconnect:
    """The on-chip communication fabric ``nw``.

    Parameters
    ----------
    bandwidth:
        Maximum bandwidth ``bw_nw`` in bytes per time unit.
    base_latency:
        Fixed per-message latency (arbitration, routing) added to the
        size-proportional transfer time.
    kind:
        Topology family; a :attr:`InterconnectKind.SHARED_BUS` serialises
        all transfers when the contention-aware timing model is selected,
        while crossbars/NoCs only serialise per endpoint pair.
    comm_backend:
        Name of the contention model in :data:`repro.comm.COMM_BACKENDS`
        (``"flat"``, ``"shared-bus"``, ``"tdma"``, ``"noc-xy"``).  The
        default ``"flat"`` is the paper's guaranteed-bandwidth pipe; the
        name is validated lazily by :func:`repro.comm.make_comm` so the
        model layer stays independent of the backend registry.
    arq_retries:
        Transient message faults: a cross-processor transfer may be lost
        and re-sent up to this many times (the communication analog of
        task re-execution).  0 disables the message-fault model.
    arq_timeout:
        Fixed loss-detection overhead paid per retransmission (timeout +
        re-arbitration), in time units.
    mesh_columns:
        Mesh width for the ``noc-xy`` backend; 0 derives a square-ish
        mesh from the processor count.
    hop_latency:
        Per-hop router latency for ``noc-xy``; 0 falls back to
        ``base_latency``.
    slot_length:
        TDMA slot duration for the ``tdma`` backend; 0 derives a default
        64-byte-payload slot (``base_latency + 64 / bandwidth``).
    slot_count:
        TDMA slot-table length (slots per revolution); 0 uses one slot
        per processor.
    """

    bandwidth: float
    base_latency: float = 0.0
    kind: InterconnectKind = InterconnectKind.SHARED_BUS
    comm_backend: str = "flat"
    arq_retries: int = 0
    arq_timeout: float = 0.0
    mesh_columns: int = 0
    hop_latency: float = 0.0
    slot_length: float = 0.0
    slot_count: int = 0

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ModelError(f"interconnect bandwidth must be positive, got {self.bandwidth}")
        if self.base_latency < 0:
            raise ModelError("interconnect base latency must be >= 0")
        if not self.comm_backend or not isinstance(self.comm_backend, str):
            raise ModelError("comm backend must be a non-empty string")
        if not isinstance(self.arq_retries, int) or self.arq_retries < 0:
            raise ModelError(
                f"ARQ retransmission budget must be an int >= 0, "
                f"got {self.arq_retries!r}"
            )
        if self.arq_timeout < 0:
            raise ModelError("ARQ timeout must be >= 0")
        if self.mesh_columns < 0 or self.slot_count < 0:
            raise ModelError("mesh columns / slot count must be >= 0")
        if self.hop_latency < 0 or self.slot_length < 0:
            raise ModelError("hop latency / slot length must be >= 0")

    def transfer_time(self, size: float) -> float:
        """Uncontended time to move ``size`` bytes across the fabric."""
        if size <= 0:
            return 0.0
        return self.base_latency + size / self.bandwidth


class Architecture:
    """An MPSoC platform: processors plus interconnect."""

    def __init__(self, processors: Iterable[Processor], interconnect: Interconnect):
        self._processors: Dict[str, Processor] = {}
        for processor in processors:
            if processor.name in self._processors:
                raise ModelError(f"duplicate processor {processor.name!r}")
            self._processors[processor.name] = processor
        if not self._processors:
            raise ModelError("architecture must contain at least one processor")
        self._interconnect = interconnect
        self._order: Tuple[str, ...] = tuple(self._processors)

    @property
    def processors(self) -> Tuple[Processor, ...]:
        """All processors, in insertion order."""
        return tuple(self._processors[name] for name in self._order)

    @property
    def processor_names(self) -> Tuple[str, ...]:
        """Processor names, in insertion order."""
        return self._order

    @property
    def interconnect(self) -> Interconnect:
        """The communication fabric."""
        return self._interconnect

    def __len__(self) -> int:
        return len(self._processors)

    def __iter__(self) -> Iterator[Processor]:
        return iter(self.processors)

    def __contains__(self, processor_name: str) -> bool:
        return processor_name in self._processors

    def processor(self, name: str) -> Processor:
        """Look up a processor by name."""
        try:
            return self._processors[name]
        except KeyError:
            raise ModelError(f"no processor named {name!r}") from None

    def processors_of_type(self, ptype: str) -> Tuple[Processor, ...]:
        """All processors of a given type label."""
        return tuple(p for p in self.processors if p.ptype == ptype)

    def with_interconnect(self, interconnect: Interconnect) -> "Architecture":
        """A copy of this platform with the interconnect replaced.

        Used to rewrite fabric contention/ARQ settings without touching
        the processor set (e.g. ``--comm-backend`` overrides and the
        ARQ-monotonicity oracle's ``k -> k+1`` probe).
        """
        return Architecture(self.processors, interconnect)

    def max_static_power(self) -> float:
        """Static power with every processor allocated."""
        return sum(p.static_power for p in self.processors)

    def __repr__(self) -> str:
        return (
            f"Architecture({len(self._processors)} processors, "
            f"{self._interconnect.kind.value}, bw={self._interconnect.bandwidth})"
        )


def homogeneous_architecture(
    count: int,
    static_power: float = 1.0,
    dynamic_power: float = 2.0,
    fault_rate: float = 1e-6,
    bandwidth: float = 1e3,
    base_latency: float = 0.0,
    kind: InterconnectKind = InterconnectKind.SHARED_BUS,
    name_prefix: str = "pe",
) -> Architecture:
    """Convenience builder for a platform of identical processors."""
    if count <= 0:
        raise ModelError("processor count must be positive")
    processors = [
        Processor(
            name=f"{name_prefix}{index}",
            ptype="generic",
            static_power=static_power,
            dynamic_power=dynamic_power,
            fault_rate=fault_rate,
        )
        for index in range(count)
    ]
    interconnect = Interconnect(
        bandwidth=bandwidth, base_latency=base_latency, kind=kind
    )
    return Architecture(processors, interconnect)
