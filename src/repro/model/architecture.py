"""MPSoC architecture model ``A = (P, nw)`` (paper §2.1).

The platform consists of a set of (possibly heterogeneous) processors
connected by an on-chip interconnect (shared bus, crossbar or NoC).  Each
processor carries a type, leakage (static) power, dynamic power and a
constant transient-fault rate per time unit; the interconnect provides a
maximum bandwidth.  Faults on communication links are assumed transparent
(protected by low-level error-resilient techniques) and are not modelled.
"""

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Tuple

from repro.errors import ModelError


@dataclass(frozen=True)
class Processor:
    """A processing element.

    Parameters
    ----------
    name:
        Unique processor identifier.
    ptype:
        Architecture type label (e.g. ``"RISC"``, ``"DSP"``); tasks run
        ``speed`` times faster than their reference execution time on
        processors of higher speed.
    static_power:
        Leakage power ``stat_p`` drawn whenever the processor is allocated.
    dynamic_power:
        Dynamic power ``dyn_p`` drawn in proportion to utilization.
    fault_rate:
        Constant transient-fault rate ``lambda_p`` per time unit.
    speed:
        Relative speed factor; an execution time ``c`` on the reference
        processor takes ``c / speed`` here.  Defaults to 1 (homogeneous
        timing, heterogeneous power/fault characteristics).
    """

    name: str
    ptype: str = "generic"
    static_power: float = 0.0
    dynamic_power: float = 0.0
    fault_rate: float = 0.0
    speed: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ModelError("processor name must be a non-empty string")
        if self.static_power < 0 or self.dynamic_power < 0:
            raise ModelError(f"processor {self.name!r}: power must be >= 0")
        if self.fault_rate < 0:
            raise ModelError(f"processor {self.name!r}: fault rate must be >= 0")
        if self.speed <= 0:
            raise ModelError(f"processor {self.name!r}: speed must be positive")

    def scale_time(self, reference_time: float) -> float:
        """Execution time on this processor for a reference-time budget."""
        return reference_time / self.speed


class InterconnectKind(enum.Enum):
    """Topology family of the on-chip communication fabric."""

    SHARED_BUS = "shared_bus"
    CROSSBAR = "crossbar"
    NOC = "noc"


@dataclass(frozen=True)
class Interconnect:
    """The on-chip communication fabric ``nw``.

    Parameters
    ----------
    bandwidth:
        Maximum bandwidth ``bw_nw`` in bytes per time unit.
    base_latency:
        Fixed per-message latency (arbitration, routing) added to the
        size-proportional transfer time.
    kind:
        Topology family; a :attr:`InterconnectKind.SHARED_BUS` serialises
        all transfers when the contention-aware timing model is selected,
        while crossbars/NoCs only serialise per endpoint pair.
    """

    bandwidth: float
    base_latency: float = 0.0
    kind: InterconnectKind = InterconnectKind.SHARED_BUS

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ModelError(f"interconnect bandwidth must be positive, got {self.bandwidth}")
        if self.base_latency < 0:
            raise ModelError("interconnect base latency must be >= 0")

    def transfer_time(self, size: float) -> float:
        """Uncontended time to move ``size`` bytes across the fabric."""
        if size <= 0:
            return 0.0
        return self.base_latency + size / self.bandwidth


class Architecture:
    """An MPSoC platform: processors plus interconnect."""

    def __init__(self, processors: Iterable[Processor], interconnect: Interconnect):
        self._processors: Dict[str, Processor] = {}
        for processor in processors:
            if processor.name in self._processors:
                raise ModelError(f"duplicate processor {processor.name!r}")
            self._processors[processor.name] = processor
        if not self._processors:
            raise ModelError("architecture must contain at least one processor")
        self._interconnect = interconnect
        self._order: Tuple[str, ...] = tuple(self._processors)

    @property
    def processors(self) -> Tuple[Processor, ...]:
        """All processors, in insertion order."""
        return tuple(self._processors[name] for name in self._order)

    @property
    def processor_names(self) -> Tuple[str, ...]:
        """Processor names, in insertion order."""
        return self._order

    @property
    def interconnect(self) -> Interconnect:
        """The communication fabric."""
        return self._interconnect

    def __len__(self) -> int:
        return len(self._processors)

    def __iter__(self) -> Iterator[Processor]:
        return iter(self.processors)

    def __contains__(self, processor_name: str) -> bool:
        return processor_name in self._processors

    def processor(self, name: str) -> Processor:
        """Look up a processor by name."""
        try:
            return self._processors[name]
        except KeyError:
            raise ModelError(f"no processor named {name!r}") from None

    def processors_of_type(self, ptype: str) -> Tuple[Processor, ...]:
        """All processors of a given type label."""
        return tuple(p for p in self.processors if p.ptype == ptype)

    def max_static_power(self) -> float:
        """Static power with every processor allocated."""
        return sum(p.static_power for p in self.processors)

    def __repr__(self) -> str:
        return (
            f"Architecture({len(self._processors)} processors, "
            f"{self._interconnect.kind.value}, bw={self._interconnect.bandwidth})"
        )


def homogeneous_architecture(
    count: int,
    static_power: float = 1.0,
    dynamic_power: float = 2.0,
    fault_rate: float = 1e-6,
    bandwidth: float = 1e3,
    base_latency: float = 0.0,
    kind: InterconnectKind = InterconnectKind.SHARED_BUS,
    name_prefix: str = "pe",
) -> Architecture:
    """Convenience builder for a platform of identical processors."""
    if count <= 0:
        raise ModelError("processor count must be positive")
    processors = [
        Processor(
            name=f"{name_prefix}{index}",
            ptype="generic",
            static_power=static_power,
            dynamic_power=dynamic_power,
            fault_rate=fault_rate,
        )
        for index in range(count)
    ]
    interconnect = Interconnect(
        bandwidth=bandwidth, base_latency=base_latency, kind=kind
    )
    return Architecture(processors, interconnect)
