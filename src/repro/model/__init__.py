"""Application and architecture models (paper §2.1).

An application is a set of periodic task graphs with mixed criticality:
non-droppable graphs carry a reliability constraint ``f_t`` and droppable
graphs carry a service value ``sv_t``.  The architecture is a set of
(heterogeneous) processors connected by an on-chip interconnect.
"""

from repro.model.task import Channel, Task, TaskRole
from repro.model.taskgraph import Criticality, TaskGraph
from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture, Interconnect, Processor
from repro.model.mapping import Mapping
from repro.model.serialization import (
    application_set_from_dict,
    application_set_to_dict,
    architecture_from_dict,
    architecture_to_dict,
    load_system,
    SystemBundle,
    mapping_from_dict,
    mapping_to_dict,
    save_system,
    task_graph_from_dict,
    task_graph_to_dict,
)

__all__ = [
    "Task",
    "TaskRole",
    "Channel",
    "TaskGraph",
    "Criticality",
    "ApplicationSet",
    "Processor",
    "Interconnect",
    "Architecture",
    "Mapping",
    "task_graph_to_dict",
    "task_graph_from_dict",
    "application_set_to_dict",
    "application_set_from_dict",
    "architecture_to_dict",
    "architecture_from_dict",
    "mapping_to_dict",
    "mapping_from_dict",
    "save_system",
    "load_system",
    "SystemBundle",
]
