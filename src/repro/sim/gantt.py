"""Text Gantt rendering of simulation traces.

Turns a trace-enabled :class:`~repro.sim.trace.SimulationResult` into a
per-processor ASCII chart — handy for debugging mappings and for the
examples.  Requires the simulation to have been run with
``collect_trace=True``.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.trace import SimulationResult, TraceEvent


@dataclass(frozen=True)
class ExecutionSegment:
    """One contiguous execution of a job on a processor."""

    task: str
    instance: int
    processor: str
    start: float
    end: float


def execution_segments(result: SimulationResult) -> List[ExecutionSegment]:
    """Reconstruct execution segments from a collected trace.

    A segment opens on a ``start`` event and closes on the next
    ``preempt``/``finish``/``fault``/``reexecute``/``drop`` event of the
    same job.
    """
    if not result.trace:
        raise SimulationError(
            "no trace events — run the simulator with collect_trace=True"
        )
    open_segments: Dict[Tuple[str, int], TraceEvent] = {}
    segments: List[ExecutionSegment] = []
    closing = {"preempt", "finish", "drop", "fault", "reexecute"}
    for event in result.trace:
        key = (event.task, event.instance)
        if event.kind == "start":
            open_segments[key] = event
        elif event.kind in closing and key in open_segments:
            begin = open_segments.pop(key)
            if event.time > begin.time:
                segments.append(
                    ExecutionSegment(
                        task=event.task,
                        instance=event.instance,
                        processor=begin.processor,
                        start=begin.time,
                        end=event.time,
                    )
                )
            # A fault is followed by a re-execution start of the same job;
            # the next `start` event reopens the segment.
    return segments


def render_gantt(
    result: SimulationResult,
    width: int = 72,
    until: Optional[float] = None,
) -> str:
    """Render the trace as one ASCII row per processor.

    Each row shows ``width`` time slots; a slot is filled with the first
    letter of the task occupying it (``.`` = idle, ``*`` = more than one
    segment boundary in the slot).
    """
    segments = execution_segments(result)
    if not segments:
        return "(no executions recorded)"
    horizon = until if until is not None else max(s.end for s in segments)
    if horizon <= 0:
        raise SimulationError("render horizon must be positive")
    scale = width / horizon

    processors = sorted({s.processor for s in segments})
    label_width = max(len(p) for p in processors)
    lines = [
        f"gantt  0 {'.' * (width - len(str(round(horizon))) - 4)} {round(horizon)}"
    ]
    for processor in processors:
        slots = ["."] * width
        for segment in segments:
            if segment.processor != processor:
                continue
            first = min(width - 1, int(segment.start * scale))
            last = min(width - 1, max(first, int(segment.end * scale) - 1))
            for slot in range(first, last + 1):
                glyph = segment.task[0].upper() if segment.task else "?"
                slots[slot] = glyph if slots[slot] in (".", glyph) else "*"
        lines.append(f"{processor:>{label_width}} |{''.join(slots)}|")
    return "\n".join(lines)


def busy_times(result: SimulationResult) -> Dict[str, float]:
    """Total busy time per processor, from the trace."""
    totals: Dict[str, float] = {}
    for segment in execution_segments(result):
        totals[segment.processor] = (
            totals.get(segment.processor, 0.0) + segment.end - segment.start
        )
    return totals
