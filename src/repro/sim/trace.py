"""Simulation trace records and result aggregation."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped scheduler event.

    ``kind`` is one of ``release``, ``start``, ``preempt``, ``finish``,
    ``fault``, ``reexecute``, ``activate``, ``drop``, ``critical``,
    ``restore``, ``unsafe``.
    """

    time: float
    kind: str
    task: str = ""
    instance: int = -1
    processor: str = ""
    detail: str = ""


@dataclass
class InstanceOutcome:
    """Outcome of one application instance."""

    graph: str
    instance: int
    release: float
    #: Completion time of the whole instance; ``None`` if dropped.
    finish: Optional[float] = None
    dropped: bool = False
    deadline: float = 0.0

    @property
    def response_time(self) -> Optional[float]:
        """Completion relative to release, or ``None`` when dropped."""
        if self.finish is None:
            return None
        return self.finish - self.release

    @property
    def met_deadline(self) -> Optional[bool]:
        """Deadline satisfaction, or ``None`` when dropped."""
        response = self.response_time
        if response is None:
            return None
        return response <= self.deadline + 1e-9


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run."""

    outcomes: List[InstanceOutcome] = field(default_factory=list)
    trace: List[TraceEvent] = field(default_factory=list)
    #: ``(time, trigger task)`` of each normal-to-critical transition.
    transitions: List[Tuple[float, str]] = field(default_factory=list)
    #: Executions that completed with an undetected-faulty result.
    unsafe_events: List[Tuple[str, int]] = field(default_factory=list)
    #: Total number of injected faults that materialised.
    faults_observed: int = 0

    def graph_response_time(self, graph_name: str) -> Optional[float]:
        """Maximum observed response time of an application.

        Dropped instances do not contribute; returns ``None`` when no
        instance of the graph completed.
        """
        responses = [
            outcome.response_time
            for outcome in self.outcomes
            if outcome.graph == graph_name and outcome.response_time is not None
        ]
        if not responses:
            return None
        return max(responses)

    def response_times(self) -> Dict[str, Optional[float]]:
        """Maximum observed response time per application."""
        graphs = {outcome.graph for outcome in self.outcomes}
        return {graph: self.graph_response_time(graph) for graph in sorted(graphs)}

    def deadline_misses(self) -> List[InstanceOutcome]:
        """Instances that completed after their deadline."""
        return [o for o in self.outcomes if o.met_deadline is False]

    def dropped_instances(self) -> List[InstanceOutcome]:
        """Instances that were dropped in the critical state."""
        return [o for o in self.outcomes if o.dropped]

    @property
    def entered_critical_state(self) -> bool:
        """Whether any transition to the critical state happened."""
        return bool(self.transitions)
