"""Monte-Carlo worst-case estimation — the ``WC-Sim`` baseline (§5.1).

Repeats the simulation over many random failure profiles (the paper used
10,000) and records the maximum observed response time per application.
Simulation can only *under*-estimate the true worst case — the paper's
Table 2 shows exactly this: ``WC-Sim`` is sometimes below the ad-hoc
trace, confirming that simulation coverage is not sufficient for WCRT
guarantees.
"""

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.trace import span as trace_span
from repro.sim.engine import Simulator
from repro.sim.faults import no_fault_profile, random_profile
from repro.sim.sampler import BiasedSampler, ExecutionSampler


@dataclass
class MonteCarloResult:
    """Aggregated Monte-Carlo statistics."""

    #: Maximum observed response time per application.
    worst_response: Dict[str, float] = field(default_factory=dict)
    #: Number of simulated profiles.
    profiles: int = 0
    #: How many runs entered the critical state.
    critical_runs: int = 0
    #: How many runs dropped at least one application instance.
    runs_with_drops: int = 0
    #: Observed deadline misses (graph name -> count of runs).
    deadline_miss_runs: Dict[str, int] = field(default_factory=dict)
    #: Every observed response time per application (for percentiles).
    samples: Dict[str, List[float]] = field(default_factory=dict)
    #: The seed the campaign ran under (``None`` when an external RNG was
    #: injected — its state cannot be named by a single integer).
    seed: Optional[int] = None
    #: Canonical spec of the execution-time sampler (``sampler.describe()``).
    sampler_spec: Dict[str, Any] = field(default_factory=dict)
    #: Upper bound on faults per random profile.
    max_faults: int = 0
    #: Whether the deterministic fault-free run was prepended.
    include_fault_free: bool = True
    #: Simulated horizon in hyperperiods.
    hyperperiods: int = 1

    def wcrt_of(self, graph_name: str) -> Optional[float]:
        """Maximum observed response time of one application."""
        return self.worst_response.get(graph_name)

    def percentile(self, graph_name: str, q: float) -> Optional[float]:
        """The ``q``-quantile (0..1) of the observed response times.

        Illustrates why simulation coverage is insufficient for WCRT
        guarantees: even the 99th percentile typically sits well below
        the worst observed value, let alone the true worst case.
        """
        values = sorted(self.samples.get(graph_name, ()))
        if not values:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        index = min(len(values) - 1, int(q * len(values)))
        return values[index]

    def mean_response(self, graph_name: str) -> Optional[float]:
        """Mean observed response time of one application."""
        values = self.samples.get(graph_name, ())
        if not values:
            return None
        return sum(values) / len(values)


class MonteCarloEstimator:
    """Runs a simulation campaign over random failure profiles."""

    def __init__(
        self,
        simulator: Simulator,
        sampler: Optional[ExecutionSampler] = None,
        max_faults: int = 3,
        include_fault_free: bool = True,
    ):
        self._simulator = simulator
        self._sampler = sampler or BiasedSampler(0.5)
        self._max_faults = max_faults
        self._include_fault_free = include_fault_free

    def estimate(
        self,
        profiles: int,
        seed: int = 0,
        hyperperiods: int = 1,
        rng: Optional[random.Random] = None,
    ) -> MonteCarloResult:
        """Simulate ``profiles`` random failure profiles.

        A deterministic fault-free worst-case-execution run is prepended
        when ``include_fault_free`` is set, so the estimate is never below
        the plain normal-state trace.

        ``rng`` injects an externally owned generator (e.g. one shared by
        a larger verification campaign); it takes precedence over ``seed``
        and the result then records ``seed=None``.  The result always
        records the sampler spec and fault settings so campaign reports
        and reproducers are self-describing.
        """
        if rng is not None:
            recorded_seed: Optional[int] = None
        else:
            rng = random.Random(seed)
            recorded_seed = seed
        hardened = self._simulator._hardened
        describe = getattr(
            self._sampler, "describe", lambda: {"kind": type(self._sampler).__name__}
        )
        result = MonteCarloResult(
            seed=recorded_seed,
            sampler_spec=describe(),
            max_faults=self._max_faults,
            include_fault_free=self._include_fault_free,
            hyperperiods=hyperperiods,
        )

        runs = []
        if self._include_fault_free:
            runs.append(no_fault_profile())
        runs.extend(
            random_profile(
                hardened,
                rng,
                max_faults=self._max_faults,
                hyperperiods=hyperperiods,
            )
            for _ in range(profiles)
        )

        with trace_span(
            "sim.campaign",
            profiles=len(runs),
            max_faults=self._max_faults,
        ) as campaign_span:
            for profile in runs:
                sim_result = self._simulator.run(
                    profile=profile,
                    sampler=self._sampler,
                    rng=random.Random(rng.getrandbits(32)),
                    hyperperiods=hyperperiods,
                )
                result.profiles += 1
                if sim_result.entered_critical_state:
                    result.critical_runs += 1
                if sim_result.dropped_instances():
                    result.runs_with_drops += 1
                for graph, response in sim_result.response_times().items():
                    if response is None:
                        continue
                    result.samples.setdefault(graph, []).append(response)
                    best = result.worst_response.get(graph)
                    if best is None or response > best:
                        result.worst_response[graph] = response
                for outcome in sim_result.deadline_misses():
                    result.deadline_miss_runs[outcome.graph] = (
                        result.deadline_miss_runs.get(outcome.graph, 0) + 1
                    )
            campaign_span.set_attributes(
                critical_runs=result.critical_runs,
                runs_with_drops=result.runs_with_drops,
            )
        return result
