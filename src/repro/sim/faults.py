"""Failure profiles: which executions are hit by transient faults.

A :class:`FaultProfile` answers, for every execution attempt of every job,
whether a transient fault corrupts it.  Profiles are the unit of
Monte-Carlo repetition: the paper's ``WC-Sim`` column records the maximum
response time over 10,000 different failure profiles (§5.1).
"""

import random
from typing import Any, Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import SimulationError
from repro.hardening.spec import HardeningKind
from repro.hardening.transform import HardenedSystem

#: One faulty execution: ``(task name, graph instance, attempt index)``.
FaultKey = Tuple[str, int, int]

#: One lost channel transfer: ``(src task, dst task, graph instance,
#: transmission attempt)``.  Attempt 0 is the original send; attempts
#: ``1..k`` are the ARQ retransmissions.
MessageFaultKey = Tuple[str, str, int, int]


class FaultProfile:
    """An explicit set of faulty execution attempts and lost messages.

    Computation faults (``faults``) corrupt a task's execution attempt;
    message faults (``message_faults``) drop a cross-processor channel
    transfer, which the engine re-sends up to the fabric's ARQ budget
    (the communication analog of task re-execution).
    """

    def __init__(
        self,
        faults: Iterable[FaultKey] = (),
        label: str = "",
        message_faults: Iterable[MessageFaultKey] = (),
    ):
        self._faults: FrozenSet[FaultKey] = frozenset(faults)
        self._message_faults: FrozenSet[MessageFaultKey] = frozenset(
            message_faults
        )
        self.label = label

    def is_faulty(self, task_name: str, instance: int, attempt: int) -> bool:
        """Whether the given execution attempt is corrupted."""
        return (task_name, instance, attempt) in self._faults

    def is_message_lost(
        self, src: str, dst: str, instance: int, attempt: int
    ) -> bool:
        """Whether transmission ``attempt`` of channel ``src->dst`` is lost."""
        return (src, dst, instance, attempt) in self._message_faults

    @property
    def message_faults(self) -> FrozenSet[MessageFaultKey]:
        """The lost-transfer quadruples."""
        return self._message_faults

    @property
    def has_message_faults(self) -> bool:
        """Whether any channel transfer is hit."""
        return bool(self._message_faults)

    def __len__(self) -> int:
        return len(self._faults) + len(self._message_faults)

    def __iter__(self):
        return iter(sorted(self._faults))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultProfile):
            return NotImplemented
        return (
            self._faults == other._faults
            and self._message_faults == other._message_faults
            and self.label == other.label
        )

    def __hash__(self) -> int:
        return hash((self._faults, self._message_faults, self.label))

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form: sorted fault tuples plus the label.

        ``message_faults`` is emitted only when non-empty, so replay
        corpora written before the message-fault model stay byte-stable.
        """
        payload: Dict[str, Any] = {
            "label": self.label,
            "faults": [list(key) for key in sorted(self._faults)],
        }
        if self._message_faults:
            payload["message_faults"] = [
                list(key) for key in sorted(self._message_faults)
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultProfile":
        """Inverse of :meth:`to_dict`; ``from_dict(to_dict(p)) == p``."""
        faults = []
        for entry in payload.get("faults", ()):
            task, instance, attempt = entry
            faults.append((str(task), int(instance), int(attempt)))
        message_faults = []
        for entry in payload.get("message_faults", ()):
            src, dst, instance, attempt = entry
            message_faults.append(
                (str(src), str(dst), int(instance), int(attempt))
            )
        return cls(
            faults,
            label=str(payload.get("label", "")),
            message_faults=message_faults,
        )

    def __repr__(self) -> str:
        tag = f" {self.label!r}" if self.label else ""
        messages = (
            f" +{len(self._message_faults)} msg" if self._message_faults else ""
        )
        return f"FaultProfile({len(self._faults)} faults{messages}{tag})"


def no_fault_profile() -> FaultProfile:
    """The fault-free profile (normal-state trace)."""
    return FaultProfile((), label="no-fault")


def adhoc_profile(hardened: HardenedSystem, hyperperiods: int = 1) -> FaultProfile:
    """The ``Adhoc`` worst-trace profile of the paper's §5.1.

    Every time-redundant task is maximally recovered (its first ``k``
    attempts fault, the last succeeds) and every passively replicated
    group is triggered (its first active copy faults) — in every instance.
    The system is additionally forced critical from time zero by the
    caller (see :meth:`repro.sim.engine.Simulator.run`).
    """
    faults: List[FaultKey] = []
    for graph in hardened.applications.graphs:
        period = graph.period
        instances = round(hyperperiods * hardened.applications.hyperperiod / period)
        for task in graph.tasks:
            if hardened.is_time_redundant(task.name):
                k = hardened.time_redundancy[task.name].reexecutions
                for instance in range(instances):
                    faults.extend(
                        (task.name, instance, attempt) for attempt in range(k)
                    )
    for primary, spec in hardened.plan.items():
        if spec.kind is not HardeningKind.PASSIVE:
            continue
        graph = hardened.source.owner_of(primary)
        instances = round(
            hyperperiods * hardened.applications.hyperperiod / graph.period
        )
        first_active = hardened.replica_groups[primary][0]
        faults.extend((first_active, instance, 0) for instance in range(instances))
    return FaultProfile(faults, label="adhoc")


def random_profile(
    hardened: HardenedSystem,
    rng: random.Random,
    max_faults: int = 3,
    hyperperiods: int = 1,
) -> FaultProfile:
    """A random failure profile for Monte-Carlo estimation.

    Between 1 and ``max_faults`` faults are injected, each hitting a
    uniformly chosen hardened execution (re-executable task attempt or
    replica copy).  Profiles concentrate faults on hardened tasks because
    faults elsewhere neither change timing nor trigger state transitions.
    """
    if max_faults < 1:
        raise SimulationError(f"max_faults must be >= 1, got {max_faults}")
    candidates: List[FaultKey] = []
    hyperperiod = hardened.applications.hyperperiod
    for graph in hardened.applications.graphs:
        instances = round(hyperperiods * hyperperiod / graph.period)
        for task in graph.tasks:
            if hardened.is_time_redundant(task.name):
                k = hardened.time_redundancy[task.name].reexecutions
                for instance in range(instances):
                    for attempt in range(k + 1):
                        candidates.append((task.name, instance, attempt))
    for primary, spec in hardened.plan.items():
        if not spec.is_replicated:
            continue
        graph = hardened.source.owner_of(primary)
        instances = round(hyperperiods * hyperperiod / graph.period)
        for copy in hardened.replica_groups[primary]:
            for instance in range(instances):
                candidates.append((copy, instance, 0))
    if not candidates:
        return FaultProfile((), label="random-empty")
    count = rng.randint(1, max_faults)
    chosen: Set[FaultKey] = set(
        rng.choice(candidates) for _ in range(count)
    )
    return FaultProfile(chosen, label="random")
