"""Execution-time sampling strategies for the simulator.

Every sampler draws one execution duration from a job's ``[bcet, wcet]``
interval.  ``WorstCaseSampler`` makes simulations deterministic traces;
``BiasedSampler`` is the Monte-Carlo default — it lands on the exact WCET
with a configurable probability, which probes worst-case behaviour much
more effectively than uniform sampling.

Samplers carry a canonical JSON description (:meth:`describe` /
:func:`sampler_from_spec`) so campaign reports and counterexample
reproducers can name the exact sampling regime they ran under.
"""

import random
from typing import Any, Dict, Protocol

from repro.errors import SimulationError


class ExecutionSampler(Protocol):
    """Strategy drawing an execution time from ``[bcet, wcet]``."""

    def sample(self, bcet: float, wcet: float, rng: random.Random) -> float:
        """Return a duration in ``[bcet, wcet]``."""
        ...

    def describe(self) -> Dict[str, Any]:
        """A JSON-friendly spec naming the sampler and its parameters."""
        ...


class WorstCaseSampler:
    """Always the WCET — turns a simulation into a deterministic trace."""

    def sample(self, bcet: float, wcet: float, rng: random.Random) -> float:
        """Return ``wcet``."""
        return wcet

    def describe(self) -> Dict[str, Any]:
        """``{"kind": "worst"}``."""
        return {"kind": "worst"}


class BestCaseSampler:
    """Always the BCET."""

    def sample(self, bcet: float, wcet: float, rng: random.Random) -> float:
        """Return ``bcet``."""
        return bcet

    def describe(self) -> Dict[str, Any]:
        """``{"kind": "best"}``."""
        return {"kind": "best"}


class UniformSampler:
    """Uniform draw over ``[bcet, wcet]``."""

    def sample(self, bcet: float, wcet: float, rng: random.Random) -> float:
        """Return a uniform sample."""
        if wcet <= bcet:
            return wcet
        return rng.uniform(bcet, wcet)

    def describe(self) -> Dict[str, Any]:
        """``{"kind": "uniform"}``."""
        return {"kind": "uniform"}


class BiasedSampler:
    """WCET with probability ``worst_probability``, else uniform.

    This mimics how worst-case-hunting simulation campaigns steer
    execution times toward the upper bound.
    """

    def __init__(self, worst_probability: float = 0.5):
        if not 0.0 <= worst_probability <= 1.0:
            raise SimulationError(
                f"worst probability must lie in [0, 1], got {worst_probability}"
            )
        self._worst_probability = worst_probability

    @property
    def worst_probability(self) -> float:
        """Probability of landing exactly on the WCET."""
        return self._worst_probability

    def sample(self, bcet: float, wcet: float, rng: random.Random) -> float:
        """Return WCET with the configured probability, else uniform."""
        if wcet <= bcet or rng.random() < self._worst_probability:
            return wcet
        return rng.uniform(bcet, wcet)

    def describe(self) -> Dict[str, Any]:
        """``{"kind": "biased", "worst_probability": p}``."""
        return {"kind": "biased", "worst_probability": self._worst_probability}


def sampler_from_spec(spec: Dict[str, Any]) -> ExecutionSampler:
    """Rebuild a sampler from a :meth:`describe` spec.

    The inverse of ``sampler.describe()``; reproducers rely on the pair
    being a fixed point so a replay samples exactly the recorded regime.
    """
    kind = spec.get("kind")
    if kind == "worst":
        return WorstCaseSampler()
    if kind == "best":
        return BestCaseSampler()
    if kind == "uniform":
        return UniformSampler()
    if kind == "biased":
        return BiasedSampler(spec.get("worst_probability", 0.5))
    raise SimulationError(f"unknown sampler spec {spec!r}")
