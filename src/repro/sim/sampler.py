"""Execution-time sampling strategies for the simulator.

Every sampler draws one execution duration from a job's ``[bcet, wcet]``
interval.  ``WorstCaseSampler`` makes simulations deterministic traces;
``BiasedSampler`` is the Monte-Carlo default — it lands on the exact WCET
with a configurable probability, which probes worst-case behaviour much
more effectively than uniform sampling.
"""

import random
from typing import Protocol

from repro.errors import SimulationError


class ExecutionSampler(Protocol):
    """Strategy drawing an execution time from ``[bcet, wcet]``."""

    def sample(self, bcet: float, wcet: float, rng: random.Random) -> float:
        """Return a duration in ``[bcet, wcet]``."""
        ...


class WorstCaseSampler:
    """Always the WCET — turns a simulation into a deterministic trace."""

    def sample(self, bcet: float, wcet: float, rng: random.Random) -> float:
        """Return ``wcet``."""
        return wcet


class BestCaseSampler:
    """Always the BCET."""

    def sample(self, bcet: float, wcet: float, rng: random.Random) -> float:
        """Return ``bcet``."""
        return bcet


class UniformSampler:
    """Uniform draw over ``[bcet, wcet]``."""

    def sample(self, bcet: float, wcet: float, rng: random.Random) -> float:
        """Return a uniform sample."""
        if wcet <= bcet:
            return wcet
        return rng.uniform(bcet, wcet)


class BiasedSampler:
    """WCET with probability ``worst_probability``, else uniform.

    This mimics how worst-case-hunting simulation campaigns steer
    execution times toward the upper bound.
    """

    def __init__(self, worst_probability: float = 0.5):
        if not 0.0 <= worst_probability <= 1.0:
            raise SimulationError(
                f"worst probability must lie in [0, 1], got {worst_probability}"
            )
        self._worst_probability = worst_probability

    def sample(self, bcet: float, wcet: float, rng: random.Random) -> float:
        """Return WCET with the configured probability, else uniform."""
        if wcet <= bcet or rng.random() < self._worst_probability:
            return wcet
        return rng.uniform(bcet, wcet)
