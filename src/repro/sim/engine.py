"""The discrete-event simulation engine.

Each processor runs a fixed-priority preemptive scheduler (the same
priorities the analyses assume).  Jobs become ready when their graph
instance has been released and all gating inputs have arrived; channel
transfers take their worst-case latency (the fabric model of
:mod:`repro.sched.comm`).

Semantics of the hardening constructs (mirroring the analysis model):

* a re-executable task's every attempt includes the detection overhead
  (the unrolled job bounds already contain it); a faulty attempt triggers
  the critical state and is retried up to ``k`` times on the same PE;
* active replicas always run; the voter fires once all proactive copies
  have delivered and masks minority faults without any state change;
* when an active copy of a *passively* replicated task is faulty, the
  voter requests the passive copies (critical-state trigger), waits for
  them, and votes once — mismatch detection itself is free, the voting
  overhead ``ve`` is paid exactly once per decision;
* entering the critical state drops every job of the ``T_d`` applications
  released in the current hyperperiod (waiting, queued and running jobs
  alike); the system restores to normal at the hyperperiod boundary.
"""

import heapq
import random
from typing import Dict, List, Optional, Set, Tuple

from repro.comm import default_comm
from repro.errors import SimulationError
from repro.hardening.transform import HardenedSystem
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.obs import events as obs_events
from repro.obs.events import DeadlineMissed, FaultInjected
from repro.obs.metrics import metrics
from repro.sched.comm import CommModel
from repro.sched.jobs import JobSet, unroll
from repro.sched.priority import assign_priorities
from repro.sim.faults import FaultProfile, no_fault_profile
from repro.sim.sampler import ExecutionSampler, WorstCaseSampler
from repro.sim.trace import InstanceOutcome, SimulationResult, TraceEvent

# Job lifecycle states.
_WAITING = 0
_READY = 1
_RUNNING = 2
_DONE = 3
_DROPPED = 4

_EVENT_LIMIT = 2_000_000


class Simulator:
    """Simulates a hardened system under a failure profile.

    Parameters
    ----------
    hardened:
        The hardened system ``T'`` with its bookkeeping.
    architecture, mapping:
        Platform and task placement (over ``T'``).
    dropped:
        The dropped application set ``T_d``.
    comm:
        Channel latency model or unbound :class:`repro.comm.CommBackend`
        (defaults to whatever the platform's interconnect configuration
        selects).  Backends are bound against the hardened task set; the
        engine unrolls with single-attempt (no-ARQ) channel bounds and
        charges each injected message loss an explicit retransmission
        delay, so simulated latencies stay below the analysis's folded
        ARQ worst case.
    collect_trace:
        When ``True`` every scheduler event is recorded in the result's
        ``trace`` list (slower; off by default).
    policy:
        Per-processor scheduling policy: ``"fp"`` (default) or ``"edf"``;
        must match the policy the analysis assumed.
    """

    def __init__(
        self,
        hardened: HardenedSystem,
        architecture: Architecture,
        mapping: Mapping,
        dropped: Tuple[str, ...] = (),
        comm: Optional[CommModel] = None,
        collect_trace: bool = False,
        policy: str = "fp",
    ):
        self._hardened = hardened
        self._architecture = architecture
        self._mapping = mapping
        self._dropped = hardened.source.validate_drop_set(dropped)
        comm = comm if comm is not None else default_comm(architecture)
        if hasattr(comm, "bind"):
            comm = comm.bind(hardened.applications, mapping, architecture)
        # The analysis folds the full ARQ margin into channel bounds; the
        # engine instead unrolls single-attempt bounds and pays each
        # injected loss explicitly, so fault-free runs see no margin.
        self._arq_retries = getattr(comm, "arq_retries", 0)
        self._arq_timeout = getattr(comm, "arq_timeout", 0.0)
        self._comm = comm.without_arq() if hasattr(comm, "without_arq") else comm
        self._collect_trace = collect_trace
        self._policy = policy
        self._priorities = assign_priorities(hardened.applications)

        # Nominal per-task bounds: detection overhead folded into
        # re-executable tasks, passive copies keep their real durations
        # (they are gated by activation, not by zeroed bounds).
        self._bounds = {
            task.name: hardened.nominal_bounds(task.name)
            for task in hardened.applications.all_tasks
        }

        apps = hardened.applications
        self._roles = {task.name: task.role for task in apps.all_tasks}
        self._is_passive = {
            task.name: hardened.is_passive(task.name) for task in apps.all_tasks
        }
        # voter task -> (primary, active copy names, passive copy names)
        self._voter_groups: Dict[str, Tuple[str, Tuple[str, ...], Tuple[str, ...]]] = {}
        for primary, voter in hardened.voters.items():
            group = hardened.replica_groups[primary]
            actives = tuple(n for n in group if not hardened.is_passive(n))
            passives = tuple(n for n in group if hardened.is_passive(n))
            self._voter_groups[voter] = (primary, actives, passives)
        # passive copy -> primary
        self._passive_primary = {
            name: hardened.derived_to_primary[name]
            for name in hardened.passive_tasks
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        profile: Optional[FaultProfile] = None,
        sampler: Optional[ExecutionSampler] = None,
        rng: Optional[random.Random] = None,
        hyperperiods: int = 1,
        drop_from_start: bool = False,
    ) -> SimulationResult:
        """Simulate ``hyperperiods`` hyperperiods under a failure profile.

        ``drop_from_start`` forces the critical state from the beginning
        of every hyperperiod (the ``Adhoc`` trace of §5.1).
        """
        profile = profile or no_fault_profile()
        sampler = sampler or WorstCaseSampler()
        rng = rng or random.Random(0)

        jobset = unroll(
            self._hardened.applications,
            self._mapping,
            self._architecture,
            comm=self._comm,
            priorities=self._priorities,
            bounds=self._bounds,
            hyperperiods=hyperperiods,
            policy=self._policy,
        )
        state = _RunState(self, jobset, profile, sampler, rng)
        if drop_from_start:
            state.force_drop_every_hyperperiod()
        state.run()
        return state.result()


class _RunState:
    """Mutable state of one simulation run."""

    def __init__(
        self,
        sim: Simulator,
        jobset: JobSet,
        profile: FaultProfile,
        sampler: ExecutionSampler,
        rng: random.Random,
    ):
        self.sim = sim
        self.jobset = jobset
        self.profile = profile
        self.sampler = sampler
        self.rng = rng
        self.hyperperiod = jobset.hyperperiod
        self.horizon = jobset.horizon

        count = len(jobset)
        jobs = jobset.jobs
        self.status = [_WAITING] * count
        self.released = [False] * count
        self.delivered: List[Set[int]] = [set() for _ in range(count)]
        self.remaining = [None] * count  # type: List[Optional[float]]
        self.attempt = [0] * count
        self.epoch = [0] * count
        self.seg_start = [0.0] * count
        self.finish_time: List[Optional[float]] = [None] * count
        self.faulty_output = [False] * count

        # Gating sets.
        self.required_now: List[int] = []
        self.required_all: List[int] = []
        for job in jobs:
            non_demand = sum(1 for p in job.preds if not p[3])
            self.required_now.append(non_demand)
            self.required_all.append(len(job.preds))

        # Successor adjacency; cross-PE edges are the ones an injected
        # message fault can hit.
        self.succs: List[List[Tuple[int, float, bool]]] = [
            [] for _ in range(count)
        ]
        for job in jobs:
            for pred_index, _best, worst, _on_demand in job.preds:
                cross_pe = jobs[pred_index].processor != job.processor
                self.succs[pred_index].append((job.index, worst, cross_pe))

        # Per-PE ready heaps and running job.
        self.ready: Dict[str, List[Tuple[int, int, int]]] = {}
        self.running: Dict[str, Optional[int]] = {}
        for processor in sim._architecture.processors:
            self.ready[processor.name] = []
            self.running[processor.name] = None

        # Voter bookkeeping per (voter task, instance).
        self.voter_active_seen: Dict[Tuple[str, int], Set[str]] = {}
        self.voter_fault_seen: Dict[Tuple[str, int], bool] = {}
        self.activated: Dict[Tuple[str, int], bool] = {}

        # Critical-state bookkeeping.
        self.critical_until = -1.0
        self.forced_hyperperiods: Set[int] = set()

        # Event queue: (time, sequence, kind, a, b).
        self.queue: List[Tuple[float, int, str, int, int]] = []
        self.sequence = 0
        self.events_processed = 0

        # Results.
        self.trace: List[TraceEvent] = []
        self.transitions: List[Tuple[float, str]] = []
        self.unsafe: List[Tuple[str, int]] = []
        self.faults_observed = 0

        for job in jobs:
            self.push(job.release, "release", job.index, 0)
        for boundary in range(1, int(round(self.horizon / self.hyperperiod)) + 1):
            self.push(boundary * self.hyperperiod, "boundary", boundary, 0)

    # ------------------------------------------------------------------
    # Event machinery
    # ------------------------------------------------------------------

    def push(self, time: float, kind: str, a: int, b: int) -> None:
        self.sequence += 1
        heapq.heappush(self.queue, (time, self.sequence, kind, a, b))

    def record(self, time: float, kind: str, job_index: int = -1, detail: str = "") -> None:
        if not self.sim._collect_trace:
            return
        if job_index >= 0:
            job = self.jobset.jobs[job_index]
            self.trace.append(
                TraceEvent(
                    time=time,
                    kind=kind,
                    task=job.task_name,
                    instance=job.instance,
                    processor=job.processor,
                    detail=detail,
                )
            )
        else:
            self.trace.append(TraceEvent(time=time, kind=kind, detail=detail))

    def force_drop_every_hyperperiod(self) -> None:
        """Mark every hyperperiod to start in the critical state."""
        count = int(round(self.horizon / self.hyperperiod))
        self.forced_hyperperiods = set(range(count))
        self.trigger_critical(0.0, "forced")

    def run(self) -> None:
        """Main event loop."""
        while self.queue:
            self.events_processed += 1
            if self.events_processed > _EVENT_LIMIT:
                raise SimulationError(
                    "event limit exceeded — the simulation diverged"
                )
            time, _seq, kind, a, b = heapq.heappop(self.queue)
            if kind == "release":
                self.on_release(time, a)
            elif kind == "arrival":
                self.on_arrival(time, a, b)
            elif kind == "complete":
                self.on_complete(time, a, b)
            elif kind == "boundary":
                self.on_boundary(time, a)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def on_release(self, time: float, index: int) -> None:
        if self.status[index] == _DROPPED:
            return
        self.released[index] = True
        self.record(time, "release", index)
        self.check_ready(time, index)

    def on_arrival(self, time: float, dst: int, src: int) -> None:
        self.delivered[dst].add(src)
        jobs = self.jobset.jobs
        dst_task = jobs[dst].task_name
        if dst_task in self.sim._voter_groups:
            self.update_voter(time, dst)
        if self.status[dst] == _DROPPED:
            return
        self.check_ready(time, dst)

    def on_boundary(self, time: float, boundary_index: int) -> None:
        if self.critical_until <= time + 1e-12 and self.critical_until > 0:
            self.record(time, "restore")
        if boundary_index in self.forced_hyperperiods:
            self.trigger_critical(time, "forced")

    def on_complete(self, time: float, index: int, epoch: int) -> None:
        if epoch != self.epoch[index] or self.status[index] != _RUNNING:
            return  # stale completion (preempted or dropped meanwhile)
        jobs = self.jobset.jobs
        job = jobs[index]
        processor = job.processor
        task_name = job.task_name
        faulty = self.profile.is_faulty(task_name, job.instance, self.attempt[index])
        if faulty:
            self.faults_observed += 1
            bus = obs_events.bus()
            if bus.wants(FaultInjected):
                bus.publish(
                    FaultInjected(
                        time=time,
                        task=task_name,
                        instance=job.instance,
                        attempt=self.attempt[index],
                    )
                )

        if self.sim._hardened.is_time_redundant(task_name) and faulty:
            self.record(time, "fault", index)
            self.trigger_critical(time, task_name)
            k = self.sim._hardened.time_redundancy[task_name].reexecutions
            if self.attempt[index] < k:
                # Roll back and run again (same processor); checkpointed
                # tasks only repeat the current segment.
                self.attempt[index] += 1
                self.remaining[index] = self.sample_recovery(index)
                self.status[index] = _READY
                self.running[processor] = None
                heapq.heappush(
                    self.ready[processor], (job.priority, self.next_seq(), index)
                )
                self.record(time, "reexecute", index)
                self.schedule(time, processor)
                return
            # Out of retries: the faulty result propagates (unsafe).
            self.faulty_output[index] = True
            self.unsafe.append((task_name, job.instance))
            self.record(time, "unsafe", index)
        elif faulty:
            self.faulty_output[index] = True
            self.record(time, "fault", index)

        # Finalise completion.
        self.status[index] = _DONE
        self.finish_time[index] = time
        self.running[processor] = None
        self.record(time, "finish", index)

        if task_name in self.sim._voter_groups:
            self.finish_voter(time, index)

        for dst, comm_worst, cross_pe in self.succs[index]:
            delay = comm_worst
            if cross_pe and self.profile.has_message_faults:
                delay = self.message_delay(time, index, dst, comm_worst)
            self.push(time + delay, "arrival", dst, index)
        self.schedule(time, processor)

    def message_delay(
        self, time: float, src_index: int, dst_index: int, worst: float
    ) -> float:
        """Channel latency of one delivery under injected message losses.

        Each lost transmission costs one more worst-case attempt plus the
        ARQ timeout.  A channel whose entire budget (original send plus
        ``k`` retransmissions) is lost still *delivers* — at the full
        ``(k+1) * worst + k * timeout`` cost, matching the analysis fold —
        but the payload is corrupt, recorded as an unsafe event (the
        communication analog of exhausted re-execution).
        """
        jobs = self.jobset.jobs
        src = jobs[src_index]
        dst = jobs[dst_index]
        budget = self.sim._arq_retries
        timeout = self.sim._arq_timeout
        losses = 0
        while losses <= budget and self.profile.is_message_lost(
            src.task_name, dst.task_name, src.instance, losses
        ):
            losses += 1
        if losses == 0:
            return worst
        self.faults_observed += losses
        self.record(
            time,
            "msg-loss",
            src_index,
            detail=f"{src.task_name}>{dst.task_name} x{losses}",
        )
        if losses > budget:
            # ARQ exhausted: corrupt delivery at the folded worst case.
            self.unsafe.append(
                (f"{src.task_name}>{dst.task_name}", src.instance)
            )
            self.record(time, "msg-unsafe", src_index)
            return (budget + 1) * worst + budget * timeout
        return (losses + 1) * worst + losses * timeout

    # ------------------------------------------------------------------
    # Readiness and scheduling
    # ------------------------------------------------------------------

    def gates_satisfied(self, index: int) -> bool:
        jobs = self.jobset.jobs
        job = jobs[index]
        task_name = job.task_name
        delivered = len(self.delivered[index])
        if self.sim._is_passive.get(task_name, False):
            primary = self.sim._passive_primary[task_name]
            if not self.activated.get((primary, job.instance), False):
                return False
            return delivered >= self.required_all[index]
        if task_name in self.sim._voter_groups:
            primary = self.sim._voter_groups[task_name][0]
            if self.activated.get((primary, job.instance), False):
                return delivered >= self.required_all[index]
            return self.count_non_demand(index) >= self.required_now[index]
        return delivered >= self.required_now[index]

    def count_non_demand(self, index: int) -> int:
        job = self.jobset.jobs[index]
        non_demand_preds = {p[0] for p in job.preds if not p[3]}
        return len(self.delivered[index] & non_demand_preds)

    def check_ready(self, time: float, index: int) -> None:
        if self.status[index] != _WAITING or not self.released[index]:
            return
        if not self.gates_satisfied(index):
            return
        job = self.jobset.jobs[index]
        self.status[index] = _READY
        heapq.heappush(self.ready[job.processor], (job.priority, self.next_seq(), index))
        self.schedule(time, job.processor)

    def next_seq(self) -> int:
        self.sequence += 1
        return self.sequence

    def peek_ready(self, processor: str) -> Optional[int]:
        heap = self.ready[processor]
        while heap:
            _prio, _seq, index = heap[0]
            if self.status[index] == _READY:
                return index
            heapq.heappop(heap)  # stale (dropped or restarted)
        return None

    def schedule(self, time: float, processor: str) -> None:
        top = self.peek_ready(processor)
        if top is None:
            return
        current = self.running[processor]
        jobs = self.jobset.jobs
        if current is None:
            self.start(time, processor, top)
            return
        if jobs[top].priority < jobs[current].priority:
            # Preempt the running job.
            elapsed = time - self.seg_start[current]
            self.remaining[current] = max(
                0.0, (self.remaining[current] or 0.0) - elapsed
            )
            self.epoch[current] += 1
            self.status[current] = _READY
            heapq.heappush(
                self.ready[processor],
                (jobs[current].priority, self.next_seq(), current),
            )
            self.record(time, "preempt", current)
            self.running[processor] = None
            self.start(time, processor, top)

    def start(self, time: float, processor: str, index: int) -> None:
        heap = self.ready[processor]
        while heap and heap[0][2] != index:
            heapq.heappop(heap)
        if heap:
            heapq.heappop(heap)
        if self.remaining[index] is None:
            self.remaining[index] = self.sample_duration(index)
        self.status[index] = _RUNNING
        self.running[processor] = index
        self.seg_start[index] = time
        self.epoch[index] += 1
        self.push(time + self.remaining[index], "complete", index, self.epoch[index])
        self.record(time, "start", index)

    def sample_duration(self, index: int) -> float:
        job = self.jobset.jobs[index]
        return self.sampler.sample(job.bcet, job.wcet, self.rng)

    def sample_recovery(self, index: int) -> float:
        """Duration of one fault recovery (full re-run or one segment)."""
        job = self.jobset.jobs[index]
        low, high = self.sim._hardened.recovery_bounds(job.task_name)
        processor = self.sim._architecture.processor(job.processor)
        return self.sampler.sample(
            processor.scale_time(low), processor.scale_time(high), self.rng
        )

    # ------------------------------------------------------------------
    # Voting and passive activation
    # ------------------------------------------------------------------

    def update_voter(self, time: float, voter_index: int) -> None:
        jobs = self.jobset.jobs
        voter_job = jobs[voter_index]
        voter_task = voter_job.task_name
        primary, actives, passives = self.sim._voter_groups[voter_task]
        key = (voter_task, voter_job.instance)
        seen = self.voter_active_seen.setdefault(key, set())
        fault_seen = self.voter_fault_seen.get(key, False)
        for pred_index, _best, _worst, _on_demand in voter_job.preds:
            pred = jobs[pred_index]
            if pred.task_name in actives and pred_index in self.delivered[voter_index]:
                if pred.task_name not in seen:
                    seen.add(pred.task_name)
                    if self.faulty_output[pred_index]:
                        fault_seen = True
        self.voter_fault_seen[key] = fault_seen
        if len(seen) == len(actives) and fault_seen and passives:
            group_key = (primary, voter_job.instance)
            if not self.activated.get(group_key, False):
                self.activated[group_key] = True
                self.record(time, "activate", voter_index, detail=primary)
                self.trigger_critical(time, primary)
                for passive_name in passives:
                    passive_job = self.find_job(passive_name, voter_job.instance)
                    if passive_job is not None:
                        self.check_ready(time, passive_job)

    def finish_voter(self, time: float, voter_index: int) -> None:
        """Majority decision once the voter's execution completes."""
        jobs = self.jobset.jobs
        voter_job = jobs[voter_index]
        voter_task = voter_job.task_name
        primary, actives, passives = self.sim._voter_groups[voter_task]
        considered: List[int] = []
        for pred_index, _best, _worst, _on_demand in voter_job.preds:
            pred = jobs[pred_index]
            if pred.task_name in actives:
                considered.append(pred_index)
            elif pred.task_name in passives and self.activated.get(
                (primary, voter_job.instance), False
            ):
                considered.append(pred_index)
        faulty = sum(1 for i in considered if self.faulty_output[i])
        correct = len(considered) - faulty
        if len(considered) == 2:
            decision_faulty = faulty == 2
        else:
            decision_faulty = faulty > correct
        self.faulty_output[voter_index] = decision_faulty
        if decision_faulty:
            self.unsafe.append((voter_task, voter_job.instance))
            self.record(time, "unsafe", voter_index)

    def find_job(self, task_name: str, instance: int) -> Optional[int]:
        for job in self.jobset.jobs_of_task(task_name):
            if job.instance == instance:
                return job.index
        return None

    # ------------------------------------------------------------------
    # Critical state and dropping
    # ------------------------------------------------------------------

    def trigger_critical(self, time: float, trigger: str) -> None:
        self.transitions.append((time, trigger))
        boundary = (int(time // self.hyperperiod) + 1) * self.hyperperiod
        already_critical = self.critical_until >= boundary - 1e-12
        self.critical_until = max(self.critical_until, boundary)
        if already_critical:
            return
        self.record(time, "critical", detail=trigger)
        if not self.sim._dropped:
            return
        window_start = boundary - self.hyperperiod
        jobs = self.jobset.jobs
        for job in jobs:
            if job.graph_name not in self.sim._dropped:
                continue
            if not (window_start - 1e-12 <= job.release < boundary - 1e-12):
                continue
            status = self.status[job.index]
            if status in (_DONE, _DROPPED):
                continue
            if status == _RUNNING:
                self.epoch[job.index] += 1
                self.running[job.processor] = None
                self.status[job.index] = _DROPPED
                self.record(time, "drop", job.index)
                self.schedule(time, job.processor)
            else:
                self.status[job.index] = _DROPPED
                self.record(time, "drop", job.index)

    # ------------------------------------------------------------------
    # Result aggregation
    # ------------------------------------------------------------------

    def result(self) -> SimulationResult:
        jobs = self.jobset.jobs
        outcomes: Dict[Tuple[str, int], InstanceOutcome] = {}
        apps = self.sim._hardened.applications
        for job in jobs:
            key = (job.graph_name, job.instance)
            outcome = outcomes.get(key)
            if outcome is None:
                graph = apps.graph(job.graph_name)
                outcome = InstanceOutcome(
                    graph=job.graph_name,
                    instance=job.instance,
                    release=job.release,
                    deadline=graph.deadline,
                )
                outcomes[key] = outcome
            status = self.status[job.index]
            if status == _DROPPED:
                outcome.dropped = True
            elif status == _DONE:
                finish = self.finish_time[job.index]
                if outcome.finish is None or finish > outcome.finish:
                    outcome.finish = finish
            elif status in (_WAITING, _READY, _RUNNING):
                task_name = job.task_name
                is_idle_passive = self.sim._is_passive.get(
                    task_name, False
                ) and not self.activated.get(
                    (self.sim._passive_primary.get(task_name, ""), job.instance),
                    False,
                )
                if not is_idle_passive:
                    if outcome.dropped or job.graph_name in self.sim._dropped:
                        outcome.dropped = True
                    else:
                        raise SimulationError(
                            f"job {job.job_id!r} never completed "
                            f"(status {status}) — inconsistent simulation"
                        )
        ordered = [outcomes[key] for key in sorted(outcomes)]
        for outcome in ordered:
            if outcome.dropped:
                outcome.finish = None

        registry = metrics()
        registry.counter("sim.runs").inc()
        registry.counter("sim.events_processed").inc(self.events_processed)
        registry.counter("sim.faults_injected").inc(self.faults_observed)
        registry.counter("sim.critical_transitions").inc(len(self.transitions))
        registry.counter("sim.jobs_dropped").inc(
            sum(1 for status in self.status if status == _DROPPED)
        )
        bus = obs_events.bus()
        misses = [o for o in ordered if o.met_deadline is False]
        if misses:
            registry.counter("sim.deadline_misses").inc(len(misses))
            if bus.wants(DeadlineMissed):
                for outcome in misses:
                    bus.publish(
                        DeadlineMissed(
                            graph=outcome.graph,
                            instance=outcome.instance,
                            response=outcome.response_time,
                            deadline=outcome.deadline,
                        )
                    )
        return SimulationResult(
            outcomes=ordered,
            trace=self.trace,
            transitions=self.transitions,
            unsafe_events=self.unsafe,
            faults_observed=self.faults_observed,
        )
