"""Discrete-event simulation of fault-tolerant mixed-criticality MPSoCs.

The simulator executes a hardened application set on the platform with
per-processor fixed-priority preemptive scheduling and reproduces the
dynamic behaviours the analyses bound:

* sampled execution times within ``[bcet, wcet]``;
* transient faults injected from a :class:`~repro.sim.faults.FaultProfile`;
* re-execution on detected faults (detection overhead included);
* majority voting over active replicas, on-demand activation of passive
  replicas, and the resulting normal-to-critical state transition;
* dropping of the ``T_d`` applications while the system is critical,
  with restoration at the hyperperiod boundary.

:mod:`repro.sim.montecarlo` repeats simulations over many random failure
profiles — the ``WC-Sim`` estimator of the paper's Table 2.
"""

from repro.sim.sampler import (
    BestCaseSampler,
    BiasedSampler,
    ExecutionSampler,
    UniformSampler,
    WorstCaseSampler,
)
from repro.sim.faults import (
    FaultProfile,
    adhoc_profile,
    no_fault_profile,
    random_profile,
)
from repro.sim.trace import InstanceOutcome, SimulationResult, TraceEvent
from repro.sim.gantt import ExecutionSegment, busy_times, execution_segments, render_gantt
from repro.sim.engine import Simulator
from repro.sim.montecarlo import MonteCarloEstimator, MonteCarloResult

__all__ = [
    "ExecutionSampler",
    "WorstCaseSampler",
    "BestCaseSampler",
    "UniformSampler",
    "BiasedSampler",
    "FaultProfile",
    "no_fault_profile",
    "adhoc_profile",
    "random_profile",
    "TraceEvent",
    "InstanceOutcome",
    "SimulationResult",
    "ExecutionSegment",
    "execution_segments",
    "render_gantt",
    "busy_times",
    "Simulator",
    "MonteCarloEstimator",
    "MonteCarloResult",
]
