"""Shared helpers for the benchmark suites."""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.problem import Problem
from repro.hardening.transform import HardenedSystem
from repro.model.mapping import Mapping


@dataclass(frozen=True)
class Benchmark:
    """A named problem instance plus metadata.

    Attributes
    ----------
    name:
        Registry name (e.g. ``"cruise"``).
    problem:
        Applications + architecture.
    description:
        One-paragraph provenance note.
    critical_apps:
        Names of the non-droppable applications (reported in tables).
    """

    name: str
    problem: Problem
    description: str
    critical_apps: Tuple[str, ...] = ()


def round_robin_mapping(
    hardened: HardenedSystem,
    processors: Tuple[str, ...],
    offset: int = 0,
) -> Mapping:
    """Deterministic round-robin placement of all ``T'`` tasks.

    Replica co-location is avoided greedily: when the next processor in
    rotation already hosts a copy of the same primary task, the following
    ones are tried first.
    """
    assignment: Dict[str, str] = {}
    copies_of: Dict[str, set] = {}
    index = offset
    for task in hardened.applications.all_tasks:
        primary = hardened.derived_to_primary[task.name]
        used = copies_of.setdefault(primary, set())
        chosen = None
        for step in range(len(processors)):
            candidate = processors[(index + step) % len(processors)]
            if candidate not in used:
                chosen = candidate
                break
        if chosen is None:
            chosen = processors[index % len(processors)]
        assignment[task.name] = chosen
        used.add(chosen)
        index += 1
    return Mapping(assignment)
