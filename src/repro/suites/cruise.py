"""The *Cruise* benchmark (paper §5, refs [20], [6]).

A reconstruction of the cruise-control application of Kandasamy et al.
("Dependable communication synthesis for distributed embedded systems",
SAFECOMP 2003) with, as in the paper, three added synthetic applications
"to increase the benchmark complexity".

Two applications are safety-critical (non-droppable) — these are the "two
critical applications" whose WCRTs Table 2 reports:

* ``cc`` — the cruise controller proper: wheel/speed sensing, setpoint
  management, the control law, and throttle actuation;
* ``mon`` — the vehicle monitor: radar acquisition, object detection,
  decision logic, and the brake command.

Four droppable applications share the platform: infotainment (``info``),
a rear-camera stream (``cam``), on-board diagnostics (``diag``) and trip
logging (``log``).

Time unit: milliseconds.  The platform has two lock-step hardened cores
(low fault rate, expensive) and three performance cores (cheap, much
higher transient-fault rate), connected by a CAN-like shared bus.
"""

from typing import List, Tuple

from repro.core.problem import Problem
from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.hardening.transform import HardenedSystem, harden
from repro.model.application import ApplicationSet
from repro.model.architecture import (
    Architecture,
    Interconnect,
    InterconnectKind,
    Processor,
)
from repro.model.mapping import Mapping
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.suites.common import Benchmark

#: Names of the two critical applications reported in Table 2.
CRITICAL_APPS: Tuple[str, str] = ("cc", "mon")


def cruise_applications() -> ApplicationSet:
    """The five applications of the Cruise benchmark."""
    cc = TaskGraph(
        "cc",
        tasks=[
            Task("cc_whl", 30.0, 55.0, voting_overhead=8.0, detection_overhead=5.0),
            Task("cc_spd", 35.0, 60.0, voting_overhead=8.0, detection_overhead=5.0),
            Task("cc_ref", 20.0, 45.0, voting_overhead=6.0, detection_overhead=4.0),
            Task("cc_ctl", 60.0, 110.0, voting_overhead=10.0, detection_overhead=8.0),
            Task("cc_thr", 40.0, 75.0, voting_overhead=8.0, detection_overhead=6.0),
            Task("cc_act", 25.0, 50.0, voting_overhead=6.0, detection_overhead=4.0),
        ],
        channels=[
            Channel("cc_whl", "cc_spd", 64.0),
            Channel("cc_spd", "cc_ctl", 96.0),
            Channel("cc_ref", "cc_ctl", 48.0),
            Channel("cc_ctl", "cc_thr", 96.0),
            Channel("cc_thr", "cc_act", 64.0),
        ],
        period=2000.0,
        reliability_target=1e-9,
    )
    mon = TaskGraph(
        "mon",
        tasks=[
            Task("mon_rad", 45.0, 80.0, voting_overhead=8.0, detection_overhead=6.0),
            Task("mon_obj", 55.0, 100.0, voting_overhead=10.0, detection_overhead=8.0),
            Task("mon_dec", 35.0, 65.0, voting_overhead=8.0, detection_overhead=5.0),
            Task("mon_brk", 30.0, 55.0, voting_overhead=6.0, detection_overhead=4.0),
        ],
        channels=[
            Channel("mon_rad", "mon_obj", 128.0),
            Channel("mon_obj", "mon_dec", 96.0),
            Channel("mon_dec", "mon_brk", 48.0),
        ],
        period=2000.0,
        reliability_target=1e-9,
    )
    info = TaskGraph(
        "info",
        tasks=[
            Task("info_src", 55.0, 120.0),
            Task("info_dec", 80.0, 170.0),
            Task("info_mix", 40.0, 95.0),
            Task("info_out", 35.0, 75.0),
        ],
        channels=[
            Channel("info_src", "info_dec", 256.0),
            Channel("info_dec", "info_mix", 128.0),
            Channel("info_mix", "info_out", 128.0),
        ],
        period=1000.0,
        service_value=10.0,
    )
    diag = TaskGraph(
        "diag",
        tasks=[
            Task("diag_poll", 35.0, 70.0),
            Task("diag_chk", 45.0, 95.0),
            Task("diag_rep", 20.0, 45.0),
        ],
        channels=[
            Channel("diag_poll", "diag_chk", 96.0),
            Channel("diag_chk", "diag_rep", 64.0),
        ],
        period=2000.0,
        service_value=6.0,
    )
    log = TaskGraph(
        "log",
        tasks=[
            Task("log_smp", 12.0, 28.0),
            Task("log_fmt", 15.0, 32.0),
            Task("log_wrt", 10.0, 25.0),
        ],
        channels=[
            Channel("log_smp", "log_fmt", 64.0),
            Channel("log_fmt", "log_wrt", 96.0),
        ],
        period=500.0,
        service_value=3.0,
    )
    cam = TaskGraph(
        "cam",
        tasks=[
            Task("cam_cap", 45.0, 95.0),
            Task("cam_enc", 70.0, 150.0),
            Task("cam_ovl", 35.0, 80.0),
            Task("cam_out", 30.0, 65.0),
        ],
        channels=[
            Channel("cam_cap", "cam_enc", 256.0),
            Channel("cam_enc", "cam_ovl", 192.0),
            Channel("cam_ovl", "cam_out", 128.0),
        ],
        period=1000.0,
        service_value=8.0,
    )
    return ApplicationSet([cc, mon, info, diag, log, cam])


def cruise_architecture() -> Architecture:
    """Two lock-step cores + three performance cores on a shared bus."""
    processors = [
        Processor(
            name="lock0",
            ptype="lockstep",
            static_power=2.0,
            dynamic_power=5.0,
            fault_rate=1e-7,
        ),
        Processor(
            name="lock1",
            ptype="lockstep",
            static_power=2.0,
            dynamic_power=5.0,
            fault_rate=1e-7,
        ),
        Processor(
            name="perf0",
            ptype="performance",
            static_power=1.0,
            dynamic_power=3.0,
            fault_rate=3e-6,
        ),
        Processor(
            name="perf1",
            ptype="performance",
            static_power=1.0,
            dynamic_power=3.0,
            fault_rate=3e-6,
        ),
        Processor(
            name="perf2",
            ptype="performance",
            static_power=1.0,
            dynamic_power=3.0,
            fault_rate=3e-6,
        ),
    ]
    interconnect = Interconnect(
        bandwidth=8.0,  # bytes per ms — a CAN-class control bus
        base_latency=1.0,
        kind=InterconnectKind.SHARED_BUS,
    )
    return Architecture(processors, interconnect)


def cruise_benchmark() -> Benchmark:
    """The complete Cruise problem instance."""
    return Benchmark(
        name="cruise",
        problem=Problem(
            applications=cruise_applications(),
            architecture=cruise_architecture(),
        ),
        description=(
            "Cruise-control application reconstructed from Kandasamy et al. "
            "(2003) plus three synthetic applications, on a 5-core platform "
            "with two lock-step and two performance cores."
        ),
        critical_apps=CRITICAL_APPS,
    )


def cruise_reference_plan() -> HardeningPlan:
    """The fixed hardening used by the Table 2 scheduling-analysis study.

    A mix of the three techniques, mirroring the motivational example
    (Figure 1: A re-executed, B replicated): the control law is passively
    replicated, the object detector actively triplicated, the remaining
    critical tasks re-executed.
    """
    return HardeningPlan(
        {
            "cc_whl": HardeningSpec.reexecution(1),
            "cc_spd": HardeningSpec.reexecution(1),
            "cc_ref": HardeningSpec.reexecution(1),
            "cc_ctl": HardeningSpec.passive(3, active=2),
            "cc_thr": HardeningSpec.reexecution(1),
            "cc_act": HardeningSpec.reexecution(1),
            "mon_rad": HardeningSpec.reexecution(1),
            "mon_obj": HardeningSpec.active(3),
            "mon_dec": HardeningSpec.reexecution(1),
            "mon_brk": HardeningSpec.reexecution(1),
        }
    )


def cruise_sample_mappings() -> Tuple[HardenedSystem, List[Mapping]]:
    """The three sample mappings analysed in Table 2.

    Returns the hardened system (reference plan applied) and three
    hand-picked mappings over its tasks:

    * **Mapping 1** — locality first: each application owns a core, the
      replicas spill onto the spare performance core;
    * **Mapping 2** — critical work spread over four cores (more bus
      traffic, more cross-interference between the critical chains);
    * **Mapping 3** — droppable applications share cores with the
      critical pipelines, which is where dropping pays off most (and
      where the ``Naive`` bound is most pessimistic).
    """
    hardened = harden(cruise_applications(), cruise_reference_plan())

    mapping1 = Mapping(
        {
            "cc_whl": "lock0",
            "cc_spd": "lock0",
            "cc_ref": "lock0",
            "cc_ctl": "lock0",
            "cc_ctl#r1": "lock1",
            "cc_ctl#p0": "perf2",
            "cc_ctl#vote": "lock0",
            "cc_thr": "lock0",
            "cc_act": "lock0",
            "mon_rad": "lock1",
            "mon_obj": "lock1",
            "mon_obj#r1": "lock0",
            "mon_obj#r2": "perf2",
            "mon_obj#vote": "lock1",
            "mon_dec": "lock1",
            "mon_brk": "lock1",
            "info_src": "perf0",
            "info_dec": "perf0",
            "info_mix": "perf0",
            "info_out": "perf0",
            "cam_cap": "perf1",
            "cam_enc": "perf1",
            "cam_ovl": "perf1",
            "cam_out": "perf1",
            "diag_poll": "perf2",
            "diag_chk": "perf2",
            "diag_rep": "perf2",
            "log_smp": "perf2",
            "log_fmt": "perf2",
            "log_wrt": "perf2",
        }
    )

    mapping2 = Mapping(
        {
            "cc_whl": "lock0",
            "cc_spd": "lock1",
            "cc_ref": "perf2",
            "cc_ctl": "lock0",
            "cc_ctl#r1": "lock1",
            "cc_ctl#p0": "perf2",
            "cc_ctl#vote": "lock0",
            "cc_thr": "lock1",
            "cc_act": "lock0",
            "mon_rad": "perf2",
            "mon_obj": "lock1",
            "mon_obj#r1": "lock0",
            "mon_obj#r2": "perf2",
            "mon_obj#vote": "lock1",
            "mon_dec": "lock0",
            "mon_brk": "lock1",
            "info_src": "perf0",
            "info_dec": "perf0",
            "info_mix": "perf1",
            "info_out": "perf0",
            "cam_cap": "perf1",
            "cam_enc": "perf1",
            "cam_ovl": "perf0",
            "cam_out": "perf1",
            "diag_poll": "perf0",
            "diag_chk": "perf1",
            "diag_rep": "perf0",
            "log_smp": "perf1",
            "log_fmt": "perf0",
            "log_wrt": "perf1",
        }
    )

    mapping3 = Mapping(
        {
            "cc_whl": "lock0",
            "cc_spd": "lock0",
            "cc_ref": "lock0",
            "cc_ctl": "lock0",
            "cc_ctl#r1": "lock1",
            "cc_ctl#p0": "perf2",
            "cc_ctl#vote": "lock0",
            "cc_thr": "lock0",
            "cc_act": "lock0",
            "mon_rad": "lock1",
            "mon_obj": "lock1",
            "mon_obj#r1": "lock0",
            "mon_obj#r2": "perf2",
            "mon_obj#vote": "lock1",
            "mon_dec": "lock1",
            "mon_brk": "lock1",
            "info_src": "perf0",
            "info_dec": "perf0",
            "info_mix": "perf0",
            "info_out": "perf0",
            "cam_cap": "perf1",
            "cam_enc": "perf1",
            "cam_ovl": "perf1",
            "cam_out": "perf1",
            "diag_poll": "lock1",
            "diag_chk": "lock1",
            "diag_rep": "lock1",
            "log_smp": "lock0",
            "log_fmt": "lock0",
            "log_wrt": "lock0",
        }
    )

    return hardened, [mapping1, mapping2, mapping3]
