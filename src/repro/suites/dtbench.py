"""*DT-med* and *DT-large* (paper §5, ref [21]).

Two distributed non-preemptive real-time CORBA control benchmarks
inspired by the open-source DREAM tool tutorial (Madl et al.).  As in the
paper, "we add complexity and uncertainty by multiplying the invocation
period and execution time of the original tasks by 20 times" — the task
chains here carry timing in that scaled regime (tens-of-milliseconds
execution times, 500–1000 ms periods).

Both benchmarks mix critical control chains with droppable best-effort
chains; DT-med carries exactly three droppable applications ``t1``,
``t2``, ``t3`` — the drop-set universe of the paper's Figure 5.
"""

from typing import List, Tuple

from repro.core.problem import Problem
from repro.model.application import ApplicationSet
from repro.model.architecture import (
    Architecture,
    Interconnect,
    InterconnectKind,
    Processor,
)
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph
from repro.suites.common import Benchmark

#: Scale factor the paper applies to the original DREAM timings.
DREAM_SCALE = 20.0


def _chain(
    name: str,
    stage_times: List[Tuple[float, float]],
    message_size: float,
    period: float,
    reliability_target: float = None,
    service_value: float = None,
    detection_factor: float = 0.08,
    voting_factor: float = 0.08,
) -> TaskGraph:
    """A CORBA-style processing chain: stage_i -> stage_i+1."""
    tasks = []
    channels = []
    for index, (bcet, wcet) in enumerate(stage_times):
        tasks.append(
            Task(
                name=f"{name}_s{index}",
                bcet=bcet,
                wcet=wcet,
                detection_overhead=round(wcet * detection_factor, 3),
                voting_overhead=round(wcet * voting_factor, 3),
            )
        )
        if index:
            channels.append(
                Channel(f"{name}_s{index - 1}", f"{name}_s{index}", message_size)
            )
    return TaskGraph(
        name,
        tasks=tasks,
        channels=channels,
        period=period,
        reliability_target=reliability_target,
        service_value=service_value,
    )


def _dt_architecture(processors: int) -> Architecture:
    """A heterogeneous distributed platform with a shared backbone.

    Nodes get faster and hungrier with the index (speed and power grow
    together), which is what gives the Figure 5 front its intermediate
    points: every application kept alive in the critical mode demands
    more capacity, and each additional dropped application lets the
    allocation retreat to slower, cheaper node subsets.
    """
    pes = [
        Processor(
            name=f"node{index}",
            ptype="corba-node",
            static_power=round(0.8 + 0.5 * index, 3),
            dynamic_power=round(3.0 + 1.0 * index, 3),
            fault_rate=2e-6,
            speed=round(1.0 + 0.25 * index, 3),
        )
        for index in range(processors)
    ]
    interconnect = Interconnect(
        bandwidth=50.0,  # bytes per ms
        base_latency=0.5,
        kind=InterconnectKind.SHARED_BUS,
    )
    return Architecture(pes, interconnect)


def dt_med_applications() -> ApplicationSet:
    """Two critical chains plus the droppable ``t1``/``t2``/``t3``."""
    # Original DREAM-style stage times (ms) x 20 -> the values below.
    c1 = _chain(
        "dtm_c1",
        stage_times=[(18.0, 36.0), (24.0, 50.0), (30.0, 64.0), (20.0, 44.0), (16.0, 34.0)],
        message_size=120.0,
        period=1000.0,
        reliability_target=1e-9,
    )
    c2 = _chain(
        "dtm_c2",
        stage_times=[(22.0, 46.0), (28.0, 60.0), (26.0, 52.0), (18.0, 40.0)],
        message_size=160.0,
        period=1000.0,
        reliability_target=1e-9,
    )
    t1 = _chain(
        "t1",
        stage_times=[(40.0, 95.0), (50.0, 115.0), (42.0, 95.0), (30.0, 70.0)],
        message_size=200.0,
        period=1000.0,
        service_value=5.0,
    )
    t2 = _chain(
        "t2",
        stage_times=[(30.0, 80.0), (55.0, 120.0), (35.0, 80.0)],
        message_size=140.0,
        period=1000.0,
        service_value=3.0,
    )
    t3 = _chain(
        "t3",
        stage_times=[(25.0, 60.0), (40.0, 95.0), (30.0, 70.0)],
        message_size=100.0,
        period=1000.0,
        service_value=2.0,
    )
    return ApplicationSet([c1, c2, t1, t2, t3])


def dt_med_benchmark() -> Benchmark:
    """The DT-med problem instance (4 processing nodes)."""
    return Benchmark(
        name="dt-med",
        problem=Problem(
            applications=dt_med_applications(),
            architecture=_dt_architecture(4),
        ),
        description=(
            "Medium distributed non-preemptive real-time CORBA benchmark "
            "inspired by the DREAM tool tutorial; periods and execution "
            "times x20 as in the paper. Two critical control chains plus "
            "the droppable applications t1, t2, t3 of Figure 5."
        ),
        critical_apps=("dtm_c1", "dtm_c2"),
    )


def dt_large_applications() -> ApplicationSet:
    """Four critical chains plus four droppable ones."""
    graphs = [
        _chain(
            "dtl_c1",
            stage_times=[(18.0, 38.0), (26.0, 56.0), (32.0, 68.0), (22.0, 46.0), (16.0, 36.0)],
            message_size=140.0,
            period=500.0,
            reliability_target=1e-9,
        ),
        _chain(
            "dtl_c2",
            stage_times=[(24.0, 50.0), (30.0, 62.0), (26.0, 54.0), (20.0, 42.0)],
            message_size=180.0,
            period=500.0,
            reliability_target=1e-9,
        ),
        _chain(
            "dtl_c3",
            stage_times=[(20.0, 44.0), (28.0, 58.0), (24.0, 50.0), (18.0, 38.0), (14.0, 30.0)],
            message_size=120.0,
            period=1000.0,
            reliability_target=1e-9,
        ),
        _chain(
            "dtl_c4",
            stage_times=[(26.0, 54.0), (34.0, 70.0), (22.0, 48.0)],
            message_size=160.0,
            period=1000.0,
            reliability_target=1e-9,
        ),
        _chain(
            "dtl_t1",
            stage_times=[(22.0, 50.0), (28.0, 62.0), (24.0, 52.0), (16.0, 36.0)],
            message_size=220.0,
            period=500.0,
            service_value=6.0,
        ),
        _chain(
            "dtl_t2",
            stage_times=[(18.0, 44.0), (32.0, 68.0), (20.0, 44.0)],
            message_size=160.0,
            period=1000.0,
            service_value=4.0,
        ),
        _chain(
            "dtl_t3",
            stage_times=[(14.0, 34.0), (24.0, 54.0), (18.0, 40.0)],
            message_size=120.0,
            period=500.0,
            service_value=3.0,
        ),
        _chain(
            "dtl_t4",
            stage_times=[(12.0, 30.0), (20.0, 46.0), (14.0, 32.0)],
            message_size=100.0,
            period=1000.0,
            service_value=2.0,
        ),
    ]
    return ApplicationSet(graphs)


def dt_large_benchmark() -> Benchmark:
    """The DT-large problem instance (6 processing nodes)."""
    return Benchmark(
        name="dt-large",
        problem=Problem(
            applications=dt_large_applications(),
            architecture=_dt_architecture(6),
        ),
        description=(
            "Large distributed non-preemptive real-time CORBA benchmark "
            "inspired by the DREAM tool tutorial; periods and execution "
            "times x20. Four critical control chains and four droppable "
            "best-effort chains."
        ),
        critical_apps=("dtl_c1", "dtl_c2", "dtl_c3", "dtl_c4"),
    )
