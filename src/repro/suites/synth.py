"""*Synth-1* and *Synth-2* — the randomly generated benchmarks (paper §5).

Both are produced by the TGFF-style generator with fixed seeds.  Synth-1
has generous deadline slack: task dropping is almost never what makes a
candidate feasible (the paper measures 0.02 %).  Synth-2 is tighter
(0.685 %).  The real-life benchmarks with deadlines close to the
make-span show far larger ratios — the §5.2 experiment reproduces this
ordering.
"""

from repro.benchgen.tgff import GraphShape, TgffConfig, generate_problem
from repro.suites.common import Benchmark

SYNTH1_SEED = 20140601
SYNTH2_SEED = 20140605


def synth1_benchmark() -> Benchmark:
    """Synthetic benchmark with loose deadlines."""
    config = TgffConfig(
        shape=GraphShape(min_tasks=3, max_tasks=4, min_layers=2, max_layers=3),
        period_slack_range=(11.0, 15.0),
        reliability_target=1e-7,
    )
    problem = generate_problem(
        seed=SYNTH1_SEED,
        critical_graphs=2,
        droppable_graphs=2,
        processors=6,
        config=config,
        name_prefix="s1",
    )
    return Benchmark(
        name="synth-1",
        problem=problem,
        description=(
            "Randomly generated benchmark (fixed seed) with generous "
            "deadline slack: dropping is rarely needed for feasibility."
        ),
        critical_apps=tuple(
            g.name for g in problem.applications.critical_graphs
        ),
    )


def synth2_benchmark() -> Benchmark:
    """Synthetic benchmark with moderately tight deadlines."""
    config = TgffConfig(
        shape=GraphShape(min_tasks=5, max_tasks=8, min_layers=2, max_layers=5),
        period_slack_range=(2.6, 4.0),
        reliability_target=1e-7,
    )
    problem = generate_problem(
        seed=SYNTH2_SEED,
        critical_graphs=2,
        droppable_graphs=3,
        processors=4,
        config=config,
        name_prefix="s2",
    )
    return Benchmark(
        name="synth-2",
        problem=problem,
        description=(
            "Randomly generated benchmark (fixed seed) with moderately "
            "tight deadlines: dropping occasionally rescues feasibility."
        ),
        critical_apps=tuple(
            g.name for g in problem.applications.critical_graphs
        ),
    )
