"""Benchmark suites of the paper's evaluation (§5).

* :mod:`repro.suites.cruise` — the cruise-control application of
  Kandasamy et al. [20] plus three synthetic applications, with the
  reference hardening plan and the three sample mappings of Table 2;
* :mod:`repro.suites.dtbench` — *DT-med* and *DT-large*, the
  medium/large distributed real-time CORBA control benchmarks inspired
  by the DREAM tool [21], with periods and execution times scaled by 20;
* :mod:`repro.suites.synth` — *Synth-1* and *Synth-2*, randomly generated
  with fixed seeds via :mod:`repro.benchgen`.

Exact task parameters of the original benchmarks were never published;
the suites reconstruct workloads with the documented *shape* (task
counts, criticality mix, deadline tightness) — see DESIGN.md §3.
"""

from repro.suites.common import Benchmark
from repro.suites.cruise import (
    cruise_benchmark,
    cruise_reference_plan,
    cruise_sample_mappings,
)
from repro.suites.dtbench import dt_large_benchmark, dt_med_benchmark
from repro.suites.synth import synth1_benchmark, synth2_benchmark

from repro.errors import ModelError

_REGISTRY = {
    "cruise": cruise_benchmark,
    "dt-med": dt_med_benchmark,
    "dt-large": dt_large_benchmark,
    "synth-1": synth1_benchmark,
    "synth-2": synth2_benchmark,
}


def benchmark_names():
    """Names accepted by :func:`get_benchmark`."""
    return tuple(_REGISTRY)


def get_benchmark(name: str) -> Benchmark:
    """Build a benchmark by name (fresh instance each call)."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown benchmark {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return builder()


__all__ = [
    "Benchmark",
    "benchmark_names",
    "get_benchmark",
    "cruise_benchmark",
    "cruise_reference_plan",
    "cruise_sample_mappings",
    "dt_med_benchmark",
    "dt_large_benchmark",
    "synth1_benchmark",
    "synth2_benchmark",
]
