"""Design-space exploration (paper §4).

A genetic algorithm explores allocation, hardening, mapping and the
dropped-application set simultaneously.  The chromosome follows Figure 4:

* one binary allocation gene per processor;
* one binary "never dropped" gene per droppable application;
* per task: the primary mapping, the re-execution degree, the mappings of
  active and passive replicas, and the voter mapping.

Infeasible candidates are repaired by randomized heuristics
(:mod:`repro.dse.repair`): illegally mapped tasks are reassigned to random
allocated processors, and hardening is escalated at random until the
reliability constraints hold.  Selection uses a from-scratch SPEA2
implementation (:mod:`repro.dse.spea2`) over the two objectives
``(power, -service)``.
"""

from repro.dse.chromosome import Chromosome, TaskGene, random_chromosome
from repro.dse.operators import crossover, mutate
from repro.dse.repair import repair
from repro.dse.spea2 import Spea2Selector, dominates
from repro.dse.results import ExplorationResult, ExplorationStatistics, ParetoPoint
from repro.dse.ga import Explorer, ExplorerConfig
from repro.dse.request import ExploreRequest, IslandTopology, TOPOLOGY_KINDS

__all__ = [
    "ExploreRequest",
    "IslandTopology",
    "TOPOLOGY_KINDS",
    "Chromosome",
    "TaskGene",
    "random_chromosome",
    "crossover",
    "mutate",
    "repair",
    "dominates",
    "Spea2Selector",
    "Explorer",
    "ExplorerConfig",
    "ExplorationResult",
    "ExplorationStatistics",
    "ParetoPoint",
]
