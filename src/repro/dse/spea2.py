"""SPEA2 — Strength Pareto Evolutionary Algorithm 2 (Zitzler et al., 2001).

A from-scratch implementation of the selector the paper plugs into OPT4J
(refs [18], [19]).  Given a union of population and archive with
minimisation objectives:

* the *strength* ``S(i)`` of an individual is the number of individuals
  it dominates;
* the *raw fitness* ``R(i)`` sums the strengths of everyone dominating
  ``i`` (0 means non-dominated);
* the *density* ``D(i) = 1 / (sigma_k + 2)`` uses the distance to the
  ``k``-th nearest neighbour in objective space, ``k = sqrt(N)``;
* fitness ``F(i) = R(i) + D(i)``; lower is better.

Environmental selection keeps all non-dominated individuals; overfull
archives are truncated by repeatedly removing the individual with the
smallest distance to its nearest neighbour (ties broken on the next
nearest), underfull archives are filled with the best dominated ones.
"""

import math
import random
from typing import List, Sequence, Tuple

from repro.errors import ExplorationError

Objectives = Tuple[float, ...]


def dominates(a: Objectives, b: Objectives) -> bool:
    """Pareto dominance for minimisation: ``a`` no worse everywhere and
    strictly better somewhere."""
    if len(a) != len(b):
        raise ExplorationError("objective vectors differ in length")
    not_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return not_worse and strictly_better


class Spea2Selector:
    """Fitness assignment and environmental selection of SPEA2."""

    def __init__(self, archive_size: int):
        if archive_size < 1:
            raise ExplorationError("archive size must be >= 1")
        self._archive_size = archive_size

    # ------------------------------------------------------------------
    # Fitness
    # ------------------------------------------------------------------

    def fitness(self, objectives: Sequence[Objectives]) -> List[float]:
        """SPEA2 fitness ``F(i) = R(i) + D(i)`` for every individual."""
        count = len(objectives)
        if count == 0:
            return []
        strength = [0] * count
        dominated_by: List[List[int]] = [[] for _ in range(count)]
        for i in range(count):
            for j in range(count):
                if i != j and dominates(objectives[i], objectives[j]):
                    strength[i] += 1
                    dominated_by[j].append(i)
        raw = [
            float(sum(strength[d] for d in dominated_by[i])) for i in range(count)
        ]
        k = max(1, int(math.sqrt(count)))
        densities = []
        for i in range(count):
            distances = sorted(
                _distance(objectives[i], objectives[j])
                for j in range(count)
                if j != i
            )
            sigma_k = distances[min(k - 1, len(distances) - 1)] if distances else 0.0
            densities.append(1.0 / (sigma_k + 2.0))
        return [raw[i] + densities[i] for i in range(count)]

    # ------------------------------------------------------------------
    # Environmental selection
    # ------------------------------------------------------------------

    def select(self, objectives: Sequence[Objectives]) -> List[int]:
        """Indices forming the next archive."""
        count = len(objectives)
        if count == 0:
            return []
        fitness = self.fitness(objectives)
        nondominated = [i for i in range(count) if fitness[i] < 1.0]
        if len(nondominated) > self._archive_size:
            return self._truncate(objectives, nondominated)
        if len(nondominated) < self._archive_size:
            dominated = sorted(
                (i for i in range(count) if fitness[i] >= 1.0),
                key=lambda i: fitness[i],
            )
            fill = self._archive_size - len(nondominated)
            return nondominated + dominated[:fill]
        return nondominated

    def _truncate(
        self, objectives: Sequence[Objectives], members: List[int]
    ) -> List[int]:
        """Iteratively drop the most crowded member (SPEA2 truncation)."""
        alive = list(members)
        while len(alive) > self._archive_size:
            distance_lists = []
            for i in alive:
                distances = sorted(
                    _distance(objectives[i], objectives[j])
                    for j in alive
                    if j != i
                )
                distance_lists.append((distances, i))
            # Remove the member whose sorted distance vector is
            # lexicographically smallest (densest region).
            distance_lists.sort(key=lambda item: item[0])
            alive.remove(distance_lists[0][1])
        return alive

    # ------------------------------------------------------------------
    # Mating selection
    # ------------------------------------------------------------------

    def tournament(
        self,
        fitness: Sequence[float],
        rng: random.Random,
        size: int = 2,
    ) -> int:
        """Binary (by default) tournament on SPEA2 fitness; returns an index."""
        if not fitness:
            raise ExplorationError("tournament over an empty pool")
        best = rng.randrange(len(fitness))
        for _ in range(size - 1):
            challenger = rng.randrange(len(fitness))
            if fitness[challenger] < fitness[best]:
                best = challenger
        return best


def _distance(a: Objectives, b: Objectives) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def pareto_filter(objectives: Sequence[Objectives]) -> List[int]:
    """Indices of the non-dominated members of a set (minimisation)."""
    result = []
    for i, candidate in enumerate(objectives):
        if not any(
            dominates(objectives[j], candidate)
            for j in range(len(objectives))
            if j != i
        ):
            result.append(i)
    return result
