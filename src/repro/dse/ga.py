"""The genetic-algorithm exploration loop (paper §4).

Generational multi-objective GA with SPEA2 environmental selection:

1. a random initial population is repaired and evaluated;
2. each generation, SPEA2 selects the archive from population ∪ archive,
   parents are drawn by binary tournament on SPEA2 fitness, and offspring
   are produced by uniform crossover + mutation + repair;
3. evaluation results are cached by chromosome identity — the paper
   evaluates candidates in parallel for speed, here a thread pool can be
   enabled via ``workers``.

The paper runs population = parents = offspring = 100 for 5,000
generations; those are the defaults, scaled down in tests and benchmarks.
"""

import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.guard import GuardConfig, GuardedEvaluator, QuarantineLog
from repro.core.problem import Problem
from repro.obs import events as obs_events
from repro.obs.events import (
    ArchiveUpdated,
    EarlyStopped,
    GenerationCompleted,
    RunInterrupted,
    RunResumed,
)
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import (
    SpanContext,
    activate,
    annotate,
    capture_context,
    span as trace_span,
)
from repro.dse.checkpoint import (
    CheckpointManager,
    RunSnapshot,
    problem_digest,
)
from repro.dse.chromosome import (
    Chromosome,
    heuristic_chromosome,
    partition_chromosome,
    random_chromosome,
)
from repro.dse.operators import crossover, mutate
from repro.dse.repair import repair
from repro.dse.results import (
    ExplorationResult,
    ExplorationStatistics,
    ParetoPoint,
)
from repro.dse.spea2 import Spea2Selector, pareto_filter
from repro.errors import ExplorationError

_LOG = get_logger("dse")


@dataclass(frozen=True)
class ExplorerConfig:
    """Tuning knobs of the exploration.

    The defaults mirror the paper's experimental setup (§4): population,
    parents and offspring of 100, SPEA2 selection, 5,000 generations.
    """

    population_size: int = 100
    offspring_size: int = 100
    archive_size: int = 100
    generations: int = 5000
    crossover_probability: float = 0.9
    mutation_allocation_rate: float = 0.05
    mutation_keep_alive_rate: float = 0.1
    mutation_gene_rate: float = 0.15
    seed: int = 0
    #: Evaluate each feasible dropping candidate also with ``T_d`` emptied
    #: to collect the §5.2 "feasible only with dropping" statistic.
    track_dropping_gain: bool = False
    reliability_repair_rounds: int = 16
    #: Thread-pool size for candidate evaluation (1 = serial).
    workers: int = 1
    #: Stop early after this many generations without archive improvement
    #: (``None`` disables early stopping).
    stagnation_limit: Optional[int] = None
    #: Mix constructive seed individuals (round-robin mapping, uniform
    #: re-execution, one per candidate drop set) into the initial
    #: population.  Greatly speeds up small-budget runs.
    seed_heuristics: bool = True
    #: Force ``T_d`` empty on every candidate — the "without task
    #: dropping" optimization of the §5.2 power comparison.
    disable_dropping: bool = False
    #: Extra primary-backend attempts after a raising evaluation (the
    #: guard's bounded retry for transient failures).
    eval_retries: int = 1
    #: Per-evaluation wall-clock soft budget in seconds (``None``
    #: disables; opt-in because time cutoffs make runs timing-dependent).
    eval_soft_budget_seconds: Optional[float] = None
    #: Re-evaluate once with the cheap fast-window backend when the
    #: primary backend raises or exceeds its budget.
    eval_fallback: bool = True
    #: JSONL file collecting poison design points (``None`` disables).
    quarantine_path: Optional[str] = None
    #: Directory for crash-safe run snapshots (``None`` disables).
    checkpoint_dir: Optional[str] = None
    #: Snapshot every N generations (when ``checkpoint_dir`` is set).
    checkpoint_every: int = 10
    #: Restart from the latest valid snapshot in ``checkpoint_dir``.
    resume: bool = False

    def __post_init__(self):
        if self.population_size < 2:
            raise ExplorationError("population size must be >= 2")
        if self.offspring_size < 1:
            raise ExplorationError("offspring size must be >= 1")
        if self.archive_size < 1:
            raise ExplorationError("archive size must be >= 1")
        if self.generations < 0:
            raise ExplorationError("generations must be >= 0")
        if not 0.0 <= self.crossover_probability <= 1.0:
            raise ExplorationError("crossover probability must lie in [0, 1]")
        for label, rate in (
            ("mutation allocation rate", self.mutation_allocation_rate),
            ("mutation keep-alive rate", self.mutation_keep_alive_rate),
            ("mutation gene rate", self.mutation_gene_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ExplorationError(f"{label} must lie in [0, 1]")
        if self.workers < 1:
            raise ExplorationError("workers must be >= 1")
        if self.stagnation_limit is not None and self.stagnation_limit < 1:
            raise ExplorationError("stagnation limit must be >= 1")
        if self.eval_retries < 0:
            raise ExplorationError("evaluation retries must be >= 0")
        if (
            self.eval_soft_budget_seconds is not None
            and self.eval_soft_budget_seconds <= 0
        ):
            raise ExplorationError("evaluation soft budget must be positive")
        if self.checkpoint_every < 1:
            raise ExplorationError("checkpoint interval must be >= 1")

    @classmethod
    def from_options(
        cls,
        *,
        population: int = 32,
        generations: int = 25,
        seed: int = 0,
        workers: int = 1,
        population_size: Optional[int] = None,
        offspring_size: Optional[int] = None,
        archive_size: Optional[int] = None,
        crossover_probability: float = 0.9,
        mutation_allocation_rate: float = 0.05,
        mutation_keep_alive_rate: float = 0.1,
        mutation_gene_rate: float = 0.15,
        track_dropping_gain: bool = False,
        reliability_repair_rounds: int = 16,
        stagnation_limit: Optional[int] = None,
        seed_heuristics: bool = True,
        disable_dropping: bool = False,
        eval_retries: int = 1,
        eval_budget: Optional[float] = None,
        eval_soft_budget_seconds: Optional[float] = None,
        eval_fallback: bool = True,
        quarantine: Optional[str] = None,
        quarantine_path: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 10,
        resume: bool = False,
    ) -> "ExplorerConfig":
        """The one construction path shared by CLI, HTTP, api, experiments.

        ``population`` expands to the paper's population = parents =
        offspring = archive triple unless the individual sizes are given
        explicitly, ``eval_budget``/``quarantine`` are the user-facing
        spellings of ``eval_soft_budget_seconds``/``quarantine_path``,
        and checkpointed runs get a quarantine log beside their
        snapshots unless one is configured explicitly.  Because every
        entry point funnels through here, the same logical inputs
        provably yield identical configs everywhere.
        """
        if resume and not checkpoint_dir:
            raise ExplorationError("resume requires a checkpoint directory")
        if eval_soft_budget_seconds is None:
            eval_soft_budget_seconds = eval_budget
        if quarantine_path is None:
            quarantine_path = quarantine
        if quarantine_path is None and checkpoint_dir:
            quarantine_path = str(Path(checkpoint_dir) / "quarantine.jsonl")
        return cls(
            population_size=(
                population if population_size is None else population_size
            ),
            offspring_size=(
                population if offspring_size is None else offspring_size
            ),
            archive_size=population if archive_size is None else archive_size,
            generations=generations,
            crossover_probability=crossover_probability,
            mutation_allocation_rate=mutation_allocation_rate,
            mutation_keep_alive_rate=mutation_keep_alive_rate,
            mutation_gene_rate=mutation_gene_rate,
            seed=seed,
            track_dropping_gain=track_dropping_gain,
            reliability_repair_rounds=reliability_repair_rounds,
            workers=workers,
            stagnation_limit=stagnation_limit,
            seed_heuristics=seed_heuristics,
            disable_dropping=disable_dropping,
            eval_retries=eval_retries,
            eval_soft_budget_seconds=eval_soft_budget_seconds,
            eval_fallback=eval_fallback,
            quarantine_path=quarantine_path,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )


@dataclass
class _Boundary:
    """Consistent loop state captured at the end of one generation.

    Mutable run state (statistics, caches) is referenced by size/copy at
    capture time, so an interrupt mid-generation can still commit the
    last *consistent* snapshot instead of a torn one.
    """

    generation: int
    population: List[Chromosome]
    archive: List[Chromosome]
    rng_state: Tuple
    best_power: Optional[float]
    stagnation: int
    history_len: int
    statistics: dict = field(default_factory=dict)
    cache_size: int = 0
    without_drop_size: int = 0


class Explorer:
    """Runs the GA for a problem instance.

    Every evaluation goes through a :class:`GuardedEvaluator`, so a
    pathological design point cannot abort a long run; pass an already
    guarded evaluator to customise the guard beyond the config knobs.
    """

    def __init__(
        self,
        problem: Problem,
        config: Optional[ExplorerConfig] = None,
        evaluator: Optional[Evaluator] = None,
    ):
        self._problem = problem
        self._config = config or ExplorerConfig.from_options(
            population=100, generations=5000
        )
        base = evaluator or Evaluator(problem)
        if isinstance(base, GuardedEvaluator):
            self._evaluator = base
        else:
            quarantine = (
                QuarantineLog(self._config.quarantine_path)
                if self._config.quarantine_path
                else None
            )
            self._evaluator = GuardedEvaluator(
                base,
                config=GuardConfig(
                    retries=self._config.eval_retries,
                    soft_budget_seconds=self._config.eval_soft_budget_seconds,
                    fallback=self._config.eval_fallback,
                ),
                quarantine=quarantine,
            )
        self._cache: Dict[Tuple, EvaluationResult] = {}
        self._without_drop_cache: Dict[Tuple, bool] = {}
        self._stats = ExplorationStatistics()

    @property
    def quarantine(self) -> Optional[QuarantineLog]:
        """The evaluation guard's quarantine log, if one is attached."""
        return self._evaluator.quarantine

    @property
    def statistics(self) -> ExplorationStatistics:
        """Statistics accumulated so far (live view)."""
        return self._stats

    def run(
        self,
        progress: Optional[Callable[[int, ExplorationStatistics], None]] = None,
    ) -> ExplorationResult:
        """Execute the configured number of generations.

        With ``checkpoint_dir`` configured, the complete loop state is
        snapshotted every ``checkpoint_every`` generations (atomically),
        and ``resume=True`` restarts from the latest valid snapshot.  A
        ``KeyboardInterrupt`` commits a final checkpoint and returns the
        partial result instead of losing the run.
        """
        # One root span per run so every generation hangs off a single
        # tree even when the Explorer is driven directly (CLI, jobs)
        # rather than through the api.explore facade.
        with trace_span(
            "dse.run",
            generations=self._config.generations,
            population=self._config.population_size,
            workers=self._config.workers,
        ) as run_span:
            result = self._run_impl(progress)
            run_span.set_attributes(
                generations_run=result.generations_run,
                evaluations=result.statistics.evaluations,
                interrupted=result.statistics.interrupted,
            )
            return result

    def _run_impl(
        self,
        progress: Optional[Callable[[int, ExplorationStatistics], None]] = None,
    ) -> ExplorationResult:
        config = self._config
        rng = random.Random(config.seed)
        selector = Spea2Selector(config.archive_size)
        # The run's trace position, serialized into checkpoints so a
        # resumed run can rejoin the same trace.
        self._trace_ctx = capture_context()

        manager: Optional[CheckpointManager] = None
        if config.checkpoint_dir is not None:
            manager = CheckpointManager(
                config.checkpoint_dir, problem_digest(self._problem)
            )

        bus = obs_events.bus()
        archive: List[Chromosome] = []
        history: List[Tuple[int, Optional[float], int]] = []
        best_power: Optional[float] = None
        stagnation = 0
        start_generation = 0

        resumed = (
            manager.load_latest() if manager is not None and config.resume
            else None
        )
        if resumed is not None:
            snapshot, snapshot_path = resumed
            rng.setstate(snapshot.rng_state)
            population = list(snapshot.population)
            archive = list(snapshot.archive)
            history = list(snapshot.history)
            best_power = snapshot.best_power
            stagnation = snapshot.stagnation
            self._stats = snapshot.statistics
            self._cache = dict(snapshot.cache)
            self._without_drop_cache = dict(snapshot.without_drop_cache)
            start_generation = snapshot.generation + 1
            metrics().counter("dse.resumes").inc()
            restored_ctx = SpanContext.from_dict(snapshot.trace)
            if restored_ctx is not None:
                if self._trace_ctx is None:
                    # No enclosing span: adopt the checkpointed trace as
                    # this thread's root so the resumed generations
                    # continue the original trace.
                    activate(restored_ctx).__enter__()
                    self._trace_ctx = restored_ctx
                else:
                    annotate(resumed_trace_id=restored_ctx.trace_id)
            if bus.wants(RunResumed):
                bus.publish(
                    RunResumed(
                        generation=snapshot.generation,
                        path=str(snapshot_path),
                        cache_entries=len(self._cache),
                    )
                )
            _LOG.info(
                "resumed from checkpoint %s",
                kv(
                    generation=snapshot.generation,
                    path=str(snapshot_path),
                    cache=len(self._cache),
                ),
            )
        else:
            if config.resume and manager is not None:
                _LOG.warning(
                    "resume requested but no valid checkpoint in %s; "
                    "starting fresh",
                    manager.directory,
                )
            population = []
            if config.seed_heuristics:
                population.extend(self._heuristic_seeds(rng))
            while len(population) < config.population_size:
                population.append(random_chromosome(self._problem, rng))
            population = [
                self._finalize(
                    repair(
                        chromosome,
                        self._problem,
                        rng,
                        reliability_rounds=config.reliability_repair_rounds,
                    )
                )
                for chromosome in population[: config.population_size]
            ]
            self._evaluate_all(population)

        generation = max(start_generation - 1, 0)
        boundary: Optional[_Boundary] = None
        last_checkpoint: Optional[int] = None

        registry = metrics()
        generation_timer = registry.timer("dse.generation_seconds")
        generation_counter = registry.counter("dse.generations")
        generation_started = time.perf_counter()

        try:
            for generation in range(start_generation, config.generations + 1):
                with trace_span(
                    "ga.generation", generation=generation
                ):
                    pool = _unique(archive + population)
                    results = [self._cache[c.key()] for c in pool]
                    objectives = [r.objectives for r in results]
                    archive = [pool[i] for i in selector.select(objectives)]

                    feasible_in_archive = [
                        self._cache[c.key()]
                        for c in archive
                        if self._cache[c.key()].feasible
                    ]
                    generation_best = (
                        min(r.power for r in feasible_in_archive)
                        if feasible_in_archive
                        else None
                    )
                    history.append(
                        (generation, generation_best, len(feasible_in_archive))
                    )
                    if progress is not None:
                        progress(generation, self._stats)

                    improved = generation_best is not None and (
                        best_power is None or generation_best < best_power - 1e-12
                    )
                    now = time.perf_counter()
                    wall_seconds = now - generation_started
                    generation_started = now
                    generation_counter.inc()
                    generation_timer.observe(wall_seconds)
                    if bus.wants(GenerationCompleted):
                        bus.publish(
                            GenerationCompleted(
                                generation=generation,
                                archive_size=len(archive),
                                feasible_in_archive=len(feasible_in_archive),
                                best_power=generation_best,
                                hypervolume=_hypervolume_proxy(
                                    [
                                        (r.power, r.service)
                                        for r in feasible_in_archive
                                    ]
                                ),
                                evaluations=self._stats.evaluations,
                                cache_hits=self._stats.cache_hits,
                                cache_hit_rate=self._stats.cache_hit_rate,
                                repair_failures=self._stats.repair_failures,
                                wall_seconds=wall_seconds,
                            )
                        )
                    if bus.wants(ArchiveUpdated):
                        bus.publish(
                            ArchiveUpdated(
                                generation=generation,
                                size=len(archive),
                                feasible=len(feasible_in_archive),
                                improved=improved,
                            )
                        )
                    _LOG.debug(
                        "generation done %s",
                        kv(
                            generation=generation,
                            archive=len(archive),
                            feasible=len(feasible_in_archive),
                            best=generation_best,
                            wall_seconds=wall_seconds,
                        ),
                    )

                    if improved:
                        best_power = generation_best
                        stagnation = 0
                    else:
                        stagnation += 1
                    if (
                        config.stagnation_limit is not None
                        and stagnation >= config.stagnation_limit
                    ):
                        self._stats.stopped_early = True
                        self._stats.stopping_generation = generation
                        registry.counter("dse.early_stops").inc()
                        bus.publish(
                            EarlyStopped(
                                generation=generation,
                                stagnation=stagnation,
                                best_power=best_power,
                            )
                        )
                        _LOG.info(
                            "early stop %s",
                            kv(
                                generation=generation,
                                stagnation=stagnation,
                                limit=config.stagnation_limit,
                                best=best_power,
                            ),
                        )
                        break
                    if generation == config.generations:
                        break

                    archive_objectives = [
                        self._cache[c.key()].objectives for c in archive
                    ]
                    fitness = selector.fitness(archive_objectives)
                    offspring: List[Chromosome] = []
                    for _ in range(config.offspring_size):
                        parent_a = archive[selector.tournament(fitness, rng)]
                        parent_b = archive[selector.tournament(fitness, rng)]
                        if rng.random() < config.crossover_probability:
                            child = crossover(parent_a, parent_b, rng)
                        else:
                            child = parent_a
                        child = mutate(
                            child,
                            self._problem,
                            rng,
                            allocation_rate=config.mutation_allocation_rate,
                            keep_alive_rate=config.mutation_keep_alive_rate,
                            gene_rate=config.mutation_gene_rate,
                        )
                        child = repair(
                            child,
                            self._problem,
                            rng,
                            reliability_rounds=config.reliability_repair_rounds,
                        )
                        offspring.append(self._finalize(child))
                    self._evaluate_all(offspring)
                    population = offspring

                    if manager is not None:
                        boundary = _Boundary(
                            generation=generation,
                            population=population,
                            archive=archive,
                            rng_state=rng.getstate(),
                            best_power=best_power,
                            stagnation=stagnation,
                            history_len=len(history),
                            statistics=self._stats.to_dict(),
                            cache_size=len(self._cache),
                            without_drop_size=len(self._without_drop_cache),
                        )
                        if generation % config.checkpoint_every == 0:
                            self._write_checkpoint(manager, boundary, history)
                            last_checkpoint = generation
        except KeyboardInterrupt:
            self._stats.interrupted = True
            registry.counter("dse.interrupts").inc()
            checkpoint_path: Optional[str] = None
            if manager is not None and boundary is not None:
                if boundary.generation != last_checkpoint:
                    checkpoint_path = str(
                        self._write_checkpoint(manager, boundary, history)
                    )
                else:
                    checkpoint_path = str(
                        manager.path_for(boundary.generation)
                    )
            if bus.wants(RunInterrupted):
                bus.publish(
                    RunInterrupted(
                        generation=generation,
                        checkpoint_path=checkpoint_path,
                    )
                )
            _LOG.warning(
                "run interrupted %s",
                kv(generation=generation, checkpoint=checkpoint_path),
            )

        return ExplorationResult(
            pareto=self._pareto_points(archive),
            statistics=self._stats,
            history=history,
            generations_run=generation,
            best_by_drop_set=self._best_by_drop_set(),
        )

    def _write_checkpoint(
        self,
        manager: CheckpointManager,
        boundary: _Boundary,
        history: List[Tuple[int, Optional[float], int]],
    ) -> Path:
        """Commit the last consistent generation boundary as a snapshot.

        The caches are sliced to their boundary sizes (dict insertion
        order is append-only here), so a snapshot taken after an
        interrupt excludes torn mid-generation state.
        """
        snapshot = RunSnapshot(
            generation=boundary.generation,
            rng_state=boundary.rng_state,
            population=boundary.population,
            archive=boundary.archive,
            best_power=boundary.best_power,
            stagnation=boundary.stagnation,
            statistics=ExplorationStatistics.from_dict(boundary.statistics),
            history=list(history[: boundary.history_len]),
            cache=list(islice(self._cache.items(), boundary.cache_size)),
            without_drop_cache=list(
                islice(
                    self._without_drop_cache.items(),
                    boundary.without_drop_size,
                )
            ),
            trace=(
                self._trace_ctx.to_dict()
                if getattr(self, "_trace_ctx", None) is not None
                else None
            ),
        )
        return manager.save(snapshot)

    def _best_by_drop_set(self) -> Dict[Tuple[str, ...], ParetoPoint]:
        """Cheapest feasible evaluated design per dropped set."""
        best: Dict[Tuple[str, ...], ParetoPoint] = {}
        for result in self._cache.values():
            if not result.feasible or result.design is None:
                continue
            key = tuple(sorted(result.design.dropped))
            current = best.get(key)
            if current is None or result.power < current.power:
                best[key] = ParetoPoint(
                    power=result.power,
                    service=result.service,
                    design=result.design,
                )
        return best

    def _finalize(self, chromosome: Chromosome) -> Chromosome:
        """Apply global candidate constraints (e.g. dropping disabled)."""
        if self._config.disable_dropping and not all(chromosome.keep_alive):
            chromosome = chromosome.with_keep_alive(
                tuple(True for _ in chromosome.keep_alive)
            )
        return chromosome

    def _heuristic_seeds(self, rng: random.Random) -> List[Chromosome]:
        """Constructive seeds: one per easy-to-enumerate drop set."""
        droppable = [
            g.name for g in self._problem.applications.droppable_graphs
        ]
        drop_sets: List[Tuple[str, ...]] = [tuple(droppable), ()]
        for name in droppable:
            drop_sets.append(tuple(n for n in droppable if n != name))
            drop_sets.append((name,))
        seeds = []
        seen = set()
        for drop_set in drop_sets:
            key = tuple(sorted(drop_set))
            if key in seen:
                continue
            seen.add(key)
            seeds.append(
                heuristic_chromosome(self._problem, rng, dropped=drop_set)
            )
            seeds.append(
                partition_chromosome(self._problem, rng, dropped=drop_set)
            )
        return seeds

    # ------------------------------------------------------------------
    # Evaluation with caching and statistics
    # ------------------------------------------------------------------

    def _evaluate_all(self, chromosomes: List[Chromosome]) -> None:
        fresh = []
        seen = set()
        cache_hit_counter = metrics().counter("dse.cache_hits")
        for chromosome in chromosomes:
            key = chromosome.key()
            if key in self._cache:
                self._stats.cache_hits += 1
                cache_hit_counter.inc()
            elif key not in seen:
                seen.add(key)
                fresh.append((key, chromosome))
        if not fresh:
            return
        with trace_span(
            "ga.evaluate_batch",
            batch=len(fresh),
            workers=self._config.workers,
        ):
            if self._config.workers > 1:
                results = self._evaluate_parallel(fresh)
            else:
                results = [self._evaluate_one(c) for _key, c in fresh]
        for (key, chromosome), result in zip(fresh, results):
            self._cache[key] = result
            self._record(key, chromosome, result)

    def _evaluate_parallel(
        self, fresh: List[Tuple[Tuple, Chromosome]]
    ) -> List[EvaluationResult]:
        """Evaluate candidates on a thread pool, isolating each failure.

        Results are collected in submission order, so serial and parallel
        runs with the same seed produce byte-identical outcomes.  An
        exception escaping a worker (i.e. past the guard — a broken custom
        evaluator, say) poisons only its own candidate, not the batch.
        """
        results: List[EvaluationResult] = []
        # Capture the batch's trace position once; each worker re-roots
        # its spans there, so parent links stay intact across threads
        # and the span tree matches the serial run's shape.
        ctx = capture_context()
        with ThreadPoolExecutor(max_workers=self._config.workers) as pool:
            futures = [
                pool.submit(self._evaluate_one_in_context, ctx, chromosome)
                for _key, chromosome in fresh
            ]
            try:
                for future, (_key, chromosome) in zip(futures, fresh):
                    try:
                        results.append(future.result())
                    except Exception as error:  # noqa: BLE001
                        results.append(
                            self._evaluator.failure_result(
                                error, context=chromosome, stage="evaluate"
                            )
                        )
            except KeyboardInterrupt:
                # Only the main thread sees SIGINT: abandon the batch so
                # run() can commit the last consistent checkpoint.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        return results

    def _evaluate_one_in_context(
        self, ctx: Optional[SpanContext], chromosome: Chromosome
    ) -> EvaluationResult:
        """Worker-thread wrapper adopting the submitter's trace context."""
        with activate(ctx):
            return self._evaluate_one(chromosome)

    def _evaluate_one(self, chromosome: Chromosome) -> EvaluationResult:
        try:
            design = chromosome.decode(self._problem)
        except ExplorationError as error:
            # Structurally undecodable even after repair: an expected
            # dead-end of the search, hard-penalized but not quarantined.
            return EvaluationResult(
                design=None,
                feasible=False,
                violations=[f"decode: {error}"],
            )
        except Exception as error:  # noqa: BLE001 — poison genotype
            return self._evaluator.failure_result(
                error, context=chromosome, stage="decode"
            )
        return self._evaluator.evaluate(design, context=chromosome)

    def _record(
        self, key: Tuple, chromosome: Chromosome, result: EvaluationResult
    ) -> None:
        self._stats.evaluations += 1
        metrics().counter("dse.evaluations").inc()
        if result.design is None:
            self._stats.repair_failures += 1
            metrics().counter("dse.repair_failures").inc()
        if result.guard_error is not None:
            self._stats.guard_failures += 1
        if result.fallback is not None:
            self._stats.fallback_evaluations += 1
        if result.feasible:
            self._stats.feasible += 1
            if result.hardened is not None:
                self._stats.record_hardening(result.hardened.plan.kind_histogram())
        else:
            self._stats.infeasible += 1
        if (
            self._config.track_dropping_gain
            and result.feasible
            and result.design is not None
            and result.design.dropped
        ):
            self._stats.dropping_checked += 1
            if not self._counterfactual_feasible(chromosome, result):
                self._stats.dropping_gain += 1

    def _counterfactual_feasible(
        self, chromosome: Chromosome, result: EvaluationResult
    ) -> bool:
        """Whether the design stays feasible with ``T_d`` emptied.

        Cached: distinct chromosomes frequently share the all-alive
        counterfactual, so repeated drop-set checks are served from the
        main evaluation cache or a dedicated feasibility cache instead of
        re-running the analysis (and ``stats.evaluations`` stays truthful).
        """
        counter_key = chromosome.with_keep_alive(
            tuple(True for _ in chromosome.keep_alive)
        ).key()
        cached = self._cache.get(counter_key)
        if cached is not None:
            self._stats.cache_hits += 1
            metrics().counter("dse.cache_hits").inc()
            return cached.feasible
        known = self._without_drop_cache.get(counter_key)
        if known is not None:
            self._stats.cache_hits += 1
            metrics().counter("dse.cache_hits").inc()
            return known
        counterfactual = self._evaluator.evaluate(
            result.design.without_dropping(), context=chromosome
        )
        self._stats.evaluations += 1
        metrics().counter("dse.evaluations").inc()
        feasible = counterfactual.feasible
        self._without_drop_cache[counter_key] = feasible
        return feasible

    def _pareto_points(self, archive: List[Chromosome]) -> List[ParetoPoint]:
        feasible = [
            self._cache[c.key()]
            for c in archive
            if self._cache[c.key()].feasible
        ]
        if not feasible:
            return []
        objectives = [r.objectives for r in feasible]
        points = [
            ParetoPoint(
                power=feasible[i].power,
                service=feasible[i].service,
                design=feasible[i].design,
            )
            for i in pareto_filter(objectives)
        ]
        # Deduplicate identical objective vectors.
        unique: Dict[Tuple[float, float, Tuple[str, ...]], ParetoPoint] = {}
        for point in points:
            unique[(point.power, point.service, point.dropped)] = point
        return sorted(unique.values(), key=lambda p: (p.power, -p.service))


def _hypervolume_proxy(
    points: Sequence[Tuple[Optional[float], Optional[float]]],
) -> float:
    """2-D hypervolume of feasible ``(power, service)`` points.

    Reference point: ``(max power in the set + 1, service 0)`` — per
    generation, so values are only comparable as a convergence *proxy*
    (the paper's archive quality trend), not across problem instances.
    """
    cleaned = [
        (power, service)
        for power, service in points
        if power is not None and service is not None
    ]
    if not cleaned:
        return 0.0
    ref_power = max(power for power, _service in cleaned) + 1.0
    # Non-dominated staircase: power ascending, keep strictly rising
    # service (minimize power, maximize service).
    front: List[Tuple[float, float]] = []
    for power, service in sorted(set(cleaned)):
        if not front or service > front[-1][1]:
            front.append((power, service))
    volume = 0.0
    previous_service = 0.0
    for power, service in front:
        volume += (ref_power - power) * (service - previous_service)
        previous_service = service
    return volume


def _unique(chromosomes: List[Chromosome]) -> List[Chromosome]:
    seen = set()
    result = []
    for chromosome in chromosomes:
        key = chromosome.key()
        if key not in seen:
            seen.add(key)
            result.append(chromosome)
    return result
