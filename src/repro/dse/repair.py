"""Randomized repair heuristics (paper §4).

"Infeasibility may come from an abnormal mapping or hardening decision.
In such a case, we repair the candidate according to a randomized
heuristic that is designed depending on the violation."

Repairs applied, in order:

1. **allocation** — at least one processor must be on;
2. **invalid mapping** — tasks, replicas and voters sitting on
   unallocated processors are reassigned to random allocated ones;
3. **replica shape** — passive replicas without an active partner get
   one; replica groups larger than the allocated-processor count are
   shrunk; co-located copies are spread over distinct processors when
   possible, otherwise replication collapses to re-execution;
4. **reliability** — while a non-droppable application misses its
   constraint, a random task of that application gets a random hardening
   escalation (deeper re-execution, active or passive replication).
"""

import random
from dataclasses import replace
from typing import Dict, List, Optional

from repro.core.problem import Problem
from repro.dse.chromosome import Chromosome, TaskGene
from repro.errors import ReproError
from repro.hardening.transform import harden
from repro.reliability.constraints import check_reliability

#: Cap on reliability-escalation rounds per repair call.
MAX_RELIABILITY_ROUNDS = 32


def repair(
    chromosome: Chromosome,
    problem: Problem,
    rng: random.Random,
    reliability_rounds: int = MAX_RELIABILITY_ROUNDS,
) -> Chromosome:
    """Return a repaired copy of a chromosome (best effort).

    The result is guaranteed to decode into a structurally valid design
    point (valid mapping, well-formed hardening specs); reliability repair
    is best-effort within ``reliability_rounds`` escalations — candidates
    still violating afterwards are left to the fitness penalty.
    """
    chromosome = _repair_allocation(chromosome, rng)
    allocated = list(chromosome.allocated_processors(problem))
    chromosome = _repair_mappings(chromosome, allocated, rng)
    chromosome = _repair_replica_shapes(chromosome, allocated, rng)
    chromosome = _repair_reliability(
        chromosome, problem, allocated, rng, reliability_rounds
    )
    return chromosome


def _repair_allocation(chromosome: Chromosome, rng: random.Random) -> Chromosome:
    if any(chromosome.allocation):
        return chromosome
    forced = rng.randrange(len(chromosome.allocation))
    return chromosome.with_allocation(
        tuple(index == forced for index in range(len(chromosome.allocation)))
    )


def _repair_mappings(
    chromosome: Chromosome, allocated: List[str], rng: random.Random
) -> Chromosome:
    """Reassign every entity mapped on an unallocated processor."""
    allowed = set(allocated)

    def fix(processor: Optional[str]) -> str:
        if processor in allowed:
            return processor
        return rng.choice(allocated)

    genes: Dict[str, TaskGene] = {}
    changed = False
    for name, gene in chromosome.genes.items():
        new_gene = gene
        if gene.processor not in allowed:
            new_gene = replace(new_gene, processor=fix(gene.processor))
        if any(p not in allowed for p in gene.active_replicas):
            new_gene = replace(
                new_gene,
                active_replicas=tuple(fix(p) for p in gene.active_replicas),
            )
        if any(p not in allowed for p in gene.passive_replicas):
            new_gene = replace(
                new_gene,
                passive_replicas=tuple(fix(p) for p in gene.passive_replicas),
            )
        if gene.is_replicated and (
            gene.voter_processor is None or gene.voter_processor not in allowed
        ):
            new_gene = replace(new_gene, voter_processor=fix(gene.voter_processor))
        if new_gene is not gene:
            changed = True
        genes[name] = new_gene
    if not changed:
        return chromosome
    return Chromosome(
        allocation=chromosome.allocation,
        keep_alive=chromosome.keep_alive,
        genes=genes,
    )


def _repair_replica_shapes(
    chromosome: Chromosome, allocated: List[str], rng: random.Random
) -> Chromosome:
    """Normalise replica groups so that a hardening spec exists and copies
    occupy pairwise distinct processors."""
    genes: Dict[str, TaskGene] = {}
    changed = False
    for name, gene in chromosome.genes.items():
        new_gene = gene
        if new_gene.is_replicated:
            # Passive replication needs >= 2 active copies.
            if new_gene.passive_replicas and not new_gene.active_replicas:
                promoted = new_gene.passive_replicas[0]
                new_gene = replace(
                    new_gene,
                    active_replicas=(promoted,),
                    passive_replicas=new_gene.passive_replicas[1:],
                )
                if not new_gene.passive_replicas:
                    pass  # became plain active duplication — still valid
            total = 1 + len(new_gene.active_replicas) + len(new_gene.passive_replicas)
            if total > len(allocated):
                # Not enough processors for disjoint copies: collapse to
                # re-execution, the resource-free hardening.
                new_gene = TaskGene(
                    processor=new_gene.processor,
                    reexecutions=max(1, new_gene.reexecutions),
                )
            else:
                new_gene = _spread_copies(new_gene, allocated, rng)
            if new_gene.is_replicated and new_gene.voter_processor is None:
                new_gene = replace(new_gene, voter_processor=rng.choice(allocated))
            if new_gene.is_replicated and new_gene.reexecutions:
                new_gene = replace(new_gene, reexecutions=0)
        if new_gene != gene:
            changed = True
        genes[name] = new_gene
    if not changed:
        return chromosome
    return Chromosome(
        allocation=chromosome.allocation,
        keep_alive=chromosome.keep_alive,
        genes=genes,
    )


def _spread_copies(
    gene: TaskGene, allocated: List[str], rng: random.Random
) -> TaskGene:
    """Place all copies of a replicated task on distinct processors."""
    used = [gene.processor]
    actives: List[str] = []
    passives: List[str] = []
    for source, target in (
        (gene.active_replicas, actives),
        (gene.passive_replicas, passives),
    ):
        for processor in source:
            if processor not in used:
                target.append(processor)
                used.append(processor)
            else:
                candidates = [p for p in allocated if p not in used]
                chosen = rng.choice(candidates)
                target.append(chosen)
                used.append(chosen)
    if tuple(actives) == gene.active_replicas and tuple(passives) == gene.passive_replicas:
        return gene
    return replace(
        gene,
        active_replicas=tuple(actives),
        passive_replicas=tuple(passives),
    )


def _repair_reliability(
    chromosome: Chromosome,
    problem: Problem,
    allocated: List[str],
    rng: random.Random,
    rounds: int,
) -> Chromosome:
    """Escalate random hardening until the reliability constraints hold."""
    for _round in range(rounds):
        try:
            design = chromosome.decode(problem)
            hardened = harden(problem.applications, design.plan)
            violations = check_reliability(
                hardened, design.mapping, problem.architecture
            )
        except ReproError:
            return chromosome  # structurally broken beyond this repair
        if not violations:
            return chromosome
        violation = rng.choice(violations)
        graph = problem.applications.graph(violation.graph)
        task = rng.choice(graph.tasks)
        gene = chromosome.genes[task.name]
        chromosome = chromosome.with_gene(
            task.name, _escalate(gene, allocated, rng)
        )
        chromosome = _repair_replica_shapes(chromosome, allocated, rng)
    return chromosome


def _escalate(
    gene: TaskGene, allocated: List[str], rng: random.Random
) -> TaskGene:
    """One random hardening escalation (re-execution / active / passive)."""
    choices = ["reexecution"]
    if len(allocated) >= 3:
        choices.extend(["active", "passive"])
    elif len(allocated) >= 2:
        choices.append("active")
    choice = rng.choice(choices)

    if choice == "reexecution" or not gene.is_replicated and choice == "reexecution":
        if gene.is_replicated:
            # Deepen the group instead: one more active copy if possible.
            if 1 + len(gene.active_replicas) + len(gene.passive_replicas) < len(allocated):
                return replace(
                    gene,
                    active_replicas=gene.active_replicas + (rng.choice(allocated),),
                )
            return gene
        return replace(gene, reexecutions=min(8, gene.reexecutions + 1))

    if choice == "active":
        if gene.is_replicated:
            if 1 + len(gene.active_replicas) + len(gene.passive_replicas) < len(allocated):
                return replace(
                    gene,
                    reexecutions=0,
                    active_replicas=gene.active_replicas + (rng.choice(allocated),),
                )
            return gene
        return TaskGene(
            processor=gene.processor,
            active_replicas=(rng.choice(allocated), rng.choice(allocated)),
            voter_processor=rng.choice(allocated),
        )

    # passive replication: 2 active copies + 1 on-demand copy
    return TaskGene(
        processor=gene.processor,
        active_replicas=(rng.choice(allocated),),
        passive_replicas=(rng.choice(allocated),),
        voter_processor=rng.choice(allocated),
    )
