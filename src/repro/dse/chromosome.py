"""The GA genotype and its translation to a phenotype (paper Figure 4).

A chromosome has three sections:

1. **allocation** — one bit per processor of the architecture;
2. **keep-alive** — one bit per *droppable* application; a set bit means
   the application is never dropped, a cleared bit puts it in ``T_d``;
3. **task genes** — per primary task: the processor of the task itself,
   the degree of re-execution, the processors of active and passive
   replicas, and the processor of the voter.

Decoding a chromosome produces a :class:`~repro.core.problem.DesignPoint`:
the hardening plan follows from the gene shape (replica lists present →
replication; otherwise a positive re-execution degree → re-execution),
the mapping covers the derived replica/voter tasks using the hardening
transform's naming scheme.
"""

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.problem import DesignPoint, Problem
from repro.errors import ExplorationError
from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.hardening.transform import NAME_SEPARATOR
from repro.model.mapping import Mapping


@dataclass(frozen=True)
class TaskGene:
    """Mapping and hardening decisions for one primary task."""

    processor: str
    reexecutions: int = 0
    #: Processors of the active replicas beyond the primary copy.
    active_replicas: Tuple[str, ...] = ()
    #: Processors of the passive (on-demand) replicas.
    passive_replicas: Tuple[str, ...] = ()
    voter_processor: Optional[str] = None
    #: Checkpoint segments (>= 2 turns re-execution into checkpointing).
    checkpoints: int = 0

    @property
    def is_replicated(self) -> bool:
        """Whether the gene encodes replication (which overrides re-execution)."""
        return bool(self.active_replicas) or bool(self.passive_replicas)

    def spec(self) -> HardeningSpec:
        """The hardening spec this gene encodes.

        Raises :class:`~repro.errors.ExplorationError` for shapes no spec
        can express (e.g. passive replicas without an active partner); the
        repair heuristics normalise genes before decoding.
        """
        if self.is_replicated:
            actives = 1 + len(self.active_replicas)
            passives = len(self.passive_replicas)
            total = actives + passives
            if passives:
                if actives < 2:
                    raise ExplorationError(
                        "passive replication requires at least two active copies"
                    )
                return HardeningSpec.passive(total, active=actives)
            return HardeningSpec.active(total)
        if self.reexecutions > 0:
            if self.checkpoints >= 2:
                return HardeningSpec.checkpointing(
                    self.reexecutions, segments=self.checkpoints
                )
            return HardeningSpec.reexecution(self.reexecutions)
        return HardeningSpec.none()

    def to_dict(self) -> dict:
        """Serialize to a JSON-friendly dictionary."""
        return {
            "processor": self.processor,
            "reexecutions": self.reexecutions,
            "active_replicas": list(self.active_replicas),
            "passive_replicas": list(self.passive_replicas),
            "voter_processor": self.voter_processor,
            "checkpoints": self.checkpoints,
        }

    @staticmethod
    def from_dict(data: dict) -> "TaskGene":
        """Deserialize from :meth:`to_dict` output."""
        return TaskGene(
            processor=data["processor"],
            reexecutions=data.get("reexecutions", 0),
            active_replicas=tuple(data.get("active_replicas", ())),
            passive_replicas=tuple(data.get("passive_replicas", ())),
            voter_processor=data.get("voter_processor"),
            checkpoints=data.get("checkpoints", 0),
        )


@dataclass(frozen=True)
class Chromosome:
    """A complete genotype (all three sections of Figure 4)."""

    #: Allocation bit per processor, in architecture order.
    allocation: Tuple[bool, ...]
    #: Keep-alive bit per droppable application, in application order.
    keep_alive: Tuple[bool, ...]
    #: One gene per primary task, keyed by task name.
    genes: Dict[str, TaskGene] = field(default_factory=dict)

    def key(self) -> Tuple:
        """A hashable identity used for evaluation caching."""
        return (
            self.allocation,
            self.keep_alive,
            tuple(sorted(self.genes.items(), key=lambda item: item[0])),
        )

    def allocated_processors(self, problem: Problem) -> Tuple[str, ...]:
        """Names of the processors switched on by the allocation section."""
        names = problem.architecture.processor_names
        return tuple(
            name for name, bit in zip(names, self.allocation) if bit
        )

    def dropped_graphs(self, problem: Problem) -> Tuple[str, ...]:
        """Names of the droppable applications placed in ``T_d``."""
        droppable = [g.name for g in problem.applications.droppable_graphs]
        return tuple(
            name for name, bit in zip(droppable, self.keep_alive) if not bit
        )

    def decode(self, problem: Problem) -> DesignPoint:
        """Translate the genotype into a phenotype (Figure 4, right side)."""
        names = problem.architecture.processor_names
        if len(self.allocation) != len(names):
            raise ExplorationError(
                f"allocation section has {len(self.allocation)} bits for "
                f"{len(names)} processors"
            )
        droppable = problem.applications.droppable_graphs
        if len(self.keep_alive) != len(droppable):
            raise ExplorationError(
                f"keep-alive section has {len(self.keep_alive)} bits for "
                f"{len(droppable)} droppable applications"
            )

        plan_specs: Dict[str, HardeningSpec] = {}
        assignment: Dict[str, str] = {}
        for task in problem.applications.all_tasks:
            gene = self.genes.get(task.name)
            if gene is None:
                raise ExplorationError(f"no gene for task {task.name!r}")
            spec = gene.spec()
            plan_specs[task.name] = spec
            assignment[task.name] = gene.processor
            if spec.is_replicated:
                for offset, processor in enumerate(gene.active_replicas, start=1):
                    assignment[f"{task.name}{NAME_SEPARATOR}r{offset}"] = processor
                for offset, processor in enumerate(gene.passive_replicas):
                    assignment[f"{task.name}{NAME_SEPARATOR}p{offset}"] = processor
                voter = gene.voter_processor or gene.processor
                assignment[f"{task.name}{NAME_SEPARATOR}vote"] = voter

        allocation = frozenset(self.allocated_processors(problem))
        if not allocation:
            raise ExplorationError("chromosome allocates no processor")
        return DesignPoint(
            allocation=allocation,
            dropped=frozenset(self.dropped_graphs(problem)),
            plan=HardeningPlan(plan_specs),
            mapping=Mapping(assignment),
        )

    # ------------------------------------------------------------------
    # Serialization (checkpoint/resume and quarantine records)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize to a JSON-friendly dictionary.

        Gene insertion order is preserved — it determines RNG consumption
        in the variation operators, so round-tripping must not reorder.
        Genes are therefore encoded as a *list* of ``[name, gene]`` pairs:
        a JSON object would survive ``json.dumps(sort_keys=True)`` with
        its keys silently re-sorted.
        """
        return {
            "allocation": list(self.allocation),
            "keep_alive": list(self.keep_alive),
            "genes": [
                [name, gene.to_dict()] for name, gene in self.genes.items()
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "Chromosome":
        """Deserialize from :meth:`to_dict` output."""
        return Chromosome(
            allocation=tuple(bool(b) for b in data["allocation"]),
            keep_alive=tuple(bool(b) for b in data["keep_alive"]),
            genes={
                name: TaskGene.from_dict(gene)
                for name, gene in data["genes"]
            },
        )

    # ------------------------------------------------------------------
    # Functional updates (used by operators and repair)
    # ------------------------------------------------------------------

    def with_gene(self, task_name: str, gene: TaskGene) -> "Chromosome":
        """Copy with one task gene replaced."""
        genes = dict(self.genes)
        genes[task_name] = gene
        return replace(self, genes=genes)

    def with_allocation(self, allocation: Tuple[bool, ...]) -> "Chromosome":
        """Copy with a new allocation section."""
        return replace(self, allocation=allocation)

    def with_keep_alive(self, keep_alive: Tuple[bool, ...]) -> "Chromosome":
        """Copy with a new keep-alive section."""
        return replace(self, keep_alive=keep_alive)


def random_chromosome(
    problem: Problem,
    rng: random.Random,
    allocation_bias: float = 0.7,
    keep_alive_bias: float = 0.5,
    hardening_probability: float = 0.3,
) -> Chromosome:
    """Sample a random (not yet repaired) chromosome.

    ``allocation_bias`` is the probability of switching each processor on;
    ``hardening_probability`` the chance of giving a critical task some
    initial hardening (the repair heuristic escalates as needed anyway).
    """
    processor_names = problem.architecture.processor_names
    allocation = tuple(
        rng.random() < allocation_bias for _ in processor_names
    )
    if not any(allocation):
        forced = rng.randrange(len(processor_names))
        allocation = tuple(
            index == forced for index in range(len(processor_names))
        )
    allocated = [
        name for name, bit in zip(processor_names, allocation) if bit
    ]
    keep_alive = tuple(
        rng.random() < keep_alive_bias
        for _ in problem.applications.droppable_graphs
    )

    genes: Dict[str, TaskGene] = {}
    for graph in problem.applications.graphs:
        for task in graph.tasks:
            gene = TaskGene(processor=rng.choice(allocated))
            if not graph.droppable and rng.random() < hardening_probability:
                gene = _random_hardening(gene, allocated, rng)
            genes[task.name] = gene
    return Chromosome(allocation=allocation, keep_alive=keep_alive, genes=genes)


def heuristic_chromosome(
    problem: Problem,
    rng: random.Random,
    dropped: Tuple[str, ...] = (),
    reexecutions: int = 1,
) -> Chromosome:
    """A constructive seed: all processors on, round-robin mapping,
    uniform re-execution on critical tasks, and a chosen drop set.

    Small-budget explorations converge much faster when a few of these
    (one per candidate drop set) are mixed into the initial population;
    the GA still has to discover allocation shrinking, replication and
    better placements on its own.
    """
    processor_names = problem.architecture.processor_names
    allocation = tuple(True for _ in processor_names)
    dropped_set = set(dropped)
    keep_alive = tuple(
        graph.name not in dropped_set
        for graph in problem.applications.droppable_graphs
    )
    genes: Dict[str, TaskGene] = {}
    index = rng.randrange(len(processor_names))
    for graph in problem.applications.graphs:
        for task in graph.tasks:
            processor = processor_names[index % len(processor_names)]
            index += 1
            if graph.droppable or reexecutions == 0:
                genes[task.name] = TaskGene(processor=processor)
            else:
                genes[task.name] = TaskGene(
                    processor=processor, reexecutions=reexecutions
                )
    return Chromosome(allocation=allocation, keep_alive=keep_alive, genes=genes)


def partition_chromosome(
    problem: Problem,
    rng: random.Random,
    dropped: Tuple[str, ...] = (),
    reexecutions: int = 1,
) -> Chromosome:
    """A locality-first seed: whole graphs packed onto single processors.

    Graphs are placed greedily (heaviest utilization first) onto the
    least-loaded processor, which eliminates intra-graph communication and
    cross-graph interference — the natural constructive heuristic for
    chain-shaped workloads.
    """
    processor_names = list(problem.architecture.processor_names)
    load = {name: 0.0 for name in processor_names}
    placement: Dict[str, str] = {}
    graphs = sorted(
        problem.applications.graphs,
        key=lambda g: g.utilization(),
        reverse=True,
    )
    for graph in graphs:
        target = min(processor_names, key=lambda name: load[name])
        placement[graph.name] = target
        load[target] += graph.utilization()

    dropped_set = set(dropped)
    keep_alive = tuple(
        graph.name not in dropped_set
        for graph in problem.applications.droppable_graphs
    )
    genes: Dict[str, TaskGene] = {}
    for graph in problem.applications.graphs:
        processor = placement[graph.name]
        for task in graph.tasks:
            if graph.droppable or reexecutions == 0:
                genes[task.name] = TaskGene(processor=processor)
            else:
                genes[task.name] = TaskGene(
                    processor=processor, reexecutions=reexecutions
                )
    return Chromosome(
        allocation=tuple(True for _ in processor_names),
        keep_alive=keep_alive,
        genes=genes,
    )


def _random_hardening(
    gene: TaskGene, allocated: List[str], rng: random.Random
) -> TaskGene:
    """Give a gene one random initial hardening decision."""
    choice = rng.randrange(3)
    if choice == 0 or len(allocated) < 2:
        return replace(gene, reexecutions=rng.randint(1, 2))
    others = [p for p in allocated if len(allocated) == 1 or True]
    if choice == 1 and len(allocated) >= 3:
        replicas = tuple(rng.choice(others) for _ in range(2))
        return replace(
            gene,
            active_replicas=replicas,
            voter_processor=rng.choice(allocated),
        )
    return replace(
        gene,
        active_replicas=(rng.choice(others),),
        passive_replicas=(rng.choice(others),),
        voter_processor=rng.choice(allocated),
    )
