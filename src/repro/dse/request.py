"""The one typed description of an exploration run.

Every entry point — CLI flags, HTTP job payloads, the :mod:`repro.api`
facade, experiments — folds its inputs into an :class:`ExploreRequest`:
a system reference (bundle, suite name, path, or inline payload), an
:class:`~repro.dse.ga.ExplorerConfig` built through
``ExplorerConfig.from_options``, an :class:`IslandTopology`, and the
schedulability backend driving the evaluator.  Because the request is a
plain frozen value, "do these two invocations run the same computation?"
reduces to comparing two dataclasses (or their canonical JSON forms, see
:mod:`repro.serve.encoding`).
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.factory import SCHED_BACKENDS
from repro.dse.ga import ExplorerConfig
from repro.errors import ExplorationError

__all__ = ["TOPOLOGY_KINDS", "IslandTopology", "ExploreRequest"]

#: Migration graph shapes: a directed ring (each island receives from its
#: predecessor), all-to-all, or fully independent islands.
TOPOLOGY_KINDS = ("ring", "all", "none")


@dataclass(frozen=True)
class IslandTopology:
    """How the population is sharded and how migrants flow.

    ``islands == 1`` degenerates to the plain single-process Explorer.
    ``migration_every`` is the barrier period in generations: at every
    multiple of it (strictly inside the run), each island's
    ``migrants`` best archive members — by SPEA2 fitness, ties broken by
    archive position — are injected into the populations of the islands
    it feeds per ``kind``.
    """

    islands: int = 1
    migration_every: int = 10
    migrants: int = 2
    kind: str = "ring"

    def __post_init__(self):
        if self.islands < 1:
            raise ExplorationError("islands must be >= 1")
        if self.migration_every < 1:
            raise ExplorationError("migration_every must be >= 1")
        if self.migrants < 0:
            raise ExplorationError("migrants must be >= 0")
        if self.kind not in TOPOLOGY_KINDS:
            raise ExplorationError(
                f"unknown topology {self.kind!r}; "
                f"available: {', '.join(TOPOLOGY_KINDS)}"
            )

    @property
    def migrates(self) -> bool:
        """Whether any migration can ever happen under this topology."""
        return self.islands > 1 and self.kind != "none" and self.migrants > 0

    def normalized(self) -> "IslandTopology":
        """Canonical form: all non-migrating spellings coalesce.

        A single island with a ring, or four islands with ``migrants=0``,
        run the exact same computation as the ``none`` topology — the
        canonical form maps them all to one value so the serve dedup
        layer shares their results.
        """
        if not self.migrates:
            return IslandTopology(
                islands=self.islands, migration_every=1, migrants=0,
                kind="none",
            )
        return self

    def sources(self, island: int) -> Tuple[int, ...]:
        """Islands donating migrants *into* ``island``."""
        if not self.migrates:
            return ()
        if self.kind == "ring":
            return ((island - 1) % self.islands,)
        return tuple(j for j in range(self.islands) if j != island)


@dataclass(frozen=True)
class ExploreRequest:
    """A complete, entry-point-independent exploration request."""

    system: Any  #: SystemBundle, suite name, path, or inline payload dict
    config: ExplorerConfig
    topology: IslandTopology = field(default_factory=IslandTopology)
    backend: Optional[str] = None  #: sched backend (None == "fast")

    def __post_init__(self):
        if self.backend is not None and self.backend not in SCHED_BACKENDS:
            raise ExplorationError(
                f"unknown sched backend {self.backend!r}; "
                f"available: {', '.join(SCHED_BACKENDS)}"
            )

    @classmethod
    def from_options(
        cls,
        system: Any,
        *,
        backend: Optional[str] = None,
        islands: int = 1,
        migration_every: int = 10,
        migrants: int = 2,
        topology: str = "ring",
        **options: Any,
    ) -> "ExploreRequest":
        """Build a request the way every entry point does.

        ``options`` are forwarded verbatim to
        :meth:`ExplorerConfig.from_options` — the single config
        construction path — so CLI flags, HTTP payload fields and
        ``api.explore`` keyword arguments land on identical configs.
        The topology is stored :meth:`~IslandTopology.normalized`, so
        every non-migrating spelling builds the same request object.
        """
        return cls(
            system=system,
            config=ExplorerConfig.from_options(**options),
            topology=IslandTopology(
                islands=islands,
                migration_every=migration_every,
                migrants=migrants,
                kind=topology,
            ).normalized(),
            backend=backend,
        )

    def canonical_options(self) -> Dict[str, Any]:
        """The request's semantics minus the system, in canonical form.

        Equivalent spellings (``backend=None`` vs ``"fast"``, one island
        with any migration settings vs an explicit ``none`` topology)
        produce equal dicts; the serve layer composes this with the
        inlined system payload to form the dedup digest.  Keys follow
        the ``/v1/explore`` wire schema (``population`` carries the
        population size; the offspring/archive sizes ride as explicit
        overrides), so the dict doubles as the HTTP request body of the
        equivalent submission.
        """
        cfg = self.config
        topo = self.topology.normalized()
        return {
            "population": cfg.population_size,
            "offspring_size": cfg.offspring_size,
            "archive_size": cfg.archive_size,
            "generations": cfg.generations,
            "seed": cfg.seed,
            "workers": cfg.workers,
            "checkpoint_every": cfg.checkpoint_every,
            "eval_retries": cfg.eval_retries,
            "eval_budget": cfg.eval_soft_budget_seconds,
            "islands": topo.islands,
            "migration_every": topo.migration_every,
            "migrants": topo.migrants,
            "topology": topo.kind,
            "backend": self.backend or "fast",
        }
