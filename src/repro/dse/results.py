"""Exploration results and the statistics the paper's §5.2 reports."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.problem import DesignPoint
from repro.hardening.spec import HardeningKind


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated feasible design."""

    power: float
    service: float
    design: DesignPoint

    @property
    def dropped(self) -> Tuple[str, ...]:
        """The dropped application set of this point, sorted."""
        return tuple(sorted(self.design.dropped))


@dataclass
class ExplorationStatistics:
    """Counters collected over every candidate the DSE evaluated.

    These feed the paper's §5.2 analysis: the share of solutions that are
    feasible *only* because task dropping is enabled, and the mix of
    hardening techniques in feasible solutions.
    """

    evaluations: int = 0
    cache_hits: int = 0
    feasible: int = 0
    infeasible: int = 0
    #: Candidates that failed to decode into a design point even after
    #: repair (hard-penalized, see ``Explorer._evaluate_one``).
    repair_failures: int = 0
    #: Evaluations whose exception the guard absorbed (infeasible result
    #: with the error recorded as a violation).
    guard_failures: int = 0
    #: Evaluations served by the degraded fallback backend after the
    #: primary backend raised or exceeded its budget.
    fallback_evaluations: int = 0
    #: ``True`` when the run was cut short by the stagnation limit.
    stopped_early: bool = False
    #: Generation at which the stagnation early-stop fired (``None`` for
    #: runs that exhausted their full generation budget).
    stopping_generation: Optional[int] = None
    #: ``True`` when SIGINT/KeyboardInterrupt cut the run short (the
    #: returned result covers the completed generations only).
    interrupted: bool = False
    #: Candidates feasible with their drop set but infeasible with
    #: ``T_d`` emptied (the §5.2 "saved by dropping" numerator).
    dropping_gain: int = 0
    #: Candidates for which the without-dropping counterfactual was run.
    dropping_checked: int = 0
    #: Hardening techniques applied across feasible candidates.
    hardening_histogram: Dict[HardeningKind, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Share of evaluation requests served from the identity cache."""
        requests = self.cache_hits + self.evaluations
        if requests == 0:
            return 0.0
        return self.cache_hits / requests

    @property
    def dropping_gain_ratio(self) -> float:
        """Share of evaluated solutions feasible only thanks to dropping.

        This is the paper's §5.2 metric taken over *all* explored
        solutions; it grows as the exploration converges ("this ratio
        increases as the design space exploration converges to optimum"),
        so short runs report smaller values than the paper's 5,000
        generations.
        """
        if self.evaluations == 0:
            return 0.0
        return self.dropping_gain / self.evaluations

    @property
    def dropping_gain_among_feasible(self) -> float:
        """Share of *feasible* solutions that need dropping to be feasible.

        Budget-independent variant of :attr:`dropping_gain_ratio`: at
        convergence (almost everything explored is feasible) the two
        coincide, which is the regime of the paper's numbers.
        """
        if self.feasible == 0:
            return 0.0
        return self.dropping_gain / self.feasible

    @property
    def reexecution_share(self) -> float:
        """Fraction of applied hardening techniques that are re-executions."""
        total = sum(self.hardening_histogram.values())
        if total == 0:
            return 0.0
        return self.hardening_histogram.get(HardeningKind.REEXECUTION, 0) / total

    def record_hardening(self, histogram: Dict[HardeningKind, int]) -> None:
        """Accumulate one candidate's hardening histogram."""
        for kind, count in histogram.items():
            self.hardening_histogram[kind] = (
                self.hardening_histogram.get(kind, 0) + count
            )

    def to_dict(self) -> dict:
        """Serialize to a JSON-friendly dictionary (checkpoint bundles)."""
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "feasible": self.feasible,
            "infeasible": self.infeasible,
            "repair_failures": self.repair_failures,
            "guard_failures": self.guard_failures,
            "fallback_evaluations": self.fallback_evaluations,
            "stopped_early": self.stopped_early,
            "stopping_generation": self.stopping_generation,
            "interrupted": self.interrupted,
            "dropping_gain": self.dropping_gain,
            "dropping_checked": self.dropping_checked,
            "hardening_histogram": {
                kind.value: count
                for kind, count in sorted(
                    self.hardening_histogram.items(), key=lambda kv: kv[0].value
                )
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "ExplorationStatistics":
        """Deserialize from :meth:`to_dict` output."""
        return ExplorationStatistics(
            evaluations=data.get("evaluations", 0),
            cache_hits=data.get("cache_hits", 0),
            feasible=data.get("feasible", 0),
            infeasible=data.get("infeasible", 0),
            repair_failures=data.get("repair_failures", 0),
            guard_failures=data.get("guard_failures", 0),
            fallback_evaluations=data.get("fallback_evaluations", 0),
            stopped_early=data.get("stopped_early", False),
            stopping_generation=data.get("stopping_generation"),
            interrupted=data.get("interrupted", False),
            dropping_gain=data.get("dropping_gain", 0),
            dropping_checked=data.get("dropping_checked", 0),
            hardening_histogram={
                HardeningKind(kind): count
                for kind, count in data.get("hardening_histogram", {}).items()
            },
        )


@dataclass
class ExplorationResult:
    """Outcome of one DSE run."""

    pareto: List[ParetoPoint]
    statistics: ExplorationStatistics
    #: Per generation: (generation, best feasible power, feasible count in
    #: the archive); best power is ``None`` until a feasible point exists.
    history: List[Tuple[int, Optional[float], int]]
    generations_run: int
    #: Best-power feasible design per dropped set, over *all* evaluated
    #: candidates (not just archive survivors).
    best_by_drop_set: Dict[Tuple[str, ...], ParetoPoint] = field(
        default_factory=dict
    )

    @property
    def best_power(self) -> Optional[ParetoPoint]:
        """The Pareto point with minimum power, if any."""
        if not self.pareto:
            return None
        return min(self.pareto, key=lambda p: p.power)

    @property
    def best_service(self) -> Optional[ParetoPoint]:
        """The Pareto point with maximum service, if any."""
        if not self.pareto:
            return None
        return max(self.pareto, key=lambda p: p.service)

    def front_as_rows(self) -> List[Tuple[float, float, Tuple[str, ...]]]:
        """``(power, service, dropped set)`` rows sorted by power."""
        return sorted(
            (p.power, p.service, p.dropped) for p in self.pareto
        )

    def drop_set_front(self) -> List[ParetoPoint]:
        """Pareto front over the per-drop-set best designs.

        The archive-based :attr:`pareto` can lose intermediate drop sets
        to truncation; this variant considers the cheapest feasible design
        *ever evaluated* for each drop set (the granularity of the paper's
        Figure 5) and filters the non-dominated ones.

        """
        points = list(self.best_by_drop_set.values())
        front = []
        for point in points:
            dominated = any(
                (other.power <= point.power and other.service >= point.service)
                and (other.power < point.power or other.service > point.service)
                for other in points
            )
            if not dominated:
                front.append(point)
        return sorted(front, key=lambda p: (p.power, -p.service))
