"""Genetic operators: uniform crossover and per-gene mutation (paper §4)."""

import random
from dataclasses import replace
from typing import List

from repro.core.problem import Problem
from repro.dse.chromosome import Chromosome, TaskGene


def crossover(
    parent_a: Chromosome,
    parent_b: Chromosome,
    rng: random.Random,
) -> Chromosome:
    """Uniform crossover, section-wise.

    Every allocation bit, keep-alive bit and task gene is inherited from a
    uniformly chosen parent.  Task genes are inherited whole (mapping and
    hardening of one task travel together — they are tightly coupled in
    the phenotype, cf. Figure 4).
    """
    allocation = tuple(
        a if rng.random() < 0.5 else b
        for a, b in zip(parent_a.allocation, parent_b.allocation)
    )
    keep_alive = tuple(
        a if rng.random() < 0.5 else b
        for a, b in zip(parent_a.keep_alive, parent_b.keep_alive)
    )
    genes = {
        name: (
            parent_a.genes[name] if rng.random() < 0.5 else parent_b.genes[name]
        )
        for name in parent_a.genes
    }
    return Chromosome(allocation=allocation, keep_alive=keep_alive, genes=genes)


def mutate(
    chromosome: Chromosome,
    problem: Problem,
    rng: random.Random,
    allocation_rate: float = 0.05,
    keep_alive_rate: float = 0.1,
    gene_rate: float = 0.15,
) -> Chromosome:
    """Mutate each section with its own per-gene probability.

    Task-gene mutations pick one of: remap the task, change the
    re-execution degree, add/remove a replica, move a replica, or move
    the voter.  Mutations may produce invalid shapes (e.g. a replica on
    an unallocated processor); :func:`repro.dse.repair.repair` is expected
    to run afterwards.
    """
    processor_names = problem.architecture.processor_names

    allocation = tuple(
        (not bit) if rng.random() < allocation_rate else bit
        for bit in chromosome.allocation
    )
    if not any(allocation):
        forced = rng.randrange(len(allocation))
        allocation = tuple(
            index == forced for index in range(len(allocation))
        )
    keep_alive = tuple(
        (not bit) if rng.random() < keep_alive_rate else bit
        for bit in chromosome.keep_alive
    )

    allocated = [
        name for name, bit in zip(processor_names, allocation) if bit
    ]
    genes = dict(chromosome.genes)
    for name, gene in genes.items():
        if rng.random() < gene_rate:
            genes[name] = _mutate_gene(gene, allocated, rng)
    return Chromosome(allocation=allocation, keep_alive=keep_alive, genes=genes)


def _mutate_gene(
    gene: TaskGene, allocated: List[str], rng: random.Random
) -> TaskGene:
    """Apply one random structural or mapping mutation to a task gene."""
    moves = [
        "remap",
        "reexec",
        "checkpoint",
        "add_replica",
        "drop_replica",
        "move_replica",
        "voter",
    ]
    move = rng.choice(moves)

    if move == "remap":
        return replace(gene, processor=rng.choice(allocated))

    if move == "reexec":
        if gene.is_replicated:
            # Collapse replication into re-execution.
            return TaskGene(
                processor=gene.processor, reexecutions=rng.randint(1, 3)
            )
        delta = rng.choice((-1, 1))
        new_k = max(0, gene.reexecutions + delta)
        checkpoints = gene.checkpoints if new_k > 0 else 0
        return replace(gene, reexecutions=new_k, checkpoints=checkpoints)

    if move == "checkpoint":
        if gene.is_replicated:
            return gene
        if gene.checkpoints >= 2:
            # Toggle back to plain re-execution.
            return replace(gene, checkpoints=0)
        return replace(
            gene,
            reexecutions=max(1, gene.reexecutions),
            checkpoints=rng.randint(2, 4),
        )

    if move == "add_replica":
        if rng.random() < 0.5 or not gene.active_replicas:
            actives = gene.active_replicas + (rng.choice(allocated),)
            return replace(
                gene,
                reexecutions=0,
                active_replicas=actives,
                voter_processor=gene.voter_processor or rng.choice(allocated),
            )
        passives = gene.passive_replicas + (rng.choice(allocated),)
        return replace(
            gene,
            reexecutions=0,
            passive_replicas=passives,
            voter_processor=gene.voter_processor or rng.choice(allocated),
        )

    if move == "drop_replica":
        if gene.passive_replicas:
            return replace(gene, passive_replicas=gene.passive_replicas[:-1])
        if gene.active_replicas:
            remaining = gene.active_replicas[:-1]
            if not remaining and not gene.passive_replicas:
                return TaskGene(processor=gene.processor)
            return replace(gene, active_replicas=remaining)
        return gene

    if move == "move_replica":
        if gene.active_replicas:
            index = rng.randrange(len(gene.active_replicas))
            actives = list(gene.active_replicas)
            actives[index] = rng.choice(allocated)
            return replace(gene, active_replicas=tuple(actives))
        if gene.passive_replicas:
            index = rng.randrange(len(gene.passive_replicas))
            passives = list(gene.passive_replicas)
            passives[index] = rng.choice(allocated)
            return replace(gene, passive_replicas=tuple(passives))
        return replace(gene, processor=rng.choice(allocated))

    # move == "voter"
    if gene.is_replicated:
        return replace(gene, voter_processor=rng.choice(allocated))
    return replace(gene, processor=rng.choice(allocated))
