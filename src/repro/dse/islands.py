"""Island-model multi-process exploration.

The population is sharded over N *islands*.  Each island runs the
existing :class:`~repro.dse.ga.Explorer` unchanged on a seeded
sub-population and commits per-island checkpoints through
:mod:`repro.dse.checkpoint`; a coordinator advances all islands in
lock-step *epochs* of ``migration_every`` generations and, at every
barrier, exchanges the best archive members between islands before
releasing the next epoch.  The final island fronts are merged with the
same SPEA2 environmental selection the GA itself uses.

Determinism contract
--------------------

For a fixed ``(system, config, topology)`` the final result is
**byte-identical** regardless of how the islands were scheduled —
inline in one process, as forked/spawned worker processes, or as
durable jobs on a ``repro serve`` fleet — and regardless of crashes:

* Epochs are pure checkpoint replay boundaries.  An island runs with
  its full generation budget and a progress hook raises
  ``KeyboardInterrupt`` exactly at the barrier, which makes the
  Explorer commit its last consistent boundary (generation
  ``barrier - 1``); the next epoch resumes from that snapshot.
* Migration mutates only the on-disk snapshots: migrants are chosen
  from the (immutable) island archives in SPEA2-fitness order with
  archive-position tie-breaks, injected into the target snapshot's
  population and evaluation cache keyed by chromosome identity, and the
  snapshot is atomically rewritten at the same generation.  Re-applying
  a migration is therefore a no-op, which is what makes the coordinator
  journal crash-safe.
* Island results travel through JSON files in every execution mode
  (Python round-trips floats exactly), so inline and multi-process runs
  merge literally the same bytes.

SIGKILL any island mid-epoch and re-run: the coordinator retries the
epoch, the island resumes from its last snapshot, and the final front
equals the uninterrupted run.
"""

import json
import multiprocessing
import os
import shutil
import signal
import threading
import time
from dataclasses import asdict, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.factory import make_dse_evaluator
from repro.core.problem import Problem
from repro.dse.checkpoint import (
    CheckpointManager,
    RunSnapshot,
    latest_snapshot_generation,
    problem_digest,
)
from repro.dse.ga import Explorer, ExplorerConfig
from repro.dse.request import ExploreRequest, IslandTopology
from repro.dse.results import (
    ExplorationResult,
    ExplorationStatistics,
    ParetoPoint,
)
from repro.dse.spea2 import Spea2Selector, pareto_filter
from repro.errors import ExplorationError
from repro.obs import events as obs_events
from repro.obs.events import IslandEpochCompleted, MigrationCompleted
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import SpanContext, activate, capture_context
from repro.obs.trace import span as trace_span

__all__ = [
    "EXECUTION_MODES",
    "run_explore",
    "merge_island_results",
    "has_island_state",
    "run_shard_epoch",
    "run_shard_migration",
    "run_shard_merge",
]

_LOG = get_logger("dse.islands")

#: How island epochs are executed: in-process (serial reference),
#: worker processes (default), or durable jobs on a serve fleet.
EXECUTION_MODES = ("inline", "process", "serve")

#: Deterministic seed stride between islands; island 0 keeps the base
#: seed so a 1-island run is byte-identical to the plain Explorer.
_SEED_STRIDE = 0x9E3779B1

#: One-shot fault hook for the chaos/CI harness: ``"<island>:<generation>"``
#: SIGKILLs that island's worker process the first time it reaches the
#: generation (a marker file keeps the retry alive).  Only honored in
#: worker processes.
_FAULT_ENV = "REPRO_ISLANDS_FAULT"

#: Override the multiprocessing start method (``fork``/``spawn``/...).
_START_METHOD_ENV = "REPRO_ISLANDS_START_METHOD"

_JOURNAL_NAME = "coordinator.json"
_JOURNAL_VERSION = 1
_RESULT_NAME = "result.json"
_ERROR_NAME = "error.txt"
_FAULT_MARKER = "fault.marker"

#: Attempts per island per epoch before the coordinator gives up.
_EPOCH_ATTEMPTS = 3


# ---------------------------------------------------------------------------
# Layout and sharding
# ---------------------------------------------------------------------------


def _island_dir(state_dir, index: int) -> Path:
    return Path(state_dir) / f"island-{index:02d}"


def _ckpt_dir(state_dir, index: int) -> Path:
    return _island_dir(state_dir, index) / "ckpt"


def has_island_state(state_dir) -> bool:
    """Whether ``state_dir`` holds a (possibly partial) island run."""
    root = Path(state_dir)
    if (root / _JOURNAL_NAME).exists():
        return True
    return any(root.glob("island-*"))


def island_seed(seed: int, index: int) -> int:
    """Deterministic per-island RNG seed (island 0 keeps the base)."""
    return seed + _SEED_STRIDE * index


def shard_config(
    config: ExplorerConfig,
    topology: IslandTopology,
    index: int,
    state_dir,
) -> ExplorerConfig:
    """One island's Explorer config: sharded sizes, derived seed.

    Stagnation early-stopping is disabled inside islands — an island
    stopping early would desynchronize the barrier protocol, and the
    merged front already reflects the full budget.
    """
    n = topology.islands
    island = _island_dir(state_dir, index)
    return replace(
        config,
        population_size=max(2, config.population_size // n),
        offspring_size=max(1, config.offspring_size // n),
        archive_size=max(1, config.archive_size // n),
        seed=island_seed(config.seed, index),
        stagnation_limit=None,
        quarantine_path=(
            str(island / "quarantine.jsonl") if config.quarantine_path else None
        ),
        checkpoint_dir=str(_ckpt_dir(state_dir, index)),
        resume=True,
    )


def _base_config(request: ExploreRequest) -> ExplorerConfig:
    """The pre-shard config: island dirs are derived, not inherited."""
    return replace(request.config, checkpoint_dir=None, resume=False)


# ---------------------------------------------------------------------------
# Epoch execution
# ---------------------------------------------------------------------------


def _write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _parse_fault(value: Optional[str]) -> Optional[Tuple[int, int]]:
    if not value:
        return None
    try:
        island, generation = value.split(":")
        return int(island), int(generation)
    except ValueError:
        raise ExplorationError(
            f"{_FAULT_ENV} must look like '<island>:<generation>', got "
            f"{value!r}"
        )


def _run_epoch(
    problem: Problem,
    config: ExplorerConfig,
    backend: Optional[str],
    state_dir,
    index: int,
    stop: int,
    allow_fault: bool = False,
) -> None:
    """Advance one island from its latest checkpoint to ``stop``.

    ``stop < generations`` runs up to the barrier (the progress hook
    interrupts the Explorer exactly there, committing the boundary
    snapshot at ``stop - 1``); the final epoch runs to completion and
    writes the island's full result file.  Either way the function is
    idempotent: re-running a finished epoch replays cached state.
    """
    island = _island_dir(state_dir, index)
    island.mkdir(parents=True, exist_ok=True)
    total = config.generations
    fault = _parse_fault(os.environ.get(_FAULT_ENV)) if allow_fault else None
    marker = island / _FAULT_MARKER

    def progress(generation: int, _stats: ExplorationStatistics) -> None:
        if (
            fault is not None
            and fault[0] == index
            and generation >= fault[1]
            and not marker.exists()
        ):
            marker.touch()
            os.kill(os.getpid(), signal.SIGKILL)
        if stop < total and generation >= stop:
            raise KeyboardInterrupt

    explorer = Explorer(
        problem, config, evaluator=make_dse_evaluator(problem, backend)
    )
    try:
        result = explorer.run(progress)
    finally:
        if explorer.quarantine is not None:
            explorer.quarantine.close()

    if stop < total:
        latest = latest_snapshot_generation(config.checkpoint_dir)
        if latest is None or latest < stop - 1:
            # The interrupt came from outside (user SIGINT), not from
            # the barrier hook: the island did not reach the barrier.
            raise KeyboardInterrupt
        return
    if result.statistics.interrupted:
        raise KeyboardInterrupt
    from repro.serve.encoding import exploration_result_to_dict

    _write_json(island / _RESULT_NAME, exploration_result_to_dict(result))


def _epoch_spec(
    payload: Dict[str, Any],
    request: ExploreRequest,
    state_dir,
    index: int,
    stop: int,
) -> Dict[str, Any]:
    """A picklable description of one island epoch (worker processes)."""
    topo = request.topology.normalized()
    ctx = capture_context()
    return {
        "system": payload,
        "options": asdict(_base_config(request)),
        "topology": asdict(topo),
        "backend": request.backend,
        "state_dir": str(state_dir),
        "index": index,
        "stop": stop,
        "trace": ctx.to_dict() if ctx is not None else None,
    }


def _epoch_main(spec: Dict[str, Any]) -> None:
    """Worker-process entry point: decode the spec, run the epoch."""
    from repro.serve.encoding import bundle_from_payload

    index = spec["index"]
    island = _island_dir(spec["state_dir"], index)
    try:
        ctx = SpanContext.from_dict(spec.get("trace"))
        bundle = bundle_from_payload(spec["system"])
        problem = Problem(
            applications=bundle.applications,
            architecture=bundle.architecture,
        )
        config = shard_config(
            ExplorerConfig.from_options(**spec["options"]),
            IslandTopology(**spec["topology"]),
            index,
            spec["state_dir"],
        )
        if ctx is not None:
            with activate(ctx):
                _run_epoch(
                    problem, config, spec["backend"], spec["state_dir"],
                    index, spec["stop"], allow_fault=True,
                )
        else:
            _run_epoch(
                problem, config, spec["backend"], spec["state_dir"],
                index, spec["stop"], allow_fault=True,
            )
    except KeyboardInterrupt:
        raise SystemExit(1)
    except BaseException as error:  # surface the reason to the parent
        try:
            island.mkdir(parents=True, exist_ok=True)
            (island / _ERROR_NAME).write_text(
                f"{type(error).__name__}: {error}\n"
            )
        except OSError:
            pass
        raise SystemExit(1)


def _mp_context():
    """Fork when it is safe (fast), spawn otherwise (threaded hosts)."""
    name = os.environ.get(_START_METHOD_ENV)
    if name:
        return multiprocessing.get_context(name)
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# ---------------------------------------------------------------------------
# Migration
# ---------------------------------------------------------------------------


def _select_migrants(
    snapshot: RunSnapshot, count: int
) -> List[Tuple[Any, Any]]:
    """The island's ``count`` best archive members, deterministically.

    Ranked by SPEA2 fitness (lower is better) over the archive's cached
    objectives, ties broken by archive position, so every re-computation
    picks the same migrants.
    """
    if count <= 0 or not snapshot.archive:
        return []
    cache = dict(snapshot.cache)
    objectives = [cache[c.key()].objectives for c in snapshot.archive]
    fitness = Spea2Selector(len(snapshot.archive)).fitness(objectives)
    order = sorted(range(len(fitness)), key=lambda i: (fitness[i], i))
    return [
        (snapshot.archive[i], cache[snapshot.archive[i].key()])
        for i in order[:count]
    ]


def _apply_migration(
    state_dir, digest: str, topology: IslandTopology, barrier: int
) -> int:
    """Exchange migrants between the barrier snapshots; returns count.

    Loads every island's snapshot (which must sit exactly at
    ``barrier - 1``), computes donations from the *archives* — which the
    injection never touches, making re-application idempotent — then
    appends new chromosomes to the target populations (plus their cached
    evaluations) and atomically rewrites the snapshots in island order.
    """
    n = topology.islands
    managers = []
    snapshots = []
    for index in range(n):
        manager = CheckpointManager(_ckpt_dir(state_dir, index), digest)
        loaded = manager.load_latest()
        if loaded is None or loaded[0].generation != barrier - 1:
            have = None if loaded is None else loaded[0].generation
            raise ExplorationError(
                f"island {index} is not at migration barrier {barrier} "
                f"(snapshot generation: {have})"
            )
        managers.append(manager)
        snapshots.append(loaded[0])

    donations = [
        _select_migrants(snapshot, topology.migrants)
        for snapshot in snapshots
    ]
    moved = 0
    for target in range(n):
        snapshot = snapshots[target]
        resident = {c.key() for c in snapshot.population}
        resident.update(c.key() for c in snapshot.archive)
        cached = {key for key, _ in snapshot.cache}
        injected = 0
        for source in topology.sources(target):
            for chromosome, result in donations[source]:
                key = chromosome.key()
                if key in resident:
                    continue
                resident.add(key)
                snapshot.population.append(chromosome)
                if key not in cached:
                    snapshot.cache.append((key, result))
                    cached.add(key)
                injected += 1
        if injected:
            managers[target].save(snapshot)
        moved += injected
    return moved


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------


def _merge_statistics(
    parts: List[ExplorationStatistics],
) -> ExplorationStatistics:
    merged = ExplorationStatistics()
    for stats in parts:
        merged.evaluations += stats.evaluations
        merged.cache_hits += stats.cache_hits
        merged.feasible += stats.feasible
        merged.infeasible += stats.infeasible
        merged.repair_failures += stats.repair_failures
        merged.guard_failures += stats.guard_failures
        merged.fallback_evaluations += stats.fallback_evaluations
        merged.stopped_early = merged.stopped_early or stats.stopped_early
        if stats.stopping_generation is not None and (
            merged.stopping_generation is None
            or stats.stopping_generation < merged.stopping_generation
        ):
            merged.stopping_generation = stats.stopping_generation
        merged.interrupted = merged.interrupted or stats.interrupted
        merged.dropping_gain += stats.dropping_gain
        merged.dropping_checked += stats.dropping_checked
        merged.record_hardening(stats.hardening_histogram)
    return merged


def _merge_history(
    parts: List[List[Tuple[int, Optional[float], int]]],
) -> List[Tuple[int, Optional[float], int]]:
    """Per-generation fleet view: best power (min), feasible (sum)."""
    best: Dict[int, Optional[float]] = {}
    feasible: Dict[int, int] = {}
    for history in parts:
        for generation, power, count in history:
            feasible[generation] = feasible.get(generation, 0) + count
            current = best.get(generation)
            if power is not None and (current is None or power < current):
                best[generation] = power
            else:
                best.setdefault(generation, current)
    return [
        (generation, best[generation], feasible[generation])
        for generation in sorted(best)
    ]


def merge_island_results(
    results: List[ExplorationResult], archive_size: int
) -> ExplorationResult:
    """Fold island results into one, via SPEA2 environmental selection.

    The union of the island fronts runs through the same
    ``Spea2Selector.select`` + Pareto filter + objective-dedup pipeline
    the Explorer applies to its own archive, truncated to the request's
    *global* archive size.
    """
    points = [point for result in results for point in result.pareto]
    pareto: List[ParetoPoint] = []
    if points:
        objectives = [(p.power, -p.service) for p in points]
        chosen = [
            points[i]
            for i in Spea2Selector(max(1, archive_size)).select(objectives)
        ]
        front = [
            chosen[i]
            for i in pareto_filter([(p.power, -p.service) for p in chosen])
        ]
        unique: Dict[Tuple, ParetoPoint] = {}
        for point in front:
            unique[(point.power, point.service, point.dropped)] = point
        pareto = sorted(unique.values(), key=lambda p: (p.power, -p.service))

    best: Dict[Tuple[str, ...], ParetoPoint] = {}
    for result in results:
        for key, point in result.best_by_drop_set.items():
            current = best.get(key)
            if current is None or point.power < current.power:
                best[key] = point

    return ExplorationResult(
        pareto=pareto,
        statistics=_merge_statistics([r.statistics for r in results]),
        history=_merge_history([r.history for r in results]),
        generations_run=max(
            (r.generations_run for r in results), default=0
        ),
        best_by_drop_set=best,
    )


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


def _barriers(topology: IslandTopology, generations: int) -> List[int]:
    """Epoch stop generations: migration barriers plus the final stop."""
    if topology.migrates:
        stops = list(range(topology.migration_every, generations,
                           topology.migration_every))
    else:
        stops = []
    stops.append(generations)
    return stops


class _Coordinator:
    """Drives one island run to completion (crash-safe, journaled)."""

    def __init__(
        self,
        request: ExploreRequest,
        problem: Problem,
        payload: Dict[str, Any],
        state_dir,
        execution: str,
        progress: Optional[Callable[[int, ExplorationStatistics], None]],
    ):
        self._request = request
        self._problem = problem
        self._payload = payload
        self._state_dir = Path(state_dir)
        self._execution = execution
        self._progress = progress
        self._topology = request.topology.normalized()
        self._config = _base_config(request)
        self._digest = problem_digest(problem)
        self._done_barrier: Optional[int] = None

    # -- journal ------------------------------------------------------

    def _journal_identity(self) -> Dict[str, Any]:
        options = self._request.canonical_options()
        return {"problem_digest": self._digest, "options": options}

    def _journal_path(self) -> Path:
        return self._state_dir / _JOURNAL_NAME

    def _load_journal(self) -> None:
        path = self._journal_path()
        if not path.exists():
            return
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ExplorationError(
                f"unreadable island journal {path}: {error}"
            )
        identity = self._journal_identity()
        if (
            payload.get("version") != _JOURNAL_VERSION
            or payload.get("problem_digest") != identity["problem_digest"]
            or payload.get("options") != identity["options"]
        ):
            raise ExplorationError(
                f"island state in {self._state_dir} belongs to a different "
                f"exploration request; clear the directory or use a fresh "
                f"checkpoint dir"
            )
        self._done_barrier = payload.get("barrier")

    def _write_journal(self, barrier: int) -> None:
        payload = dict(self._journal_identity())
        payload["version"] = _JOURNAL_VERSION
        payload["barrier"] = barrier
        _write_json(self._journal_path(), payload)
        self._done_barrier = barrier

    def _wipe(self) -> None:
        if self._journal_path().exists():
            self._journal_path().unlink()
        for path in self._state_dir.glob("island-*"):
            if path.is_dir():
                shutil.rmtree(path, ignore_errors=True)

    # -- waves --------------------------------------------------------

    def _needs_epoch(self, index: int, stop: int) -> bool:
        if stop < self._config.generations:
            latest = latest_snapshot_generation(
                _ckpt_dir(self._state_dir, index)
            )
            return latest is None or latest < stop - 1
        path = _island_dir(self._state_dir, index) / _RESULT_NAME
        if not path.exists():
            return True
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return True
        if payload.get("generations_run") != self._config.generations:
            path.unlink(missing_ok=True)
            return True
        return False

    def _run_wave(self, stop: int) -> None:
        pending = [
            index
            for index in range(self._topology.islands)
            if self._needs_epoch(index, stop)
        ]
        if not pending:
            return
        with trace_span(
            "islands.epoch",
            barrier=stop,
            islands=len(pending),
            execution=self._execution,
        ):
            if self._execution == "process":
                self._wave_process(pending, stop)
            else:
                self._wave_inline(pending, stop)

    def _wave_inline(self, pending: List[int], stop: int) -> None:
        for index in pending:
            started = time.perf_counter()
            config = shard_config(
                self._config, self._topology, index, self._state_dir
            )
            _run_epoch(
                self._problem, config, self._request.backend,
                self._state_dir, index, stop,
            )
            self._epoch_done(index, stop, time.perf_counter() - started)

    def _wave_process(self, pending: List[int], stop: int) -> None:
        ctx = _mp_context()
        attempts = {index: 0 for index in pending}
        remaining = list(pending)
        while remaining:
            started = time.perf_counter()
            procs = {}
            for index in remaining:
                spec = _epoch_spec(
                    self._payload, self._request, self._state_dir, index,
                    stop,
                )
                proc = ctx.Process(target=_epoch_main, args=(spec,))
                proc.start()
                procs[index] = proc
            failed = []
            for index, proc in procs.items():
                proc.join()
                if proc.exitcode == 0:
                    self._epoch_done(
                        index, stop, time.perf_counter() - started
                    )
                else:
                    failed.append(index)
            for index in failed:
                attempts[index] += 1
                if attempts[index] >= _EPOCH_ATTEMPTS:
                    error_path = (
                        _island_dir(self._state_dir, index) / _ERROR_NAME
                    )
                    detail = ""
                    if error_path.exists():
                        detail = f": {error_path.read_text().strip()}"
                    raise ExplorationError(
                        f"island {index} failed epoch to generation "
                        f"{stop} after {_EPOCH_ATTEMPTS} attempts{detail}"
                    )
                _LOG.warning(
                    "island worker died; retrying %s",
                    kv(island=index, stop=stop, attempt=attempts[index]),
                )
                metrics().counter("dse.islands.worker_retries").inc()
            remaining = failed

    def _epoch_done(self, index: int, stop: int, seconds: float) -> None:
        metrics().counter("dse.islands.epochs").inc()
        metrics().timer("dse.islands.epoch_seconds").observe(seconds)
        bus = obs_events.bus()
        if bus.wants(IslandEpochCompleted):
            bus.publish(
                IslandEpochCompleted(
                    island=index,
                    barrier=stop,
                    execution=self._execution,
                    seconds=seconds,
                )
            )

    # -- the run ------------------------------------------------------

    def run(self) -> ExplorationResult:
        topology = self._topology
        total = self._config.generations
        self._state_dir.mkdir(parents=True, exist_ok=True)
        if not self._request.config.resume and has_island_state(
            self._state_dir
        ):
            self._wipe()
        self._load_journal()

        with trace_span(
            "islands.run",
            islands=topology.islands,
            topology=topology.kind,
            migration_every=topology.migration_every,
            execution=self._execution,
        ):
            try:
                for stop in _barriers(topology, total):
                    if (
                        self._done_barrier is not None
                        and stop <= self._done_barrier
                    ):
                        continue
                    self._run_wave(stop)
                    if stop >= total:
                        break
                    with trace_span("islands.migrate", barrier=stop):
                        moved = _apply_migration(
                            self._state_dir, self._digest, topology, stop
                        )
                    self._write_journal(stop)
                    metrics().counter("dse.islands.migrants").inc(moved)
                    bus = obs_events.bus()
                    if bus.wants(MigrationCompleted):
                        bus.publish(
                            MigrationCompleted(
                                barrier=stop,
                                islands=topology.islands,
                                migrants=moved,
                                topology=topology.kind,
                            )
                        )
                    _LOG.info(
                        "migration applied %s",
                        kv(
                            barrier=stop,
                            migrants=moved,
                            topology=topology.kind,
                        ),
                    )
                    self._notify(stop)
            except KeyboardInterrupt:
                metrics().counter("dse.islands.interrupts").inc()
                return ExplorationResult(
                    pareto=[],
                    statistics=ExplorationStatistics(interrupted=True),
                    history=[],
                    generations_run=self._done_barrier or 0,
                    best_by_drop_set={},
                )
            return self._collect()

    def _notify(self, generation: int) -> None:
        if self._progress is not None:
            self._progress(generation, ExplorationStatistics())

    def _collect(self) -> ExplorationResult:
        from repro.serve.encoding import exploration_result_from_dict

        results = []
        for index in range(self._topology.islands):
            path = _island_dir(self._state_dir, index) / _RESULT_NAME
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise ExplorationError(
                    f"island {index} left no readable result file: {error}"
                )
            results.append(exploration_result_from_dict(payload))
        return merge_island_results(results, self._config.archive_size)


# ---------------------------------------------------------------------------
# Serve-fleet shard operations (executed inside `repro serve` job workers)
# ---------------------------------------------------------------------------


def _shard_problem(request: ExploreRequest) -> Tuple[Problem, Dict[str, Any]]:
    from repro.serve.encoding import bundle_to_payload

    bundle = _resolve_bundle(request.system)
    problem = Problem(
        applications=bundle.applications, architecture=bundle.architecture
    )
    return problem, bundle_to_payload(bundle)


def run_shard_epoch(
    request: ExploreRequest, state_dir, island: int, stop: int
) -> None:
    """One island epoch, run as a durable serve job."""
    problem, _payload = _shard_problem(request)
    config = shard_config(
        _base_config(request), request.topology.normalized(), island,
        state_dir,
    )
    _run_epoch(problem, config, request.backend, state_dir, island, stop)


def run_shard_migration(
    request: ExploreRequest, state_dir, barrier: int
) -> int:
    """One migration barrier, run as a durable serve job."""
    problem, _payload = _shard_problem(request)
    return _apply_migration(
        state_dir, problem_digest(problem), request.topology.normalized(),
        barrier,
    )


def run_shard_merge(request: ExploreRequest, state_dir) -> ExplorationResult:
    """The final merge, run as a durable serve job."""
    from repro.serve.encoding import exploration_result_from_dict

    topology = request.topology.normalized()
    results = []
    for index in range(topology.islands):
        path = _island_dir(state_dir, index) / _RESULT_NAME
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ExplorationError(
                f"island {index} has no result yet (run its final epoch "
                f"shard first): {error}"
            )
        results.append(exploration_result_from_dict(payload))
    return merge_island_results(results, request.config.archive_size)


def _run_via_fleet(
    request: ExploreRequest,
    payload: Dict[str, Any],
    fleet: str,
    progress: Optional[Callable[[int, ExplorationStatistics], None]],
) -> ExplorationResult:
    """Coordinate the run as durable shard jobs on a serve fleet.

    Every shard job carries a deterministic idempotency key derived from
    the request digest, so a restarted coordinator re-attaches to the
    same durable jobs instead of re-running finished work.
    """
    from repro.serve.client import ServeClient
    from repro.serve.encoding import (
        exploration_result_from_dict,
        request_digest,
    )

    topology = request.topology.normalized()
    total = request.config.generations
    options = request.canonical_options()
    run_id = "isl-" + request_digest(
        "/v1/shard", {"system": payload, "options": options}
    )[:24]
    client = ServeClient(fleet)

    def submit(op: str, island: Optional[int] = None,
               stop: Optional[int] = None) -> str:
        key = run_id + "-" + op
        if stop is not None:
            key += f"-s{stop}"
        if island is not None:
            key += f"-i{island}"
        params: Dict[str, Any] = dict(options)
        params.update(
            system=payload, op=op, run_id=run_id, idempotency_key=key
        )
        if island is not None:
            params["island"] = island
        if stop is not None:
            params["stop"] = stop
        return client.shard(**params)["id"]

    def wait(job_id: str) -> dict:
        record = client.wait_job(job_id)
        if record["status"] != "done":
            raise ExplorationError(
                f"shard job {job_id} ended as {record['status']}: "
                f"{record.get('error')}"
            )
        return record

    with trace_span(
        "islands.run",
        islands=topology.islands,
        topology=topology.kind,
        migration_every=topology.migration_every,
        execution="serve",
    ):
        for stop in _barriers(topology, total):
            for job_id in [
                submit("epoch", island=i, stop=stop)
                for i in range(topology.islands)
            ]:
                wait(job_id)
            if stop >= total:
                break
            wait(submit("migrate", stop=stop))
            if progress is not None:
                progress(stop, ExplorationStatistics())
        record = wait(submit("merge"))
        return exploration_result_from_dict(record["result"])


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _resolve_bundle(system: Any):
    from repro.model.serialization import SystemBundle

    if isinstance(system, SystemBundle):
        return system
    if isinstance(system, dict):
        from repro.serve.encoding import bundle_from_payload

        return bundle_from_payload(system)
    from repro.api import load

    return load(system)


def run_explore(
    request: ExploreRequest,
    *,
    execution: Optional[str] = None,
    fleet: Optional[str] = None,
    progress: Optional[Callable[[int, ExplorationStatistics], None]] = None,
) -> ExplorationResult:
    """Execute an :class:`ExploreRequest` end to end.

    A single island short-circuits to the plain single-process Explorer
    (byte-identical to the historical ``api.explore``).  Multi-island
    requests run under the coordinator: ``execution`` picks worker
    processes (default), the inline serial reference, or — with
    ``fleet`` pointing at a ``repro serve`` base URL — durable shard
    jobs on that fleet.  ``progress`` is invoked per generation for a
    single island and per migration barrier otherwise.
    """
    if execution is None:
        execution = "serve" if fleet else "process"
    if execution not in EXECUTION_MODES:
        raise ExplorationError(
            f"unknown execution mode {execution!r}; "
            f"available: {', '.join(EXECUTION_MODES)}"
        )
    if execution == "serve" and not fleet:
        raise ExplorationError("execution='serve' requires a fleet URL")

    topology = request.topology.normalized()
    bundle = _resolve_bundle(request.system)
    problem = Problem(
        applications=bundle.applications, architecture=bundle.architecture
    )

    if topology.islands == 1:
        explorer = Explorer(
            problem,
            request.config,
            evaluator=make_dse_evaluator(problem, request.backend),
        )
        try:
            return explorer.run(progress)
        finally:
            if explorer.quarantine is not None:
                explorer.quarantine.close()

    from repro.serve.encoding import bundle_to_payload

    payload = bundle_to_payload(bundle)
    if execution == "serve":
        return _run_via_fleet(request, payload, fleet, progress)

    if request.config.checkpoint_dir is not None:
        coordinator = _Coordinator(
            request, problem, payload, request.config.checkpoint_dir,
            execution, progress,
        )
        return coordinator.run()
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-islands-") as scratch:
        coordinator = _Coordinator(
            request, problem, payload, scratch, execution, progress
        )
        return coordinator.run()
