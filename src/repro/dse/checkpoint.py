"""Crash-safe checkpoint/resume for long exploration runs.

(Distinct from the *hardening* checkpointing of
:mod:`repro.dse.chromosome` — this module snapshots the GA run itself.)

Every N generations the :class:`~repro.dse.ga.Explorer` serializes its
complete loop state — population, archive, RNG state, statistics,
history, and the evaluation cache — into one versioned JSON bundle per
generation.  Writes are atomic (write-temp-then-rename into the same
directory), so a snapshot on disk is either complete or absent; a
SIGKILL mid-write leaves at most a ``*.tmp`` file behind, which is never
considered for resume.

Resume picks the newest *valid* snapshot: corrupt or partial files are
skipped with a warning, unknown bundle versions are skipped, and a
snapshot whose problem digest does not match the loaded system raises
:class:`~repro.errors.CheckpointError` — silently continuing a run
against a different system would corrupt the search.

Because the bundle carries the exact RNG state and evaluation cache, a
resumed run replays the identical search trajectory: the final Pareto
front equals an uninterrupted run with the same seed.
"""

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core.evaluator import EvaluationResult
from repro.core.problem import DesignPoint, Problem
from repro.dse.chromosome import Chromosome, TaskGene
from repro.dse.results import ExplorationStatistics
from repro.errors import CheckpointError
from repro.model.serialization import (
    application_set_to_dict,
    architecture_to_dict,
)
from repro.obs import events as obs_events
from repro.obs.events import CheckpointWritten
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import span as trace_span

_LOG = get_logger("checkpoint")

#: Bundle format version; bump on incompatible layout changes.
SNAPSHOT_VERSION = 1

_SNAPSHOT_PREFIX = "checkpoint-"
_SNAPSHOT_SUFFIX = ".json"


def latest_snapshot_generation(directory) -> Optional[int]:
    """Generation of the newest committed snapshot in ``directory``.

    Cheap (file-name scan only, no parse/validation), so status
    endpoints can report the resume point of an interrupted exploration
    — the serve job store does exactly that.  Returns ``None`` when the
    directory is missing or holds no parseable snapshot name.
    """
    root = Path(directory)
    if not root.is_dir():
        return None
    best: Optional[int] = None
    for path in root.glob(f"{_SNAPSHOT_PREFIX}*{_SNAPSHOT_SUFFIX}"):
        stem = path.name[len(_SNAPSHOT_PREFIX):-len(_SNAPSHOT_SUFFIX)]
        try:
            generation = int(stem)
        except ValueError:
            continue
        if best is None or generation > best:
            best = generation
    return best


def problem_digest(problem: Problem) -> str:
    """Stable digest of the optimization problem a snapshot belongs to."""
    payload = {
        "applications": application_set_to_dict(problem.applications),
        "architecture": architecture_to_dict(problem.architecture),
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class RunSnapshot:
    """The complete, resumable state of an exploration at a generation
    boundary (end of the ``generation``-th loop iteration)."""

    generation: int
    rng_state: Tuple
    population: List[Chromosome]
    archive: List[Chromosome]
    best_power: Optional[float]
    stagnation: int
    statistics: ExplorationStatistics
    history: List[Tuple[int, Optional[float], int]]
    #: Every evaluated candidate: ``(chromosome key, result)``.
    cache: List[Tuple[Tuple, EvaluationResult]] = field(default_factory=list)
    #: Counterfactual feasibility cache: ``(chromosome key, feasible)``.
    without_drop_cache: List[Tuple[Tuple, bool]] = field(default_factory=list)
    #: Trace context of the interrupted run (``SpanContext.to_dict``
    #: shape), so a resumed run continues the same trace.  Optional and
    #: backward-compatible: absent in pre-trace snapshots.
    trace: Optional[dict] = None


# ---------------------------------------------------------------------------
# Encoding helpers
# ---------------------------------------------------------------------------


def _key_to_dict(key: Tuple) -> dict:
    """Encode a ``Chromosome.key()`` tuple as a JSON-friendly dict."""
    allocation, keep_alive, genes = key
    return {
        "allocation": list(allocation),
        "keep_alive": list(keep_alive),
        "genes": [[name, gene.to_dict()] for name, gene in genes],
    }


def _key_from_dict(data: dict) -> Tuple:
    """Inverse of :func:`_key_to_dict`."""
    return (
        tuple(bool(b) for b in data["allocation"]),
        tuple(bool(b) for b in data["keep_alive"]),
        tuple(
            (name, TaskGene.from_dict(gene)) for name, gene in data["genes"]
        ),
    )


def _result_to_dict(result: EvaluationResult) -> dict:
    """Reduced evaluation result: everything the GA needs after a resume.

    The analysis and hardened-system objects are deliberately dropped —
    they are large, derivable, and only consumed at first-evaluation time
    (the hardening histogram is already folded into the statistics).
    """
    return {
        "design": result.design.to_dict() if result.design is not None else None,
        "feasible": result.feasible,
        "violations": list(result.violations),
        "power": result.power,
        "service": result.service,
        "severity": result.severity,
        "fallback": result.fallback,
        "guard_error": result.guard_error,
    }


def _result_from_dict(data: dict) -> EvaluationResult:
    design = data.get("design")
    return EvaluationResult(
        design=DesignPoint.from_dict(design) if design is not None else None,
        feasible=data["feasible"],
        violations=list(data.get("violations", ())),
        power=data.get("power"),
        service=data.get("service"),
        severity=data.get("severity", 0.0),
        fallback=data.get("fallback"),
        guard_error=data.get("guard_error"),
    )


def _rng_state_to_json(state: Tuple) -> list:
    """``random.Random.getstate()`` tuples as nested lists."""
    return [
        list(part) if isinstance(part, tuple) else part for part in state
    ]


def _rng_state_from_json(state: list) -> Tuple:
    return tuple(
        tuple(part) if isinstance(part, list) else part for part in state
    )


def snapshot_to_dict(snapshot: RunSnapshot, digest: str) -> dict:
    """Serialize a snapshot (plus the problem digest) to a JSON bundle."""
    return {
        "version": SNAPSHOT_VERSION,
        "problem_digest": digest,
        "generation": snapshot.generation,
        "rng_state": _rng_state_to_json(snapshot.rng_state),
        "population": [c.to_dict() for c in snapshot.population],
        "archive": [c.to_dict() for c in snapshot.archive],
        "best_power": snapshot.best_power,
        "stagnation": snapshot.stagnation,
        "statistics": snapshot.statistics.to_dict(),
        "history": [list(entry) for entry in snapshot.history],
        "cache": [
            {"key": _key_to_dict(key), "result": _result_to_dict(result)}
            for key, result in snapshot.cache
        ],
        "without_drop_cache": [
            {"key": _key_to_dict(key), "feasible": feasible}
            for key, feasible in snapshot.without_drop_cache
        ],
        "trace": snapshot.trace,
    }


def snapshot_from_dict(payload: dict) -> RunSnapshot:
    """Inverse of :func:`snapshot_to_dict` (digest checked by the caller)."""
    return RunSnapshot(
        generation=payload["generation"],
        rng_state=_rng_state_from_json(payload["rng_state"]),
        population=[Chromosome.from_dict(c) for c in payload["population"]],
        archive=[Chromosome.from_dict(c) for c in payload["archive"]],
        best_power=payload.get("best_power"),
        stagnation=payload.get("stagnation", 0),
        statistics=ExplorationStatistics.from_dict(
            payload.get("statistics", {})
        ),
        history=[
            (entry[0], entry[1], entry[2]) for entry in payload.get("history", ())
        ],
        cache=[
            (_key_from_dict(item["key"]), _result_from_dict(item["result"]))
            for item in payload.get("cache", ())
        ],
        without_drop_cache=[
            (_key_from_dict(item["key"]), item["feasible"])
            for item in payload.get("without_drop_cache", ())
        ],
        trace=payload.get("trace"),
    )


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


class CheckpointManager:
    """Writes and loads versioned snapshot bundles in one directory."""

    def __init__(self, directory, digest: str, keep: int = 3):
        if keep < 1:
            raise CheckpointError("checkpoint keep count must be >= 1")
        self._directory = Path(directory)
        self._digest = digest
        self._keep = keep
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CheckpointError(
                f"cannot create checkpoint directory {self._directory}: {error}"
            ) from error

    @property
    def directory(self) -> Path:
        """The snapshot directory."""
        return self._directory

    def path_for(self, generation: int) -> Path:
        """Snapshot file path for one generation."""
        return self._directory / (
            f"{_SNAPSHOT_PREFIX}{generation:08d}{_SNAPSHOT_SUFFIX}"
        )

    def snapshot_paths(self) -> List[Path]:
        """Committed snapshot files, oldest first (``*.tmp`` excluded)."""
        return sorted(
            p
            for p in self._directory.glob(
                f"{_SNAPSHOT_PREFIX}*{_SNAPSHOT_SUFFIX}"
            )
            if p.is_file()
        )

    def latest_generation(self) -> Optional[int]:
        """Generation of the newest committed snapshot, without loading it."""
        return latest_snapshot_generation(self._directory)

    def save(self, snapshot: RunSnapshot) -> Path:
        """Atomically commit one snapshot; returns its path."""
        started = time.perf_counter()
        with trace_span("dse.checkpoint", generation=snapshot.generation):
            payload = snapshot_to_dict(snapshot, self._digest)
            target = self.path_for(snapshot.generation)
            tmp = target.with_name(target.name + ".tmp")
            try:
                with open(tmp, "w") as handle:
                    json.dump(payload, handle, sort_keys=True)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, target)
            except OSError as error:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
                raise CheckpointError(
                    f"cannot write checkpoint {target}: {error}"
                ) from error
        seconds = time.perf_counter() - started
        size = target.stat().st_size
        metrics().counter("dse.checkpoints").inc()
        metrics().timer("dse.checkpoint_seconds").observe(seconds)
        bus = obs_events.bus()
        if bus.wants(CheckpointWritten):
            bus.publish(
                CheckpointWritten(
                    generation=snapshot.generation,
                    path=str(target),
                    size_bytes=size,
                    seconds=seconds,
                )
            )
        _LOG.info(
            "checkpoint written %s",
            kv(
                generation=snapshot.generation,
                path=str(target),
                bytes=size,
                seconds=round(seconds, 3),
            ),
        )
        self._prune()
        return target

    def load_latest(self) -> Optional[Tuple[RunSnapshot, Path]]:
        """The newest valid snapshot (and its path), or ``None``.

        Corrupt, partial, or unknown-version snapshots are skipped with a
        warning; a digest mismatch raises :class:`CheckpointError`.
        """
        for path in reversed(self.snapshot_paths()):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                _LOG.warning(
                    "skipping unreadable checkpoint %s",
                    kv(path=str(path), error=str(error)),
                )
                continue
            version = payload.get("version")
            if version != SNAPSHOT_VERSION:
                _LOG.warning(
                    "skipping checkpoint with unsupported version %s",
                    kv(path=str(path), version=version),
                )
                continue
            if payload.get("problem_digest") != self._digest:
                raise CheckpointError(
                    f"checkpoint {path} belongs to a different system "
                    f"(problem digest mismatch)"
                )
            try:
                snapshot = snapshot_from_dict(payload)
            except (KeyError, TypeError, ValueError, IndexError) as error:
                _LOG.warning(
                    "skipping malformed checkpoint %s",
                    kv(path=str(path), error=str(error)),
                )
                continue
            return snapshot, path
        return None

    def _prune(self) -> None:
        """Drop the oldest snapshots beyond the keep count."""
        paths = self.snapshot_paths()
        for path in paths[: -self._keep]:
            try:
                path.unlink()
            except OSError as error:
                _LOG.warning(
                    "cannot prune checkpoint %s",
                    kv(path=str(path), error=str(error)),
                )
