"""TGFF-style synthetic benchmark generation.

The paper evaluates on "two synthetic examples that are randomly
generated" in addition to the real-life benchmarks.  This package
generates layered random task graphs (in the spirit of the classic Task
Graphs For Free generator), random heterogeneous architectures, and
complete problem instances with mixed criticality.
"""

from repro.benchgen.tgff import (
    GraphShape,
    TgffConfig,
    comm_dominated_problem,
    generate_application_set,
    generate_architecture,
    generate_problem,
    generate_task_graph,
)

__all__ = [
    "GraphShape",
    "TgffConfig",
    "comm_dominated_problem",
    "generate_task_graph",
    "generate_application_set",
    "generate_architecture",
    "generate_problem",
]
