"""Layered random task-graph generation (TGFF style).

Graphs are built layer by layer: every non-source task draws at least one
predecessor from an earlier layer, every non-sink task feeds at least one
successor, and extra edges are added with a configurable probability.
Periods are derived from the generated critical path through a slack
factor, so deadline tightness is a first-class generation knob — §5.2 of
the paper observes that task dropping helps most "when the deadline is
close to the scheduling make-span".
"""

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from repro.core.problem import Problem
from repro.errors import ModelError
from repro.model.application import ApplicationSet
from repro.model.architecture import (
    Architecture,
    Interconnect,
    InterconnectKind,
    Processor,
)
from repro.model.task import Channel, Task
from repro.model.taskgraph import TaskGraph


@dataclass(frozen=True)
class GraphShape:
    """Structural knobs of one generated task graph."""

    min_tasks: int = 4
    max_tasks: int = 10
    min_layers: int = 2
    max_layers: int = 5
    #: Probability of adding an extra edge between compatible layers.
    extra_edge_probability: float = 0.2

    def __post_init__(self):
        if not 1 <= self.min_tasks <= self.max_tasks:
            raise ModelError("invalid task count range")
        if not 1 <= self.min_layers <= self.max_layers:
            raise ModelError("invalid layer count range")
        if not 0.0 <= self.extra_edge_probability <= 1.0:
            raise ModelError("edge probability must lie in [0, 1]")


@dataclass(frozen=True)
class TgffConfig:
    """Timing/criticality knobs of a generated benchmark."""

    shape: GraphShape = field(default_factory=GraphShape)
    wcet_range: Tuple[float, float] = (5.0, 40.0)
    #: bcet is wcet times a factor drawn from this range.
    bcet_factor_range: Tuple[float, float] = (0.4, 0.9)
    detection_overhead_factor: float = 0.05
    voting_overhead_factor: float = 0.05
    comm_size_range: Tuple[float, float] = (16.0, 256.0)
    #: Channel payload distribution: ``uniform`` draws every size from
    #: ``comm_size_range`` (the historical behaviour, draw-for-draw);
    #: ``bimodal`` models control-vs-bulk traffic — most channels stay
    #: in ``comm_size_range`` (control), a seeded fraction draw from
    #: ``comm_bulk_range`` (bulk DMA-style transfers).
    comm_size_distribution: str = "uniform"
    comm_bulk_range: Tuple[float, float] = (2048.0, 8192.0)
    #: Probability that a ``bimodal`` channel is a bulk transfer.
    comm_bulk_probability: float = 0.25
    #: Period = critical-path WCET times a factor from this range; small
    #: factors make deadlines tight.
    period_slack_range: Tuple[float, float] = (2.0, 4.0)
    #: Periods are rounded up to a multiple of this quantum, which keeps
    #: hyperperiods small.
    period_quantum: float = 50.0
    reliability_target: float = 1e-7
    service_value_range: Tuple[float, float] = (1.0, 10.0)

    def __post_init__(self):
        if self.wcet_range[0] <= 0 or self.wcet_range[0] > self.wcet_range[1]:
            raise ModelError("invalid wcet range")
        if not 0 < self.bcet_factor_range[0] <= self.bcet_factor_range[1] <= 1:
            raise ModelError("invalid bcet factor range")
        if self.period_quantum <= 0:
            raise ModelError("period quantum must be positive")
        if self.comm_size_distribution not in ("uniform", "bimodal"):
            raise ModelError(
                "comm_size_distribution must be 'uniform' or 'bimodal', "
                f"got {self.comm_size_distribution!r}"
            )
        if (
            self.comm_bulk_range[0] <= 0
            or self.comm_bulk_range[0] > self.comm_bulk_range[1]
        ):
            raise ModelError("invalid comm bulk range")
        if not 0.0 <= self.comm_bulk_probability <= 1.0:
            raise ModelError("comm bulk probability must lie in [0, 1]")


def _draw_channel_size(rng: random.Random, config: TgffConfig) -> float:
    """One channel payload draw under the configured distribution.

    ``uniform`` consumes exactly one ``rng.uniform`` call, preserving the
    historical draw sequence — seeds generated before the distribution
    knob existed keep producing byte-identical systems.
    """
    if config.comm_size_distribution == "uniform":
        return round(rng.uniform(*config.comm_size_range), 1)
    if rng.random() < config.comm_bulk_probability:
        return round(rng.uniform(*config.comm_bulk_range), 1)
    return round(rng.uniform(*config.comm_size_range), 1)


def generate_task_graph(
    name: str,
    rng: random.Random,
    config: Optional[TgffConfig] = None,
    droppable: bool = False,
    task_prefix: Optional[str] = None,
) -> TaskGraph:
    """Generate one random layered task graph.

    ``task_prefix`` defaults to ``name`` and guarantees globally unique
    task names when graphs are combined into an application set.
    """
    config = config or TgffConfig()
    shape = config.shape
    prefix = task_prefix if task_prefix is not None else name

    task_count = rng.randint(shape.min_tasks, shape.max_tasks)
    layer_count = min(rng.randint(shape.min_layers, shape.max_layers), task_count)
    # Distribute tasks over layers: every layer gets at least one.
    layers: List[List[str]] = [[] for _ in range(layer_count)]
    tasks: List[Task] = []
    for index in range(task_count):
        layer = index if index < layer_count else rng.randrange(layer_count)
        task_name = f"{prefix}_t{index}"
        wcet = rng.uniform(*config.wcet_range)
        bcet = wcet * rng.uniform(*config.bcet_factor_range)
        tasks.append(
            Task(
                name=task_name,
                bcet=round(bcet, 3),
                wcet=round(wcet, 3),
                detection_overhead=round(wcet * config.detection_overhead_factor, 3),
                voting_overhead=round(wcet * config.voting_overhead_factor, 3),
            )
        )
        layers[layer].append(task_name)
    layers = [layer for layer in layers if layer]

    channels: List[Channel] = []
    existing = set()

    def add_channel(src: str, dst: str) -> None:
        if (src, dst) in existing:
            return
        existing.add((src, dst))
        channels.append(
            Channel(src=src, dst=dst, size=_draw_channel_size(rng, config))
        )

    # Mandatory connectivity.
    for layer_index in range(1, len(layers)):
        earlier = [t for layer in layers[:layer_index] for t in layer]
        for task_name in layers[layer_index]:
            add_channel(rng.choice(earlier), task_name)
    for layer_index in range(len(layers) - 1):
        later = [t for layer in layers[layer_index + 1:] for t in layer]
        for task_name in layers[layer_index]:
            if not any(src == task_name for src, _dst in existing):
                add_channel(task_name, rng.choice(later))
    # Optional extra edges.
    for src_index in range(len(layers) - 1):
        for src in layers[src_index]:
            for dst_layer in layers[src_index + 1:]:
                for dst in dst_layer:
                    if rng.random() < shape.extra_edge_probability:
                        add_channel(src, dst)

    # Stitch weakly-connected components together: grafting an edge from
    # the first layer-0 task to another component's source keeps the graph
    # a DAG and mirrors how TGFF emits single-component graphs.
    union = nx.DiGraph()
    union.add_nodes_from(t.name for t in tasks)
    union.add_edges_from(existing)
    components = list(nx.weakly_connected_components(union))
    if len(components) > 1:
        anchor = layers[0][0]
        for component in components:
            if anchor in component:
                continue
            target = sorted(component)[0]
            if (anchor, target) not in existing:
                add_channel(anchor, target)

    # Period from the critical path (need a draft graph to measure it).
    draft = TaskGraph(
        name=name,
        tasks=tasks,
        channels=channels,
        period=1.0,
        service_value=1.0,
    )
    slack = rng.uniform(*config.period_slack_range)
    raw_period = draft.critical_path_wcet() * slack
    # Snap to quantum * 2^k so that mixed periods stay harmonic and the
    # hyperperiod never exceeds the largest period.
    quantum = config.period_quantum
    period = quantum
    while period < raw_period:
        period *= 2

    if droppable:
        return TaskGraph(
            name=name,
            tasks=tasks,
            channels=channels,
            period=period,
            service_value=round(rng.uniform(*config.service_value_range), 2),
        )
    return TaskGraph(
        name=name,
        tasks=tasks,
        channels=channels,
        period=period,
        reliability_target=config.reliability_target,
    )


def generate_application_set(
    rng: random.Random,
    critical_graphs: int,
    droppable_graphs: int,
    config: Optional[TgffConfig] = None,
    name_prefix: str = "synth",
) -> ApplicationSet:
    """Generate a mixed-criticality application set."""
    if critical_graphs < 0 or droppable_graphs < 0 or not (
        critical_graphs + droppable_graphs
    ):
        raise ModelError("need at least one graph to generate")
    graphs = []
    for index in range(critical_graphs):
        graphs.append(
            generate_task_graph(
                f"{name_prefix}_hi{index}", rng, config, droppable=False
            )
        )
    for index in range(droppable_graphs):
        graphs.append(
            generate_task_graph(
                f"{name_prefix}_lo{index}", rng, config, droppable=True
            )
        )
    return ApplicationSet(graphs)


def generate_architecture(
    rng: random.Random,
    processors: int,
    types: int = 2,
    static_power_range: Tuple[float, float] = (0.5, 2.0),
    dynamic_power_range: Tuple[float, float] = (2.0, 6.0),
    fault_rate_range: Tuple[float, float] = (1e-6, 1e-4),
    bandwidth: float = 1_000.0,
    base_latency: float = 0.1,
    comm_backend: str = "flat",
    arq_retries: int = 0,
    arq_timeout: float = 0.0,
) -> Architecture:
    """Generate a random heterogeneous platform.

    ``comm_backend``/``arq_retries``/``arq_timeout`` configure the
    fabric's contention model (see :mod:`repro.comm`); the defaults keep
    the historical flat fabric and byte-identical serialized output.
    """
    if processors < 1:
        raise ModelError("need at least one processor")
    if types < 1:
        raise ModelError("need at least one processor type")
    pes = []
    for index in range(processors):
        ptype = f"type{index % types}"
        pes.append(
            Processor(
                name=f"pe{index}",
                ptype=ptype,
                static_power=round(rng.uniform(*static_power_range), 3),
                dynamic_power=round(rng.uniform(*dynamic_power_range), 3),
                fault_rate=rng.uniform(*fault_rate_range),
            )
        )
    interconnect = Interconnect(
        bandwidth=bandwidth,
        base_latency=base_latency,
        kind=InterconnectKind.SHARED_BUS,
        comm_backend=comm_backend,
        arq_retries=arq_retries,
        arq_timeout=arq_timeout,
    )
    return Architecture(pes, interconnect)


def generate_problem(
    seed: int,
    critical_graphs: int = 2,
    droppable_graphs: int = 2,
    processors: int = 4,
    config: Optional[TgffConfig] = None,
    name_prefix: str = "synth",
) -> Problem:
    """Generate a complete random problem instance from one seed."""
    rng = random.Random(seed)
    applications = generate_application_set(
        rng,
        critical_graphs,
        droppable_graphs,
        config=config,
        name_prefix=name_prefix,
    )
    architecture = generate_architecture(rng, processors)
    return Problem(applications=applications, architecture=architecture)


def comm_dominated_problem(
    seed: int = 7,
    comm_backend: str = "shared-bus",
    arq_retries: int = 2,
    arq_timeout: float = 0.5,
    processors: int = 4,
) -> Problem:
    """A comm-dominated instance: bulk payloads over a slow small fabric.

    Bimodal channel sizes skewed toward bulk transfers, paired with a
    low-bandwidth four-PE platform, make communication (not computation)
    the response-time driver — the workload class the contention-aware
    backends in :mod:`repro.comm` exist for.  Deterministic in ``seed``.
    """
    config = TgffConfig(
        comm_size_distribution="bimodal",
        comm_bulk_probability=0.6,
    )
    rng = random.Random(seed)
    applications = generate_application_set(
        rng, critical_graphs=2, droppable_graphs=2, config=config
    )
    architecture = generate_architecture(
        rng,
        processors,
        bandwidth=200.0,
        base_latency=0.5,
        comm_backend=comm_backend,
        arq_retries=arq_retries,
        arq_timeout=arq_timeout,
    )
    return Problem(applications=applications, architecture=architecture)
