"""Communication timing model for the on-chip interconnect.

Channels between tasks mapped on the same processor cost nothing.  Between
processors, a transfer of ``s_e`` bytes takes ``base_latency + s_e / bw``
on the fabric (paper §2.1 gives the fabric a maximum bandwidth ``bw_nw``).

Two worst-case regimes are supported:

* ``contention_factor = 1`` (default) — the fabric guarantees its
  bandwidth to each transfer (e.g. a TDMA bus or a crossbar without
  endpoint conflicts);
* ``contention_factor > 1`` — worst-case transfers are stretched by the
  given factor to cover arbitration losses on a shared medium.

Best-case transfers always use the uncontended time, which keeps the
best-case bounds safe lower bounds.

**Zero-size semantics.**  A ``size <= 0`` channel is a pure
synchronisation token (a precedence edge with no payload).  Off
processor it is *intentionally asymmetric*: the best case is ``0.0`` —
an empty message can ride an already-open arbitration window for free —
while the worst case charges ``base_latency * contention_factor``,
because even a payload-free message must win one arbitration round on
the fabric before the dependent task may start.  Collapsing either side
(charging ``base_latency`` best-case, or making empty messages free
worst-case) would respectively inflate the best-case lower bound past
observable schedules or let a contended fabric deliver infinitely many
sync tokens in zero time.  Both sides are pinned by regression tests in
``tests/sched/test_comm.py``.
"""

from dataclasses import dataclass

from repro.errors import ModelError
from repro.model.architecture import Interconnect


@dataclass(frozen=True)
class CommModel:
    """Best-/worst-case channel latency computation.

    Parameters
    ----------
    interconnect:
        The platform fabric.
    contention_factor:
        Multiplier (>= 1) applied to worst-case transfer times.
    """

    interconnect: Interconnect
    contention_factor: float = 1.0

    def __post_init__(self):
        if self.contention_factor < 1.0:
            raise ModelError(
                f"contention factor must be >= 1, got {self.contention_factor}"
            )

    def best_case(self, size: float, same_processor: bool) -> float:
        """Safe lower bound on the channel latency.

        Off-processor ``size <= 0`` transfers are free: an empty sync
        token can piggyback on an open arbitration window (see the
        module docstring for why this is asymmetric with
        :meth:`worst_case`).
        """
        if same_processor or size <= 0:
            return 0.0
        return self.interconnect.transfer_time(size)

    def worst_case(self, size: float, same_processor: bool) -> float:
        """Safe upper bound on the channel latency.

        Off-processor ``size <= 0`` transfers still pay one arbitration
        round (``base_latency * contention_factor``): a payload-free
        message must acquire the fabric before its consumer may start.
        """
        if same_processor:
            return 0.0
        if size <= 0:
            return self.interconnect.base_latency * self.contention_factor
        return self.interconnect.transfer_time(size) * self.contention_factor
