"""Vectorised variant of the window-based schedulability back-end.

Implements exactly the same monotone Jacobi iteration as
:class:`repro.sched.wcrt.WindowAnalysisBackend` — per-job interference
bound capped by the per-batch work-conservation bound — but evaluates
each sweep with numpy over precomputed index arrays.  Results are
numerically identical (the same operations in the same order per sweep);
the speedup grows with job count and matters inside the DSE loop, where
Algorithm 1 re-runs the back-end once per transition per candidate.

Use it anywhere a :class:`~repro.sched.wcrt.SchedBackend` is accepted::

    analysis = MixedCriticalityAnalysis(backend=FastWindowAnalysisBackend())
"""

from typing import List

import numpy as np

from repro.errors import AnalysisError
from repro.obs.trace import span as trace_span
from repro.sched.jobs import JobSet
from repro.sched.wcrt import ScheduleBounds


class _Precomputed:
    """Index arrays shared by every analysis of structurally-equal job sets."""

    def __init__(self, jobset: JobSet):
        jobs = jobset.jobs
        count = len(jobs)
        self.count = count
        self.release = np.array([j.release for j in jobs])
        self.order = list(jobset.topo_order)

        # Predecessor edges as flat arrays (per consumer).
        pred_src: List[int] = []
        pred_dst: List[int] = []
        pred_comm_best: List[float] = []
        pred_comm_worst: List[float] = []
        for job in jobs:
            for src, best, worst, _on_demand in job.preds:
                pred_src.append(src)
                pred_dst.append(job.index)
                pred_comm_best.append(best)
                pred_comm_worst.append(worst)
        self.pred_src = np.array(pred_src, dtype=np.int64)
        self.pred_dst = np.array(pred_dst, dtype=np.int64)
        self.pred_comm_best = np.array(pred_comm_best)
        self.pred_comm_worst = np.array(pred_comm_worst)

        # Interference pairs: (victim, interferer).
        hp_victim: List[int] = []
        hp_other: List[int] = []
        for index in range(count):
            for other in jobset.higher_priority_on_same_pe(index):
                hp_victim.append(index)
                hp_other.append(other)
        self.hp_victim = np.array(hp_victim, dtype=np.int64)
        self.hp_other = np.array(hp_other, dtype=np.int64)

        # Batch structure, flattened for ufunc.at reductions.
        batches = jobset.batches()
        self.batch_count = len(batches)
        member_flat: List[int] = []
        member_batch: List[int] = []
        ext_src: List[int] = []
        ext_comm: List[float] = []
        ext_batch: List[int] = []
        int_other: List[int] = []
        int_batch: List[int] = []
        releases: List[float] = []
        for b, batch in enumerate(batches):
            releases.append(batch.release)
            for member in batch.members:
                member_flat.append(member)
                member_batch.append(b)
            for src, comm in batch.external_preds:
                ext_src.append(src)
                ext_comm.append(comm)
                ext_batch.append(b)
            for other in batch.interferers:
                int_other.append(other)
                int_batch.append(b)
        self.member_flat = np.array(member_flat, dtype=np.int64)
        self.member_batch = np.array(member_batch, dtype=np.int64)
        self.ext_src = np.array(ext_src, dtype=np.int64)
        self.ext_comm = np.array(ext_comm)
        self.ext_batch = np.array(ext_batch, dtype=np.int64)
        self.int_other = np.array(int_other, dtype=np.int64)
        self.int_batch = np.array(int_batch, dtype=np.int64)
        self.batch_release = np.array(releases)


class FastWindowAnalysisBackend:
    """Numpy implementation of the window analysis (see module docs)."""

    def __init__(self, max_sweeps: int = 200):
        if max_sweeps < 1:
            raise AnalysisError("max_sweeps must be >= 1")
        self._max_sweeps = max_sweeps
        self._cache_key: object = None
        self._cache_value: _Precomputed = None

    def analyze(self, jobset: JobSet) -> ScheduleBounds:
        """Compute bounds for every job of the set."""
        pre = self._precomputed(jobset)
        jobs = jobset.jobs
        count = pre.count
        bcet = np.array([j.bcet for j in jobs])
        wcet = np.array([j.wcet for j in jobs])

        # ---- best case: longest path, no interference ----
        min_start = np.zeros(count)
        min_finish = np.zeros(count)
        for index in pre.order:
            job = jobs[index]
            earliest = job.release
            for src, comm_best, _worst, _on_demand in job.preds:
                arrival = min_finish[src] + comm_best
                if arrival > earliest:
                    earliest = arrival
            min_start[index] = earliest
            min_finish[index] = earliest + bcet[index]

        # ---- worst case: monotone Jacobi iteration ----
        max_finish = np.zeros(count)
        for index in pre.order:  # interference-free initialisation
            job = jobs[index]
            latest = job.release
            for src, _best, comm_worst, _on_demand in job.preds:
                arrival = max_finish[src] + comm_worst
                if arrival > latest:
                    latest = arrival
            max_finish[index] = latest + wcet[index]

        # Batch window starts depend only on min_start (fixed per analyze).
        batch_window_start = np.full(pre.batch_count, np.inf)
        np.minimum.at(
            batch_window_start, pre.member_batch, min_start[pre.member_flat]
        )
        batch_work = np.zeros(pre.batch_count)
        np.add.at(batch_work, pre.member_batch, wcet[pre.member_flat])

        converged = False
        sweeps = 0
        with trace_span("sched.fast.fixed_point", jobs=count) as fp_span:
            for sweeps in range(1, self._max_sweeps + 1):
                # Batch caps from the previous state (vectorised reductions).
                batch_arrival = pre.batch_release.copy()
                if pre.ext_src.size:
                    np.maximum.at(
                        batch_arrival,
                        pre.ext_batch,
                        max_finish[pre.ext_src] + pre.ext_comm,
                    )
                batch_window_end = np.full(pre.batch_count, -np.inf)
                np.maximum.at(
                    batch_window_end, pre.member_batch, max_finish[pre.member_flat]
                )
                batch_interference = np.zeros(pre.batch_count)
                if pre.int_other.size:
                    overlap = (
                        min_start[pre.int_other] < batch_window_end[pre.int_batch]
                    ) & (max_finish[pre.int_other] > batch_window_start[pre.int_batch])
                    np.add.at(
                        batch_interference,
                        pre.int_batch,
                        np.where(overlap, wcet[pre.int_other], 0.0),
                    )
                batch_bound = batch_arrival + batch_work + batch_interference
                batch_cap = np.full(count, np.inf)
                np.minimum.at(
                    batch_cap, pre.member_flat, batch_bound[pre.member_batch]
                )

                # Per-job arrivals from the previous state.
                arrival = pre.release.copy()
                if pre.pred_src.size:
                    candidate = max_finish[pre.pred_src] + pre.pred_comm_worst
                    np.maximum.at(arrival, pre.pred_dst, candidate)

                # Interference sums over overlapping higher-priority jobs.
                interference = np.zeros(count)
                if pre.hp_victim.size:
                    overlap = (
                        min_start[pre.hp_other] < max_finish[pre.hp_victim]
                    ) & (max_finish[pre.hp_other] > min_start[pre.hp_victim])
                    contributions = np.where(overlap, wcet[pre.hp_other], 0.0)
                    np.add.at(interference, pre.hp_victim, contributions)

                job_bound = arrival + wcet + interference
                candidate = np.minimum(job_bound, batch_cap)
                new_finish = np.maximum(max_finish, candidate)
                if np.all(new_finish <= max_finish + 1e-12):
                    converged = True
                    break
                max_finish = new_finish
            fp_span.set_attributes(sweeps=sweeps, converged=converged)

        if not converged:
            # Trivially safe fallback, as in the reference backend.
            for _ in range(2):
                for index in pre.order:
                    job = jobs[index]
                    latest = job.release
                    for src, _best, comm_worst, _on_demand in job.preds:
                        candidate = max_finish[src] + comm_worst
                        if candidate > latest:
                            latest = candidate
                    total = sum(
                        wcet[o] for o in jobset.higher_priority_on_same_pe(index)
                    )
                    max_finish[index] = latest + wcet[index] + total

        max_start = max_finish - wcet
        return ScheduleBounds(
            jobset,
            min_start.tolist(),
            min_finish.tolist(),
            max_start.tolist(),
            max_finish.tolist(),
            converged,
            sweeps,
        )

    def _precomputed(self, jobset: JobSet) -> _Precomputed:
        """Share index arrays across ``with_bounds`` clones.

        Clones keep the same precedence/priority structure (only bcet and
        wcet change), identified here by the shared ``topo_order`` tuple —
        compared by identity, with the key object held so it cannot be
        recycled.  At most one structure is cached (the Algorithm-1 access
        pattern re-analyses many clones of one base job set).
        """
        key = jobset.topo_order
        if self._cache_key is not key:
            self._cache_key = key
            self._cache_value = _Precomputed(jobset)
        return self._cache_value
