"""Window-based best-/worst-case schedulability analysis.

This module is the ``sched`` back-end used by the paper's Algorithm 1.  It
computes, for every job of a :class:`~repro.sched.jobs.JobSet`:

* ``min_start`` / ``min_finish`` — safe lower bounds, obtained by a
  longest-path pass with best-case execution and communication times and
  no interference (no work-conserving scheduler can run a job earlier);
* ``max_start`` / ``max_finish`` — safe upper bounds, obtained by a
  monotone fixed-point iteration: a job's worst-case finish is its latest
  data/release arrival plus its own WCET plus the WCETs of all
  higher-priority jobs on the same processor whose execution windows may
  overlap its pending interval.

The iteration starts from the interference-free solution and grows
windows monotonically; if it does not stabilise within ``max_sweeps``
sweeps it falls back to the trivially safe bound that charges every
higher-priority job on the processor, which is itself a fixed point.

Safety argument (sketch): order actual executions by completion time.  A
job's actual arrival is bounded by its predecessors' ``max_finish`` plus
worst-case channel latency; any higher-priority job that actually delays
it must be pending during the job's pending interval, and its actual
window lies within the computed ``[min_start, max_finish]`` windows by
induction — so it is a member of the computed interference set.  The
fixed point therefore dominates every actual schedule.
"""

from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Tuple

from repro.errors import AnalysisError
from repro.sched.jobs import Job, JobId, JobSet


@dataclass(frozen=True)
class JobBounds:
    """Safe execution-window bounds of one job."""

    min_start: float
    min_finish: float
    max_start: float
    max_finish: float

    @property
    def window(self) -> Tuple[float, float]:
        """``[min_start, max_finish]`` — the interval the job may occupy."""
        return (self.min_start, self.max_finish)


class ScheduleBounds:
    """Per-job analysis results with task- and graph-level aggregation."""

    def __init__(
        self,
        jobset: JobSet,
        min_start: List[float],
        min_finish: List[float],
        max_start: List[float],
        max_finish: List[float],
        converged: bool,
        sweeps: int,
    ):
        self._jobset = jobset
        self._min_start = min_start
        self._min_finish = min_finish
        self._max_start = max_start
        self._max_finish = max_finish
        #: Whether the fixed point stabilised before the sweep limit.
        self.converged = converged
        #: Number of sweeps the iteration took.
        self.sweeps = sweeps

    @property
    def jobset(self) -> JobSet:
        """The analyzed job set."""
        return self._jobset

    # ------------------------------------------------------------------
    # Job-level access
    # ------------------------------------------------------------------

    def job_bounds(self, job_id: JobId) -> JobBounds:
        """Bounds of one job."""
        index = self._jobset.job(job_id).index
        return self.bounds_at(index)

    def bounds_at(self, index: int) -> JobBounds:
        """Bounds of the job with the given dense index."""
        return JobBounds(
            min_start=self._min_start[index],
            min_finish=self._min_finish[index],
            max_start=self._max_start[index],
            max_finish=self._max_finish[index],
        )

    # ------------------------------------------------------------------
    # Task-level aggregation (Algorithm 1 interface)
    # ------------------------------------------------------------------

    def task_min_start(self, task_name: str) -> float:
        """``minStart`` over the task's first-hyperperiod jobs."""
        jobs = self._jobset.analyzed_jobs_of_task(task_name)
        if not jobs:
            raise AnalysisError(f"task {task_name!r} has no analyzed jobs")
        return min(self._min_start[job.index] for job in jobs)

    def task_max_finish(self, task_name: str) -> float:
        """``maxFinish`` over the task's first-hyperperiod jobs."""
        jobs = self._jobset.analyzed_jobs_of_task(task_name)
        if not jobs:
            raise AnalysisError(f"task {task_name!r} has no analyzed jobs")
        return max(self._max_finish[job.index] for job in jobs)

    # ------------------------------------------------------------------
    # Graph-level response times
    # ------------------------------------------------------------------

    def graph_wcrt(self, graph_name: str) -> float:
        """Worst-case response time of an application.

        The response time of an instance is the latest completion of any
        of its jobs relative to the instance release; the WCRT maximises
        over the instances of the first hyperperiod.
        """
        worst = None
        for job in self._jobset.analyzed_jobs:
            if job.graph_name != graph_name:
                continue
            response = self._max_finish[job.index] - job.release
            if worst is None or response > worst:
                worst = response
        if worst is None:
            raise AnalysisError(f"graph {graph_name!r} has no analyzed jobs")
        return worst

    def deadline_misses(self, include_graphs: Optional[Iterable[str]] = None) -> List[JobId]:
        """First-hyperperiod jobs whose worst-case finish exceeds the deadline."""
        included = None if include_graphs is None else set(include_graphs)
        misses: List[JobId] = []
        for job in self._jobset.analyzed_jobs:
            if included is not None and job.graph_name not in included:
                continue
            if self._max_finish[job.index] > job.abs_deadline + 1e-9:
                misses.append(job.job_id)
        return misses


class SchedBackend(Protocol):
    """Interface of a schedulability back-end usable by Algorithm 1.

    Any analysis that returns safe lower bounds on start times and safe
    upper bounds on finish times per job can serve as the ``sched``
    function (paper §3 explicitly allows swapping the back-end).
    """

    def analyze(self, jobset: JobSet) -> ScheduleBounds:
        """Compute safe execution-window bounds for every job."""
        ...


class WindowAnalysisBackend:
    """The default window-based interference analysis (see module docs)."""

    def __init__(self, max_sweeps: int = 200):
        if max_sweeps < 1:
            raise AnalysisError("max_sweeps must be >= 1")
        self._max_sweeps = max_sweeps

    def analyze(self, jobset: JobSet) -> ScheduleBounds:
        """Compute bounds for every job of the set."""
        jobs = jobset.jobs
        count = len(jobs)
        order = jobset.topo_order

        # ---- best case: no interference, best-case times ----
        min_start = [0.0] * count
        min_finish = [0.0] * count
        for index in order:
            job = jobs[index]
            earliest = job.release
            for pred_index, comm_best, _comm_worst, _on_demand in job.preds:
                arrival = min_finish[pred_index] + comm_best
                if arrival > earliest:
                    earliest = arrival
            min_start[index] = earliest
            min_finish[index] = earliest + job.bcet

        # ---- worst case: monotone window iteration ----
        max_finish = [0.0] * count
        arrival_of = [0.0] * count
        for index in order:
            job = jobs[index]
            latest = job.release
            for pred_index, _comm_best, comm_worst, _on_demand in job.preds:
                arrival = max_finish[pred_index] + comm_worst
                if arrival > latest:
                    latest = arrival
            arrival_of[index] = latest
            max_finish[index] = latest + job.wcet

        # Monotone Jacobi iteration over two sound bounds: the per-job
        # interference bound and the per-batch work-conservation bound.
        # Each sweep computes both from the previous state and raises
        # every value to max(old, min(job bound, batch bound)); the
        # sequence is nondecreasing and bounded, and at the fixed point
        # every value dominates the smaller of two safe bounds — hence is
        # itself safe (see the module docstring).
        batches = jobset.batches()
        converged = False
        sweeps = 0
        for sweeps in range(1, self._max_sweeps + 1):
            changed = False
            batch_cap = [float("inf")] * count
            for batch in batches:
                arrival = batch.release
                for pred_index, comm_worst in batch.external_preds:
                    candidate = max_finish[pred_index] + comm_worst
                    if candidate > arrival:
                        arrival = candidate
                window_start = min(min_start[i] for i in batch.members)
                window_end = max(max_finish[i] for i in batch.members)
                total = 0.0
                for i in batch.members:
                    total += jobs[i].wcet
                interference = 0.0
                for other in batch.interferers:
                    if (
                        min_start[other] < window_end
                        and max_finish[other] > window_start
                    ):
                        interference += jobs[other].wcet
                bound = arrival + total + interference
                for member in batch.members:
                    batch_cap[member] = bound

            new_finish = list(max_finish)
            for index in order:
                job = jobs[index]
                latest = job.release
                for pred_index, _comm_best, comm_worst, _on_demand in job.preds:
                    arrival = max_finish[pred_index] + comm_worst
                    if arrival > latest:
                        latest = arrival
                arrival_of[index] = latest
                pending_from = min_start[index]
                current = max_finish[index]
                interference = 0.0
                for other in jobset.higher_priority_on_same_pe(index):
                    if (
                        min_start[other] < current
                        and max_finish[other] > pending_from
                    ):
                        interference += jobs[other].wcet
                job_bound = latest + job.wcet + interference
                candidate = min(job_bound, batch_cap[index])
                if candidate > current + 1e-12:
                    new_finish[index] = candidate
                    changed = True
            max_finish = new_finish
            if not changed:
                converged = True
                break

        if not converged:
            # Trivially safe fallback: charge every higher-priority job on
            # the processor, independent of windows.  Two topological
            # passes stabilise the arrival terms.
            for _ in range(2):
                for index in order:
                    job = jobs[index]
                    latest = job.release
                    for pred_index, _comm_best, comm_worst, _on_demand in job.preds:
                        arrival = max_finish[pred_index] + comm_worst
                        if arrival > latest:
                            latest = arrival
                    arrival_of[index] = latest
                    interference = sum(
                        jobs[other].wcet
                        for other in jobset.higher_priority_on_same_pe(index)
                    )
                    max_finish[index] = latest + job.wcet + interference

        max_start = [max_finish[i] - jobs[i].wcet for i in range(count)]
        return ScheduleBounds(
            jobset,
            min_start,
            min_finish,
            max_start,
            max_finish,
            converged,
            sweeps,
        )
