"""Schedulability back-end — the ``sched`` function of Algorithm 1.

The paper's analysis wrapper is back-end agnostic: it only needs, for each
task, a safe *lower* bound on its start time (``minStart``) and a safe
*upper* bound on its completion time (``maxFinish``).  The authors use the
analytical method of Kim et al. (DAC'13, ref [9]); this package implements
an equivalent job-level, window-based interference analysis:

1. all task graphs are unrolled into *jobs* over two hyperperiods
   (:mod:`repro.sched.jobs`) — the second hyperperiod contributes
   interference to jobs near the boundary of the first;
2. best-case bounds are longest-path computations with best-case execution
   and communication times and *no* interference (a safe lower bound under
   any work-conserving scheduler);
3. worst-case bounds come from a monotone fixed-point iteration where each
   job's finish window grows with the worst-case interference from
   higher-priority jobs mapped on the same processor whose execution
   windows may overlap (:mod:`repro.sched.wcrt`).

Per-processor scheduling is fixed-priority preemptive; priorities are
assigned by criticality, then rate, then topological depth
(:mod:`repro.sched.priority`).
"""

from repro.sched.priority import assign_priorities
from repro.sched.comm import CommModel
from repro.sched.jobs import Job, JobId, JobSet, unroll
from repro.sched.wcrt import (
    JobBounds,
    SchedBackend,
    ScheduleBounds,
    WindowAnalysisBackend,
)
from repro.sched.fast import FastWindowAnalysisBackend
from repro.sched.holistic import HolisticAnalysisBackend

__all__ = [
    "assign_priorities",
    "CommModel",
    "Job",
    "JobId",
    "JobSet",
    "unroll",
    "JobBounds",
    "ScheduleBounds",
    "SchedBackend",
    "WindowAnalysisBackend",
    "FastWindowAnalysisBackend",
    "HolisticAnalysisBackend",
]
