"""Hyperperiod unrolling: task graphs to job sets.

Every task graph instance released in the analysis horizon becomes a set of
*jobs* (one per task) linked by the instance's channels.  The horizon spans
**two** hyperperiods: jobs of the first hyperperiod are the analysis
subjects, jobs of the second only contribute interference so that bounds
near the boundary remain safe.

Per paper §3, the system returns to the normal state at the end of the
hyperperiod; second-hyperperiod jobs therefore always keep their nominal
execution-time bounds, even when Algorithm 1 explores a critical-state
transition in the first hyperperiod.
"""

import hashlib
import struct
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Set, Tuple

from repro.errors import AnalysisError
from repro.model.application import ApplicationSet
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.sched.comm import CommModel
from repro.sched.priority import assign_priorities

#: A job is identified by its task name and the instance index of its graph.
JobId = Tuple[str, int]

#: Name of the virtual processor hosting message jobs when the
#: contention-aware bus model is enabled (see :func:`unroll`).
BUS_RESOURCE = "__bus__"


@dataclass(frozen=True)
class Batch:
    """All jobs of one graph instance on one processor (see
    :meth:`JobSet.batches`)."""

    #: Dense indices of the member jobs.
    members: Tuple[int, ...]
    #: ``(pred index, worst-case comm)`` for every out-of-batch dependency.
    external_preds: Tuple[Tuple[int, float], ...]
    #: Latest member release.
    release: float
    #: Same-processor jobs with higher priority than the weakest member.
    interferers: Tuple[int, ...]


@dataclass(frozen=True)
class Job:
    """One execution of a task within the analysis horizon."""

    index: int
    task_name: str
    graph_name: str
    instance: int
    release: float
    abs_deadline: float
    processor: str
    priority: int
    bcet: float
    wcet: float
    #: ``(predecessor job index, best-case comm, worst-case comm, on_demand)``
    #: tuples; ``on_demand`` marks passive-replication request edges.
    preds: Tuple[Tuple[int, float, float, bool], ...]
    #: Whether the job belongs to the first hyperperiod (analysis subject).
    analyzed: bool
    #: Whether the job's graph is droppable.
    droppable: bool

    @property
    def job_id(self) -> JobId:
        """The ``(task, instance)`` identifier."""
        return (self.task_name, self.instance)


class JobSet:
    """An immutable indexed collection of jobs plus platform context."""

    def __init__(
        self,
        jobs: Sequence[Job],
        hyperperiod: float,
        applications: ApplicationSet,
        mapping: Mapping,
        topo_order: Sequence[int],
        hyperperiods: int = 2,
        comm_token: str = "",
    ):
        self._jobs: Tuple[Job, ...] = tuple(jobs)
        self._hyperperiod = hyperperiod
        self._hyperperiods = hyperperiods
        self._applications = applications
        self._mapping = mapping
        self._comm_token = comm_token
        self._topo_order: Tuple[int, ...] = tuple(topo_order)
        self._by_id: Dict[JobId, int] = {
            job.job_id: job.index for job in self._jobs
        }
        self._by_task: Dict[str, List[int]] = {}
        for job in self._jobs:
            self._by_task.setdefault(job.task_name, []).append(job.index)
        #: Lazily computed digest of everything except execution-time
        #: bounds; shared by :meth:`with_bounds` clones.
        self._structure_digest: Optional[bytes] = None
        # Same-processor, higher-priority job indices, precomputed for the
        # interference iteration.
        by_pe: Dict[str, List[int]] = {}
        for job in self._jobs:
            by_pe.setdefault(job.processor, []).append(job.index)
        self._batches: Optional[Tuple[Batch, ...]] = None
        related = self._precedence_related()
        self._higher_priority: List[Tuple[int, ...]] = [()] * len(self._jobs)
        for indices in by_pe.values():
            ranked = sorted(indices, key=lambda i: self._jobs[i].priority)
            for position, job_index in enumerate(ranked):
                self._higher_priority[job_index] = tuple(
                    other
                    for other in ranked[:position]
                    if other not in related[job_index]
                )

    def batches(self) -> Tuple["Batch", ...]:
        """Work-conserving batches: same graph instance, same processor.

        All jobs of one graph instance mapped on one processor form a
        *batch*: every dependency of a member is either another member
        (and thus served on the same processor without idling) or
        external.  Once every member has been released and every external
        input has arrived, the processor finishes the whole batch after
        ``sum(member wcet)`` plus each interfering higher-priority job at
        most once — a bound that avoids charging the same interferer at
        every stage of a co-located chain.  The batch structure does not
        depend on execution-time bounds, so it is computed once and shared
        across :meth:`with_bounds` clones.
        """
        if self._batches is not None:
            return self._batches
        groups: Dict[Tuple[str, int, str], List[int]] = {}
        for job in self._jobs:
            key = (job.graph_name, job.instance, job.processor)
            groups.setdefault(key, []).append(job.index)
        batches: List[Batch] = []
        for key in sorted(groups):
            # Split the group at re-entrant points: if a member's external
            # input transitively depends on an earlier member (e.g. a
            # voter waiting for an off-processor replica of a co-located
            # task), the batch arrival would depend on its own members and
            # the bound would self-inflate.  Cutting there keeps every
            # sub-batch's external inputs independent of its members.
            members = groups[key]
            current: List[int] = []
            for index in members:
                reentrant = False
                current_set = set(current)
                for pred_index, _best, _worst, _on_demand in self._jobs[index].preds:
                    if pred_index in current_set:
                        continue
                    if self._ancestors[pred_index] & current_set:
                        reentrant = True
                        break
                if reentrant and current:
                    batches.append(self._make_batch(current, key[2]))
                    current = []
                current.append(index)
            if current:
                batches.append(self._make_batch(current, key[2]))
        self._batches = tuple(batches)
        return self._batches

    def _make_batch(self, members: List[int], processor: str) -> "Batch":
        member_set = set(members)
        external: List[Tuple[int, float]] = []
        for index in members:
            for pred_index, _best, worst, _on_demand in self._jobs[index].preds:
                if pred_index not in member_set:
                    external.append((pred_index, worst))
        release = max(self._jobs[i].release for i in members)
        weakest = max(self._jobs[i].priority for i in members)
        # An ancestor of any member completes no later than the batch
        # arrival (its effect travels through some external input), so it
        # can never execute inside the batch's busy interval.
        ancestors: Set[int] = set()
        for index in members:
            ancestors |= self._ancestors[index]
        candidates = tuple(
            other
            for other in range(len(self._jobs))
            if other not in member_set
            and other not in ancestors
            and self._jobs[other].processor == processor
            and self._jobs[other].priority < weakest
        )
        return Batch(
            members=tuple(members),
            external_preds=tuple(external),
            release=release,
            interferers=candidates,
        )

    def _precedence_related(self) -> List[Set[int]]:
        """Ancestors ∪ descendants of every job within its graph instance.

        A job's ancestors always complete before it arrives and its
        descendants cannot start before it completes, so neither can ever
        be *pending* concurrently with it — they are soundly excluded
        from the same-processor interference sets.
        """
        ancestors: List[Set[int]] = [set() for _ in self._jobs]
        for job in self._jobs:  # construction order is topological per instance
            mine = ancestors[job.index]
            for pred_index, _best, _worst, _on_demand in job.preds:
                mine.add(pred_index)
                mine.update(ancestors[pred_index])
        self._ancestors: List[Set[int]] = ancestors
        related: List[Set[int]] = [set(a) for a in ancestors]
        for job in self._jobs:
            for ancestor in ancestors[job.index]:
                related[ancestor].add(job.index)
        return related

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def jobs(self) -> Tuple[Job, ...]:
        """All jobs, indexed densely from 0."""
        return self._jobs

    @property
    def hyperperiod(self) -> float:
        """Hyperperiod of the application set."""
        return self._hyperperiod

    @property
    def horizon(self) -> float:
        """Length of the unrolled horizon."""
        return self._hyperperiods * self._hyperperiod

    @property
    def applications(self) -> ApplicationSet:
        """The (hardened) application set the jobs derive from."""
        return self._applications

    @property
    def mapping(self) -> Mapping:
        """The task-to-processor mapping in force."""
        return self._mapping

    @property
    def topo_order(self) -> Tuple[int, ...]:
        """Job indices in a precedence-compatible order."""
        return self._topo_order

    @property
    def comm_token(self) -> str:
        """Canonical identity of the comm model the set was unrolled with.

        Empty for the legacy flat model (fingerprints stay byte-stable);
        non-empty tokens enter :meth:`fingerprint` so two systems
        differing only in their comm configuration can never collide in
        the ScheduleCache.
        """
        return self._comm_token

    def __len__(self) -> int:
        return len(self._jobs)

    def job(self, job_id: JobId) -> Job:
        """Look up a job by ``(task, instance)``."""
        try:
            return self._jobs[self._by_id[job_id]]
        except KeyError:
            raise AnalysisError(f"no job {job_id!r} in the job set") from None

    def jobs_of_task(self, task_name: str) -> List[Job]:
        """All jobs of a task across the horizon."""
        return [self._jobs[i] for i in self._by_task.get(task_name, [])]

    def analyzed_jobs_of_task(self, task_name: str) -> List[Job]:
        """First-hyperperiod jobs of a task."""
        return [job for job in self.jobs_of_task(task_name) if job.analyzed]

    @property
    def analyzed_jobs(self) -> List[Job]:
        """All first-hyperperiod jobs."""
        return [job for job in self._jobs if job.analyzed]

    def higher_priority_on_same_pe(self, job_index: int) -> Tuple[int, ...]:
        """Indices of higher-priority jobs sharing the job's processor."""
        return self._higher_priority[job_index]

    # ------------------------------------------------------------------
    # Canonical identity
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Canonical digest of the analysis input.

        Two job sets with equal fingerprints are indistinguishable to any
        :class:`~repro.sched.wcrt.SchedBackend`: same jobs (names, graph
        membership, releases, deadlines, processors, priorities, flags),
        same precedence edges with the same channel latencies, same
        iteration order, and same per-job ``[bcet, wcet]`` bounds — so a
        :class:`~repro.sched.wcrt.ScheduleBounds` computed for one is
        valid verbatim for the other.  Floats enter the digest via their
        exact hex encoding; no rounding is involved.

        The structural part (everything except the execution-time bounds)
        is hashed once and shared across :meth:`with_bounds` clones, so a
        fingerprint costs one pass over the bcet/wcet vectors on the
        Algorithm-1 hot path.
        """
        digest = hashlib.sha256(self._structure())
        pack = struct.pack
        for job in self._jobs:
            digest.update(pack("<dd", job.bcet, job.wcet))
        return digest.hexdigest()

    def _structure(self) -> bytes:
        if self._structure_digest is None:
            parts: List[str] = [
                repr((self._hyperperiod.hex(), self._hyperperiods)),
                repr(self._topo_order),
            ]
            if self._comm_token:
                parts.append(f"comm={self._comm_token}")
            for job in self._jobs:
                parts.append(
                    repr(
                        (
                            job.task_name,
                            job.graph_name,
                            job.instance,
                            job.release.hex(),
                            job.abs_deadline.hex(),
                            job.processor,
                            job.priority,
                            job.analyzed,
                            job.droppable,
                            tuple(
                                (pred, best.hex(), worst.hex(), on_demand)
                                for pred, best, worst, on_demand in job.preds
                            ),
                        )
                    )
                )
            self._structure_digest = hashlib.sha256(
                "\n".join(parts).encode("utf-8")
            ).digest()
        return self._structure_digest

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def with_bounds(self, overrides: TMapping[JobId, Tuple[float, float]]) -> "JobSet":
        """A copy where the listed jobs carry new ``(bcet, wcet)`` bounds.

        Only first-hyperperiod jobs may be overridden: the system is back
        to the normal state in the second hyperperiod (paper §3).
        """
        if not overrides:
            return self
        new_jobs: List[Job] = list(self._jobs)
        for job_id, (bcet, wcet) in overrides.items():
            index = self._by_id.get(job_id)
            if index is None:
                raise AnalysisError(f"cannot override unknown job {job_id!r}")
            job = self._jobs[index]
            if not job.analyzed:
                raise AnalysisError(
                    f"job {job_id!r} lies in the second hyperperiod and must "
                    f"keep nominal bounds"
                )
            if bcet < 0 or wcet < bcet:
                raise AnalysisError(
                    f"invalid bounds override for {job_id!r}: [{bcet}, {wcet}]"
                )
            new_jobs[index] = replace(job, bcet=bcet, wcet=wcet)
        clone = object.__new__(JobSet)
        clone._jobs = tuple(new_jobs)
        clone._hyperperiod = self._hyperperiod
        clone._hyperperiods = self._hyperperiods
        clone._applications = self._applications
        clone._mapping = self._mapping
        clone._comm_token = self._comm_token
        clone._topo_order = self._topo_order
        clone._by_id = self._by_id
        clone._by_task = self._by_task
        clone._higher_priority = self._higher_priority
        clone._batches = self._batches
        clone._ancestors = self._ancestors
        clone._structure_digest = self._structure_digest
        return clone


def unroll(
    applications: ApplicationSet,
    mapping: Mapping,
    architecture: Architecture,
    comm: Optional[CommModel] = None,
    priorities: Optional[Dict[str, int]] = None,
    bounds: Optional[TMapping[str, Tuple[float, float]]] = None,
    hyperperiods: int = 2,
    policy: str = "fp",
    bus_contention: bool = False,
) -> JobSet:
    """Unroll an application set into a :class:`JobSet` over two hyperperiods.

    Parameters
    ----------
    applications:
        The (typically hardened) application set ``T'``.
    mapping:
        Total task-to-processor mapping over ``T'``.
    architecture:
        The platform; provides processor speeds and the interconnect.
    comm:
        Channel latency model; defaults to the uncontended latency model of
        the platform interconnect.  An *unbound*
        :class:`repro.comm.CommBackend` (anything exposing ``bind``) is
        bound here against the hardened application set, so replica and
        voter channels participate in its contention analysis; bound
        models answering ``channel_bounds`` are queried per channel and
        their ``fingerprint_token`` enters the job-set fingerprint.
    priorities:
        Task priorities (smaller = higher); defaults to
        :func:`repro.sched.priority.assign_priorities`.
    bounds:
        Optional per-task ``(bcet, wcet)`` overrides applied to *all*
        instances, e.g. the nominal bounds of a hardened system (detection
        overheads included).  Tasks not listed use their model values.
    hyperperiods:
        Number of hyperperiods to unroll.  The default of 2 is what the
        analyses need (the second hyperperiod shields the first from
        boundary effects); the simulator unrolls exactly what it runs.
    policy:
        Per-processor scheduling policy: ``"fp"`` (fixed priority from
        ``priorities``, default) or ``"edf"`` (earliest absolute deadline
        first).  Jobs execute exactly once, so a static per-job rank by
        absolute deadline *is* preemptive EDF — both the analysis and the
        simulator follow the resulting job priorities.
    bus_contention:
        When ``True``, every sized cross-processor transfer becomes a
        *message job* on a virtual bus resource named
        :data:`BUS_RESOURCE`, arbitrated by the priority of its producer:
        concurrent transfers then interfere with each other instead of
        enjoying reserved bandwidth.  Analysis-only — the simulator keeps
        the reservation (latency) model, which the contention-aware
        bounds safely dominate.
    """
    if policy not in ("fp", "edf"):
        raise AnalysisError(f"policy must be 'fp' or 'edf', got {policy!r}")
    mapping.validate(applications, architecture)
    if comm is None:
        comm = CommModel(architecture.interconnect)
    elif hasattr(comm, "bind"):
        comm = comm.bind(applications, mapping, architecture)
    channel_bounds = getattr(comm, "channel_bounds", None)
    comm_token = getattr(comm, "fingerprint_token", "")
    if priorities is None:
        priorities = assign_priorities(applications)
    if hyperperiods < 1:
        raise AnalysisError(f"hyperperiods must be >= 1, got {hyperperiods}")

    hyperperiod = applications.hyperperiod
    horizon = hyperperiods * hyperperiod

    jobs: List[Job] = []
    topo_order: List[int] = []
    index_of: Dict[JobId, int] = {}

    # Unique per-job priorities: (task priority, release, name) rank for
    # fixed priority; (absolute deadline, depth, name) rank for EDF, with
    # topological depth breaking deadline ties so pipelines drain in order.
    prio_keys: List[Tuple[float, float, str, JobId]] = []
    for graph in applications.graphs:
        instance_count = _instance_count(horizon, graph.period, graph.name)
        for instance in range(instance_count):
            release = instance * graph.period
            for task in graph.tasks:
                if policy == "edf":
                    key = (
                        release + graph.deadline,
                        float(graph.depth(task.name)),
                        task.name,
                        (task.name, instance),
                    )
                else:
                    key = (
                        float(priorities[task.name]),
                        release,
                        task.name,
                        (task.name, instance),
                    )
                prio_keys.append(key)
    prio_keys.sort()
    task_rank = {key[3]: rank for rank, key in enumerate(prio_keys)}

    def needs_message(channel, dst_name: str) -> bool:
        return (
            bus_contention
            and channel.size > 0
            and mapping[channel.src] != mapping[dst_name]
        )

    # Final dense ranks, interleaving message jobs directly after the
    # producing task job (a message inherits its producer's urgency).
    combined_keys: List[Tuple[int, int, str, JobId]] = []
    for graph in applications.graphs:
        instance_count = _instance_count(horizon, graph.period, graph.name)
        for instance in range(instance_count):
            for task_name in graph.topological_order():
                combined_keys.append(
                    (task_rank[(task_name, instance)], 0, task_name,
                     (task_name, instance))
                )
                for channel in graph.out_channels(task_name):
                    if needs_message(channel, channel.dst):
                        message = _message_name(channel.src, channel.dst)
                        combined_keys.append(
                            (task_rank[(task_name, instance)], 1, message,
                             (message, instance))
                        )
    combined_keys.sort()
    if len({key[3] for key in combined_keys}) != len(combined_keys):
        raise AnalysisError(
            "job identifier collision — with bus_contention enabled, task "
            "names must not collide with generated message names "
            "('src>dst')"
        )
    job_priority = {key[3]: rank for rank, key in enumerate(combined_keys)}

    for graph in applications.graphs:
        instance_count = _instance_count(horizon, graph.period, graph.name)
        for instance in range(instance_count):
            release = instance * graph.period
            analyzed = release < hyperperiod
            for task_name in graph.topological_order():
                task = graph.task(task_name)
                processor = architecture.processor(mapping[task_name])
                if bounds is not None and task_name in bounds:
                    bcet, wcet = bounds[task_name]
                else:
                    bcet, wcet = task.bcet, task.wcet
                preds: List[Tuple[int, float, float, bool]] = []
                for channel in graph.in_channels(task_name):
                    pred_id = (channel.src, instance)
                    if needs_message(channel, task_name):
                        # Materialise the transfer as a bus job.
                        transfer = architecture.interconnect.transfer_time(
                            channel.size
                        )
                        message = _message_name(channel.src, task_name)
                        message_job = Job(
                            index=len(jobs),
                            task_name=message,
                            graph_name=graph.name,
                            instance=instance,
                            release=release,
                            abs_deadline=release + graph.deadline,
                            processor=BUS_RESOURCE,
                            priority=job_priority[(message, instance)],
                            bcet=transfer,
                            wcet=transfer,
                            preds=((index_of[pred_id], 0.0, 0.0, False),),
                            analyzed=analyzed,
                            droppable=graph.droppable,
                        )
                        index_of[message_job.job_id] = message_job.index
                        jobs.append(message_job)
                        topo_order.append(message_job.index)
                        preds.append(
                            (message_job.index, 0.0, 0.0, channel.on_demand)
                        )
                        continue
                    same_pe = mapping[channel.src] == mapping[task_name]
                    if channel_bounds is not None:
                        best, worst = channel_bounds(
                            channel.src, task_name, channel.size, same_pe
                        )
                    else:
                        best = comm.best_case(channel.size, same_pe)
                        worst = comm.worst_case(channel.size, same_pe)
                    preds.append(
                        (index_of[pred_id], best, worst, channel.on_demand)
                    )
                job = Job(
                    index=len(jobs),
                    task_name=task_name,
                    graph_name=graph.name,
                    instance=instance,
                    release=release,
                    abs_deadline=release + graph.deadline,
                    processor=processor.name,
                    priority=job_priority[(task_name, instance)],
                    bcet=processor.scale_time(bcet),
                    wcet=processor.scale_time(wcet),
                    preds=tuple(preds),
                    analyzed=analyzed,
                    droppable=graph.droppable,
                )
                index_of[job.job_id] = job.index
                jobs.append(job)
                topo_order.append(job.index)

    return JobSet(
        jobs,
        hyperperiod,
        applications,
        mapping,
        topo_order,
        hyperperiods,
        comm_token=comm_token,
    )


def _message_name(src: str, dst: str) -> str:
    """Synthetic task name of the bus job for channel ``src -> dst``."""
    return f"{src}>{dst}"


def _instance_count(horizon: float, period: float, graph_name: str) -> int:
    """Number of instances of a graph released in the horizon."""
    count = horizon / period
    rounded = round(count)
    if abs(count - rounded) > 1e-9:
        raise AnalysisError(
            f"graph {graph_name!r}: horizon {horizon} is not an integral "
            f"multiple of period {period}"
        )
    return int(rounded)
