"""Fixed-priority assignment for the per-processor schedulers.

The paper fixes no particular local policy ("tasks mapped on each PE are
locally scheduled according to the scheduling policy of that PE"); this
implementation uses fixed-priority preemptive scheduling with a
deterministic rate-monotonic assignment:

1. rate — tasks of shorter-period graphs beat longer-period ones;
2. criticality — on equal periods, non-droppable tasks win;
3. topological depth — upstream tasks beat downstream tasks of the same
   graph, which lets pipelines drain in order;
4. name — a total order tie-breaker so the assignment is reproducible.

Priorities are deliberately *not* stratified by criticality: in a
mixed-criticality system, short-period low-criticality tasks legitimately
preempt long-period critical ones — which is exactly why dropping them in
the critical state recovers schedulability for the critical applications
(the paper's Figure 1 and §5.2).  Smaller numbers mean higher priority.
"""

from typing import Dict

from repro.model.application import ApplicationSet


def assign_priorities(applications: ApplicationSet) -> Dict[str, int]:
    """Map every task name to a unique priority (0 = highest)."""
    keys = []
    for graph in applications.graphs:
        for task in graph.tasks:
            keys.append(
                (
                    graph.period,
                    1 if graph.droppable else 0,
                    graph.depth(task.name),
                    task.name,
                )
            )
    keys.sort()
    order = {key[3]: index for index, key in enumerate(keys)}
    return order
