"""Holistic (jitter-propagation) WCRT analysis — an alternative back-end.

The classic distributed-systems analysis of Tindell & Clark: each task's
worst-case response time is computed by a fixed-point busy-period
equation over its same-processor higher-priority tasks, whose release
*jitter* inherits the response time of their predecessors:

    ``R_i = C_i + Σ_{j ∈ hp(i)} ceil((R_i + J_j) / T_j) · C_j``
    ``J_i = max over preds p (R_p + comm_p)`` (offset from the release)

This back-end exists for two reasons.  First, the paper claims Algorithm
1 is back-end agnostic ("any other schedulability analysis can be
alternatively used"), and a second *real* analysis family demonstrates
it.  Second, it is the classic point of comparison: task-level ceil-based
interference cannot see that two jobs of one hyperperiod never overlap,
so it is typically (and sometimes dramatically) more pessimistic than the
job-level window analysis — `benchmarks/bench_ablation.py` quantifies
the gap.

Scope: fixed-priority preemptive scheduling only (job priorities must be
consistent across instances of a task, which rules out ``policy="edf"``),
implicit task releases at the graph release plus predecessor jitter.
"""

import math
from typing import Dict, Optional, Tuple

from repro.errors import AnalysisError
from repro.obs.metrics import metrics
from repro.obs.trace import annotate, span as trace_span
from repro.sched.jobs import JobSet
from repro.sched.wcrt import ScheduleBounds

#: Fixed-point iteration cap (per global sweep and per busy-period loop).
_MAX_ROUNDS = 200


class HolisticAnalysisBackend:
    """Task-level holistic analysis adapted to the job-set interface.

    Works on the same :class:`~repro.sched.jobs.JobSet` as the window
    back-end: task parameters (period, WCET, priority, processor,
    precedence) are recovered from the first-hyperperiod jobs, response
    times computed task-wise, and the resulting bounds replicated onto
    every job instance.

    ``analyze`` optionally accepts *seed* bounds from an earlier run on a
    structurally identical job set (same tasks, processors, periods,
    priority ranks, and precedence edges).  When the new per-task WCETs
    dominate the seed's, the seed's ``(jitter, response)`` solution lies
    at or below the new least fixed point, so iteration may start there
    instead of from zero and still converge to the *same* answer — the
    fixed-point operator is monotone and every update only grows values.
    This is exactly the shape of Algorithm 1's transition runs, which
    re-analyze the normal-state job set with widened execution bounds.
    Incompatible seeds are rejected (counted, never unsound).
    """

    #: Advertises the optional ``seed=`` keyword to the analysis layer.
    supports_warm_start = True

    def __init__(self, warm_start: bool = True):
        #: Master switch; ``seed`` arguments are ignored when ``False``.
        self._warm_start = warm_start

    def analyze(
        self, jobset: JobSet, seed: Optional[ScheduleBounds] = None
    ) -> ScheduleBounds:
        """Compute safe per-job bounds via task-level holistic analysis."""
        tasks = self._task_view(jobset)

        # Best case: interference-free longest path (same as the window
        # back-end; valid under any work-conserving scheduler).
        count = len(jobset)
        jobs = jobset.jobs
        min_start = [0.0] * count
        min_finish = [0.0] * count
        for index in jobset.topo_order:
            job = jobs[index]
            earliest = job.release
            for pred, comm_best, _worst, _on_demand in job.preds:
                arrival = min_finish[pred] + comm_best
                if arrival > earliest:
                    earliest = arrival
            min_start[index] = earliest
            min_finish[index] = earliest + job.bcet

        # Worst case: global fixed point over (jitter, response) pairs.
        # Overloaded processors have no finite busy period; responses are
        # capped at a value far beyond any deadline, which surfaces as a
        # (correctly) infeasible verdict instead of divergence.
        cap = 10.0 * jobset.horizon + sum(
            info["wcet"] for info in tasks.values()
        )
        self._cap = cap
        signature = self._signature(tasks)
        registry = metrics()
        jitter: Dict[str, float] = {name: 0.0 for name in tasks}
        response: Dict[str, float] = {
            name: info["wcet"] for name, info in tasks.items()
        }
        seeded = False
        if seed is not None and self._warm_start:
            state = getattr(seed, "holistic_state", None)
            if state is not None and self._seed_compatible(state, signature, tasks):
                # The seed solved a structurally identical system with
                # pointwise-smaller WCETs: its fixed point is a sound
                # starting guess below the new least fixed point.
                for name in tasks:
                    jitter[name] = state["jitter"][name]
                    response[name] = max(response[name], state["response"][name])
                seeded = True
                registry.counter("analysis.warmstart.seeded").inc()
                annotate(warmstart="seeded")
            else:
                registry.counter("analysis.warmstart.rejected").inc()
                annotate(warmstart="rejected")
        with trace_span(
            "sched.holistic.fixed_point", tasks=len(tasks), warm=seeded
        ) as fp_span:
            for _round in range(_MAX_ROUNDS):
                changed = False
                for name, info in tasks.items():
                    new_jitter = 0.0
                    for pred_name, comm_worst in info["preds"]:
                        candidate = (
                            jitter[pred_name] + response[pred_name] + comm_worst
                        )
                        if candidate > new_jitter:
                            new_jitter = candidate
                    new_jitter = min(new_jitter, cap)
                    if new_jitter > jitter[name] + 1e-12:
                        jitter[name] = new_jitter
                        changed = True
                    new_response = self._busy_period(name, info, tasks, jitter)
                    if new_response > response[name] + 1e-12:
                        response[name] = new_response
                        changed = True
                if not changed:
                    break
            else:
                raise AnalysisError("holistic analysis did not converge")
            fp_span.set_attribute("sweeps", _round + 1)

        registry.counter("sched.holistic.invocations").inc()
        registry.counter("sched.holistic.sweeps_total").inc(_round + 1)
        registry.histogram("sched.holistic.sweeps").observe(_round + 1)
        if seeded:
            registry.histogram("analysis.warmstart.sweeps").observe(_round + 1)

        # Project task-level results onto jobs: finish <= release +
        # jitter (latest effective release offset) + response.
        max_finish = [0.0] * count
        for job in jobs:
            name = job.task_name
            max_finish[job.index] = job.release + jitter[name] + response[name]
        max_start = [max_finish[i] - jobs[i].wcet for i in range(count)]
        bounds = ScheduleBounds(
            jobset, min_start, min_finish, max_start, max_finish,
            converged=True, sweeps=_round + 1,
        )
        # Carry the solved fixed point so a later run on a widened system
        # can warm-start from it.
        bounds.holistic_state = {
            "signature": signature,
            "wcet": {name: info["wcet"] for name, info in tasks.items()},
            "jitter": dict(jitter),
            "response": dict(response),
        }
        return bounds

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _signature(tasks: Dict[str, dict]) -> Tuple:
        """Everything the fixed point depends on except the WCETs."""
        return tuple(
            sorted(
                (
                    name,
                    info["processor"],
                    info["period"],
                    info["rank"],
                    tuple(info["preds"]),
                )
                for name, info in tasks.items()
            )
        )

    @staticmethod
    def _seed_compatible(
        state: dict, signature: Tuple, tasks: Dict[str, dict]
    ) -> bool:
        """Whether a seed's fixed point lies below the new one.

        Requires an identical structure (tasks, processors, periods,
        priority ranks, precedence edges with latencies) and per-task
        WCET domination — the monotone operator then maps the seed to a
        value still below the new least fixed point, so iteration from
        it converges to exactly the cold-start answer.
        """
        if state.get("signature") != signature:
            return False
        seed_wcet = state["wcet"]
        return all(
            info["wcet"] >= seed_wcet[name] - 1e-12
            for name, info in tasks.items()
        )

    def _task_view(self, jobset: JobSet) -> Dict[str, dict]:
        """Recover per-task parameters from the job set.

        The task rank is taken from the first instance — valid under the
        default ``policy="fp"``, whose job ranks are instance-consistent
        by construction (task priority first, release second).
        """
        tasks: Dict[str, dict] = {}
        first_jobs: Dict[str, object] = {}
        for job in jobset.analyzed_jobs:
            info = tasks.get(job.task_name)
            if info is None:
                period = jobset.applications.graph(job.graph_name).period
                info = {
                    "wcet": job.wcet,
                    "processor": job.processor,
                    "period": period,
                    "priority": job.priority,
                    "preds": [],
                }
                tasks[job.task_name] = info
                first_jobs[job.task_name] = job
                for pred, _best, comm_worst, _on_demand in job.preds:
                    info["preds"].append(
                        (jobset.jobs[pred].task_name, comm_worst)
                    )
            else:
                info["wcet"] = max(info["wcet"], job.wcet)
        # Task priority = priority of the first instance; verify the
        # relative order is instance-independent enough for FP analysis.
        ranked = sorted(tasks, key=lambda n: tasks[n]["priority"])
        for position, name in enumerate(ranked):
            tasks[name]["rank"] = position
        return tasks

    def _busy_period(
        self,
        name: str,
        info: dict,
        tasks: Dict[str, dict],
        jitter: Dict[str, float],
    ) -> float:
        """Classic response-time fixed point with jittered interference."""
        own = info["wcet"]
        interferer_names = [
            other_name
            for other_name, other in tasks.items()
            if other_name != name
            and other["processor"] == info["processor"]
            and other["rank"] < info["rank"]
        ]
        response = own
        for _ in range(_MAX_ROUNDS):
            demand = own
            for other_name in interferer_names:
                other = tasks[other_name]
                demand += (
                    math.ceil(
                        (response + jitter[other_name]) / other["period"] - 1e-12
                    )
                    * other["wcet"]
                )
            if demand <= response + 1e-12:
                return response
            if demand >= self._cap:
                return self._cap
            response = demand
        return min(response, self._cap)