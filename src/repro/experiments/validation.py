"""Safety validation: the analyses vs. ground-truth simulation.

Quantifies §5.1's central claim on randomly generated systems: for every
application the Proposed bound must dominate the Monte-Carlo maximum, and
the Naive bound must dominate Proposed.  The printed *gap* columns show
how much head-room each bound leaves over the best simulated evidence —
tightness, not safety, is where analyses differ.
"""

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.benchgen.tgff import GraphShape, TgffConfig, generate_problem
from repro.core import MixedCriticalityAnalysis, NaiveAnalysis
from repro.dse.chromosome import random_chromosome
from repro.dse.repair import repair
from repro.hardening.transform import harden
from repro.sim import MonteCarloEstimator, Simulator


@dataclass(frozen=True)
class ValidationRow:
    """One application of one random system."""

    system: int
    graph: str
    dropped: bool
    simulated: Optional[float]
    proposed: float
    naive: float

    @property
    def safe(self) -> bool:
        """Proposed >= simulated and Naive >= Proposed (the §5.1 claims)."""
        if self.naive < self.proposed - 1e-6:
            return False
        if self.simulated is None or self.dropped:
            return True
        return self.proposed >= self.simulated - 1e-6

    @property
    def proposed_gap(self) -> Optional[float]:
        """``proposed / simulated`` — the tightness of the safe bound."""
        if self.simulated is None or self.simulated <= 0:
            return None
        return self.proposed / self.simulated


def run_validation(
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    profiles: int = 100,
) -> List[ValidationRow]:
    """Cross-validate analyses against simulation on random systems."""
    rows: List[ValidationRow] = []
    for seed in seeds:
        problem = generate_problem(
            seed=seed,
            critical_graphs=1,
            droppable_graphs=2,
            processors=3,
            config=TgffConfig(
                shape=GraphShape(min_tasks=2, max_tasks=4, min_layers=1, max_layers=3),
                period_slack_range=(2.5, 4.0),
            ),
            name_prefix=f"val{seed}",
        )
        rng = random.Random(seed)
        chromosome = repair(random_chromosome(problem, rng), problem, rng)
        design = chromosome.decode(problem)
        hardened = harden(problem.applications, design.plan)

        proposed = MixedCriticalityAnalysis().analyze(
            hardened, problem.architecture, design.mapping, design.dropped
        )
        naive = NaiveAnalysis().analyze(
            hardened, problem.architecture, design.mapping, design.dropped
        )
        simulator = Simulator(
            hardened,
            problem.architecture,
            design.mapping,
            dropped=tuple(design.dropped),
        )
        estimate = MonteCarloEstimator(simulator, max_faults=4).estimate(
            profiles=profiles, seed=seed
        )
        for graph in hardened.applications.graphs:
            rows.append(
                ValidationRow(
                    system=seed,
                    graph=graph.name,
                    dropped=graph.name in design.dropped,
                    simulated=estimate.worst_response.get(graph.name),
                    proposed=proposed.wcrt_of(graph.name),
                    naive=naive.wcrt_of(graph.name),
                )
            )
    return rows


def format_validation(rows: List[ValidationRow]) -> str:
    """Render the validation table."""
    lines = ["Safety validation: analyses vs Monte-Carlo simulation"]
    lines.append(
        f"{'sys':>4} | {'graph':>12} | {'WC-Sim':>9} | {'Proposed':>9} | "
        f"{'Naive':>9} | {'gap':>5} | safe"
    )
    lines.append("-" * 68)
    for row in rows:
        simulated = "-" if row.simulated is None else f"{row.simulated:9.1f}"
        gap = row.proposed_gap
        gap_text = "-" if gap is None else f"{gap:5.2f}"
        tag = " (dropped)" if row.dropped else ""
        lines.append(
            f"{row.system:>4} | {row.graph:>12} | {simulated:>9} | "
            f"{row.proposed:9.1f} | {row.naive:9.1f} | {gap_text:>5} | "
            f"{'yes' if row.safe else 'NO'}{tag}"
        )
    violations = [r for r in rows if not r.safe]
    lines.append("")
    lines.append(
        f"{len(rows)} application verdicts, {len(violations)} safety violation(s)"
    )
    return "\n".join(lines)
