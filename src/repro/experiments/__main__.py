"""Command-line entry point: ``python -m repro.experiments <experiment>``.

Experiments: ``table2``, ``sec52-power``, ``sec52-ratio``, ``fig5``,
``scaling``, or ``all``.  ``--quick`` shrinks the budgets for a fast
smoke run; ``--full`` uses paper-scale budgets (slow).
"""

import argparse
import sys

from repro.obs.logging import configure as configure_logging
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics

from repro.experiments.dropping import (
    format_power_rows,
    format_ratio_rows,
    run_power_comparison,
    run_dropping_ratios,
)
from repro.experiments.pareto import format_front, run_fig5
from repro.experiments.scaling import run_scaling
from repro.experiments.validation import format_validation, run_validation
from repro.experiments.tradeoff import format_tradeoff, run_tradeoff
from repro.experiments.table2 import format_table2, run_table2

EXPERIMENTS = (
    "table2",
    "sec52-power",
    "sec52-ratio",
    "fig5",
    "scaling",
    "validate",
    "tradeoff",
    "all",
)

_LOG = get_logger("experiments")


def _budget(args):
    if args.quick:
        return {"profiles": 300, "generations": 10, "population": 16}
    if args.full:
        return {"profiles": 10000, "generations": 5000, "population": 100}
    return {"profiles": 2000, "generations": 40, "population": 32}


def main(argv=None) -> int:
    """Run the requested experiment(s) and print the paper-style tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--quick", action="store_true", help="small budgets")
    parser.add_argument(
        "--full", action="store_true", help="paper-scale budgets (very slow)"
    )
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="repro.* logger verbosity (stderr)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the metrics registry as JSON when the run finishes",
    )
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    budget = _budget(args)
    if args.metrics_out:
        metrics().reset()

    chosen = (
        ["table2", "sec52-power", "sec52-ratio", "fig5", "scaling", "validate", "tradeoff"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in chosen:
        _LOG.info("running experiment %s", kv(experiment=name, **budget))
        timer_context = metrics().timer(f"experiments.{name}_seconds").time()
        timer_context.__enter__()
        if name == "table2":
            cells = run_table2(profiles=budget["profiles"], seed=args.seed)
            print(format_table2(cells))
        elif name == "sec52-power":
            rows = run_power_comparison(
                generations=budget["generations"],
                population=budget["population"],
                seed=args.seed,
            )
            print(format_power_rows(rows))
        elif name == "sec52-ratio":
            rows = run_dropping_ratios(
                generations=max(10, budget["generations"] // 2),
                population=budget["population"],
                seed=args.seed,
            )
            print(format_ratio_rows(rows))
        elif name == "fig5":
            result = run_fig5(
                generations=budget["generations"],
                population=budget["population"],
                seed=args.seed,
            )
            print(format_front(result))
        elif name == "scaling":
            rows = run_scaling()
            print("Algorithm 1 scaling (tasks, transitions, seconds):")
            for row in rows:
                print(f"  |V'|={row.tasks:4d} transitions={row.transitions:4d} {row.seconds:8.3f}s")
        elif name == "validate":
            rows = run_validation(profiles=max(50, budget["profiles"] // 20))
            print(format_validation(rows))
        elif name == "tradeoff":
            print(format_tradeoff(run_tradeoff()))
        timer_context.__exit__(None, None, None)
        _LOG.info(
            "experiment done %s",
            kv(
                experiment=name,
                seconds=metrics().timer(f"experiments.{name}_seconds").total,
            ),
        )
        print()
    if args.metrics_out:
        metrics().write_json(
            args.metrics_out, extra={"experiments": chosen}
        )
        _LOG.info("wrote metrics report to %s", args.metrics_out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
