"""Experiment harnesses regenerating the paper's tables and figures.

* :mod:`repro.experiments.table2` — Table 2: WCRT of the two critical
  Cruise applications under three sample mappings, for Adhoc / WC-Sim /
  Proposed / Naive;
* :mod:`repro.experiments.dropping` — §5.2: optimized power with vs
  without task dropping, and the feasible-only-with-dropping ratios;
* :mod:`repro.experiments.pareto` — Figure 5: the power/service Pareto
  front of DT-med;
* :mod:`repro.experiments.scaling` — the §3 complexity profile of
  Algorithm 1 over growing task counts;
* :mod:`repro.experiments.validation` — the §5.1 safety cross-check on
  random systems (analyses vs Monte-Carlo ground truth).

Run from the command line::

    python -m repro.experiments table2
    python -m repro.experiments sec52-power --quick
    python -m repro.experiments sec52-ratio
    python -m repro.experiments fig5
"""

from repro.experiments.table2 import Table2Cell, run_table2, format_table2
from repro.experiments.dropping import (
    DroppingPowerRow,
    DroppingRatioRow,
    format_power_rows,
    format_ratio_rows,
    run_power_comparison,
    run_dropping_ratios,
)
from repro.experiments.pareto import format_front, run_fig5
from repro.experiments.scaling import ScalingRow, run_scaling
from repro.experiments.validation import (
    ValidationRow,
    format_validation,
    run_validation,
)
from repro.experiments.tradeoff import (
    TradeoffRow,
    format_tradeoff,
    run_tradeoff,
)

__all__ = [
    "Table2Cell",
    "run_table2",
    "format_table2",
    "DroppingPowerRow",
    "DroppingRatioRow",
    "run_power_comparison",
    "run_dropping_ratios",
    "format_power_rows",
    "format_ratio_rows",
    "run_fig5",
    "format_front",
    "ScalingRow",
    "run_scaling",
    "ValidationRow",
    "run_validation",
    "format_validation",
    "TradeoffRow",
    "run_tradeoff",
    "format_tradeoff",
]
