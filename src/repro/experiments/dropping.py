"""§5.2 — the effect of task dropping.

Two studies:

* **power** — optimise each benchmark twice, once with dropping enabled
  and once with ``T_d`` forced empty, and compare the best feasible
  power (the paper reports 14.66 % / 16.16 % / 18.52 % more power
  without dropping for DT-med / DT-large / Cruise);
* **ratio** — track every explored solution and report the share that is
  feasible with its drop set but infeasible without (paper: 0.02 %
  Synth-1, 0.685 % Synth-2, 29.00 % DT-med, 22.49 % DT-large, 99.98 %
  Cruise), along with the share of re-execution in the applied
  hardenings.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dse import Explorer, ExplorerConfig
from repro.suites import get_benchmark

POWER_BENCHMARKS = ("dt-med", "dt-large", "cruise")
RATIO_BENCHMARKS = ("synth-1", "synth-2", "dt-med", "dt-large", "cruise")


@dataclass(frozen=True)
class DroppingPowerRow:
    """Optimized power with vs without dropping for one benchmark."""

    benchmark: str
    power_with_dropping: Optional[float]
    power_without_dropping: Optional[float]

    @property
    def extra_power_percent(self) -> Optional[float]:
        """How much more power the no-dropping optimum spends."""
        if not self.power_with_dropping or self.power_without_dropping is None:
            return None
        return 100.0 * (
            self.power_without_dropping / self.power_with_dropping - 1.0
        )


@dataclass(frozen=True)
class DroppingRatioRow:
    """Feasible-only-with-dropping statistics for one benchmark."""

    benchmark: str
    evaluations: int
    feasible: int
    dropping_gain: int
    reexecution_share: float

    @property
    def ratio_over_all(self) -> float:
        """The paper's metric: gain over all explored solutions."""
        if self.evaluations == 0:
            return 0.0
        return self.dropping_gain / self.evaluations

    @property
    def ratio_over_feasible(self) -> float:
        """Budget-independent variant: gain over feasible solutions."""
        if self.feasible == 0:
            return 0.0
        return self.dropping_gain / self.feasible


def _config(
    generations: int,
    population: int,
    seed: int,
    track: bool = False,
    disable_dropping: bool = False,
) -> ExplorerConfig:
    return ExplorerConfig.from_options(
        population=population,
        generations=generations,
        seed=seed,
        track_dropping_gain=track,
        disable_dropping=disable_dropping,
    )


def run_power_comparison(
    benchmarks: Sequence[str] = POWER_BENCHMARKS,
    generations: int = 40,
    population: int = 32,
    seed: int = 2014,
) -> List[DroppingPowerRow]:
    """Optimise with and without dropping; compare best feasible power."""
    rows: List[DroppingPowerRow] = []
    for name in benchmarks:
        benchmark = get_benchmark(name)
        with_drop = Explorer(
            benchmark.problem, _config(generations, population, seed)
        ).run()
        without_drop = Explorer(
            benchmark.problem,
            _config(generations, population, seed, disable_dropping=True),
        ).run()
        best_with = with_drop.best_power.power if with_drop.best_power else None
        best_without = (
            without_drop.best_power.power if without_drop.best_power else None
        )
        # Every no-dropping design is also a valid dropping-enabled design
        # (T_d = {} is in the search space), so the dropping-enabled
        # optimum is bounded by both runs — taking the min removes search
        # noise at small budgets without biasing the comparison.
        if best_with is not None and best_without is not None:
            best_with = min(best_with, best_without)
        elif best_with is None:
            best_with = best_without
        rows.append(
            DroppingPowerRow(
                benchmark=name,
                power_with_dropping=best_with,
                power_without_dropping=best_without,
            )
        )
    return rows


def run_dropping_ratios(
    benchmarks: Sequence[str] = RATIO_BENCHMARKS,
    generations: int = 25,
    population: int = 24,
    seed: int = 2014,
) -> List[DroppingRatioRow]:
    """Track the feasible-only-with-dropping share per benchmark."""
    rows: List[DroppingRatioRow] = []
    for name in benchmarks:
        benchmark = get_benchmark(name)
        result = Explorer(
            benchmark.problem,
            _config(generations, population, seed, track=True),
        ).run()
        stats = result.statistics
        rows.append(
            DroppingRatioRow(
                benchmark=name,
                evaluations=stats.evaluations,
                feasible=stats.feasible,
                dropping_gain=stats.dropping_gain,
                reexecution_share=stats.reexecution_share,
            )
        )
    return rows


def format_power_rows(rows: List[DroppingPowerRow]) -> str:
    """Render the power comparison."""
    lines = ["Sec. 5.2: optimized expected power, with vs without task dropping"]
    lines.append(
        f"{'benchmark':>10} | {'with drop':>10} | {'no drop':>10} | {'extra power':>11}"
    )
    lines.append("-" * 52)
    for row in rows:
        w = "-" if row.power_with_dropping is None else f"{row.power_with_dropping:.3f}"
        n = (
            "-"
            if row.power_without_dropping is None
            else f"{row.power_without_dropping:.3f}"
        )
        extra = row.extra_power_percent
        e = "-" if extra is None else f"{extra:+.2f}%"
        lines.append(f"{row.benchmark:>10} | {w:>10} | {n:>10} | {e:>11}")
    return "\n".join(lines)


def format_ratio_rows(rows: List[DroppingRatioRow]) -> str:
    """Render the feasibility-ratio study."""
    lines = ["Sec. 5.2: solutions feasible only thanks to task dropping"]
    lines.append(
        f"{'benchmark':>10} | {'evals':>6} | {'feasible':>8} | "
        f"{'gain/all':>9} | {'gain/feas':>9} | {'re-exec share':>13}"
    )
    lines.append("-" * 70)
    for row in rows:
        lines.append(
            f"{row.benchmark:>10} | {row.evaluations:>6} | {row.feasible:>8} | "
            f"{100 * row.ratio_over_all:8.2f}% | {100 * row.ratio_over_feasible:8.2f}% | "
            f"{100 * row.reexecution_share:12.2f}%"
        )
    return "\n".join(lines)
