"""Hardening trade-off study (paper §2.2).

"Choosing an appropriate hardening technique for a task comes with a
trade-off between resource usage and time."  This harness makes the
trade-off concrete for one representative task: for each technique it
reports the fault-free (nominal) worst case, the critical-state worst
case, the expected processor time (the average-power proxy), the number
of processors occupied, and the unsafe-execution probability.

The qualitative shape it demonstrates:

* re-execution is free in space, cheap on average, but doubles+ the
  critical-state time;
* checkpointing trades a small nominal overhead for much cheaper
  recoveries;
* active replication costs space and average power but masks faults with
  *no* critical-state penalty;
* passive replication keeps active replication's fault tolerance at a
  fraction of the average power, paying with a recovery delay.
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.power import PowerModel
from repro.hardening.spec import HardeningPlan, HardeningSpec
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.architecture import homogeneous_architecture
from repro.model.mapping import Mapping
from repro.model.task import Task
from repro.model.taskgraph import TaskGraph
from repro.reliability.analysis import task_unsafe_probability


@dataclass(frozen=True)
class TradeoffRow:
    """One hardening technique applied to the reference task."""

    label: str
    processors_used: int
    nominal_wcet: float
    critical_wcet: float
    expected_time: float
    unsafe_probability: float


DEFAULT_SPECS: Tuple[Tuple[str, HardeningSpec], ...] = (
    ("none", HardeningSpec.none()),
    ("re-exec k=1", HardeningSpec.reexecution(1)),
    ("re-exec k=2", HardeningSpec.reexecution(2)),
    ("checkpoint 4seg k=2", HardeningSpec.checkpointing(2, segments=4)),
    ("active x2", HardeningSpec.active(2)),
    ("active x3", HardeningSpec.active(3)),
    ("passive 2+1", HardeningSpec.passive(3, active=2)),
)


def run_tradeoff(
    wcet: float = 100.0,
    bcet: float = 60.0,
    detection_overhead: float = 5.0,
    voting_overhead: float = 4.0,
    fault_rate: float = 1e-5,
    period: float = 1000.0,
    specs: Sequence[Tuple[str, HardeningSpec]] = DEFAULT_SPECS,
) -> List[TradeoffRow]:
    """Evaluate every technique on one reference task."""
    rows: List[TradeoffRow] = []
    architecture = homogeneous_architecture(4, fault_rate=fault_rate)
    processors = list(architecture.processors)
    for label, spec in specs:
        graph = TaskGraph(
            "app",
            tasks=[
                Task(
                    "job",
                    bcet,
                    wcet,
                    detection_overhead=detection_overhead,
                    voting_overhead=voting_overhead,
                )
            ],
            channels=[],
            period=period,
            reliability_target=1e-2,
        )
        apps = ApplicationSet([graph])
        hardened = harden(apps, HardeningPlan({"job": spec}))
        assignment = {}
        used = set()
        for index, task in enumerate(hardened.applications.all_tasks):
            pe = processors[index % len(processors)].name
            # Voter shares the primary's processor; copies spread.
            if task.name.endswith("#vote"):
                pe = assignment["job"]
            assignment[task.name] = pe
            used.add(pe)
        mapping = Mapping(assignment)
        model = PowerModel(architecture)
        expected = sum(
            model.expected_execution_time(hardened, task.name, mapping[task.name])
            for task in hardened.applications.all_tasks
        )
        copy_processors = [
            architecture.processor(mapping[name])
            for name in hardened.replica_groups.get("job", ("job",))
        ]
        unsafe = task_unsafe_probability(
            apps.task("job"), spec, copy_processors
        )
        nominal = max(
            hardened.nominal_bounds(t.name)[1]
            for t in hardened.applications.all_tasks
        )
        critical = max(
            hardened.critical_wcet(t.name)
            for t in hardened.applications.all_tasks
        )
        rows.append(
            TradeoffRow(
                label=label,
                processors_used=len(used),
                nominal_wcet=nominal,
                critical_wcet=critical,
                expected_time=expected,
                unsafe_probability=unsafe,
            )
        )
    return rows


def format_tradeoff(rows: List[TradeoffRow]) -> str:
    """Render the §2.2 trade-off table."""
    lines = ["Hardening trade-offs for one task (wcet 100, dt 5, ve 4):"]
    lines.append(
        f"{'technique':>20} | {'PEs':>3} | {'nominal':>8} | {'critical':>8} | "
        f"{'avg time':>8} | {'unsafe prob':>11}"
    )
    lines.append("-" * 74)
    for row in rows:
        lines.append(
            f"{row.label:>20} | {row.processors_used:>3} | "
            f"{row.nominal_wcet:8.1f} | {row.critical_wcet:8.1f} | "
            f"{row.expected_time:8.1f} | {row.unsafe_probability:11.2e}"
        )
    lines.append(
        "(critical = per-copy worst case; the recovery delay of passive "
        "replication shows up in the end-to-end WCRT via the voter)"
    )
    return "\n".join(lines)
