"""Table 2 — WCRT [ms] of the two critical Cruise applications.

For each of the three sample mappings, four estimates per application:

* ``Adhoc`` — deterministic worst trace (critical from time zero,
  maximal re-execution, droppables dropped from the start);
* ``WC-Sim`` — maximum over Monte-Carlo simulations on random failure
  profiles (the paper used 10,000);
* ``Proposed`` — Algorithm 1 (safe upper bound);
* ``Naive`` — static single-run bound with ``[0, wcet]`` droppables.

The safety claims the table demonstrates: ``Proposed`` upper-bounds both
``Adhoc`` and ``WC-Sim``; ``Naive`` is safe too but more pessimistic.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core import AdhocAnalysis, MixedCriticalityAnalysis, NaiveAnalysis
from repro.sim import MonteCarloEstimator, Simulator
from repro.suites.cruise import (
    CRITICAL_APPS,
    cruise_benchmark,
    cruise_sample_mappings,
)

#: The dropped application set used throughout the Table 2 study: all
#: droppable applications are candidates for dropping.
TABLE2_DROPPED: Tuple[str, ...] = ("info", "diag", "log", "cam")

ROW_ORDER: Tuple[str, ...] = ("Adhoc", "WC-Sim", "Proposed", "Naive")


@dataclass(frozen=True)
class Table2Cell:
    """One (mapping, method, application) WCRT estimate."""

    mapping: int
    method: str
    app: str
    wcrt: float


def run_table2(
    profiles: int = 2000,
    seed: int = 2014,
    granularity: str = "job",
) -> List[Table2Cell]:
    """Compute every cell of Table 2.

    ``profiles`` scales the Monte-Carlo effort (the paper used 10,000;
    2,000 keeps the default run under a minute while preserving the
    qualitative picture).
    """
    benchmark = cruise_benchmark()
    architecture = benchmark.problem.architecture
    hardened, mappings = cruise_sample_mappings()

    proposed = MixedCriticalityAnalysis(granularity=granularity)
    naive = NaiveAnalysis()
    adhoc = AdhocAnalysis()

    cells: List[Table2Cell] = []
    for index, mapping in enumerate(mappings, start=1):
        adhoc_result = adhoc.analyze(hardened, architecture, mapping, TABLE2_DROPPED)
        simulator = Simulator(
            hardened, architecture, mapping, dropped=TABLE2_DROPPED
        )
        wcsim = MonteCarloEstimator(simulator).estimate(
            profiles=profiles, seed=seed
        )
        proposed_result = proposed.analyze(
            hardened, architecture, mapping, TABLE2_DROPPED
        )
        naive_result = naive.analyze(hardened, architecture, mapping, TABLE2_DROPPED)
        for app in CRITICAL_APPS:
            cells.append(
                Table2Cell(index, "Adhoc", app, adhoc_result.wcrt_of(app))
            )
            cells.append(
                Table2Cell(index, "WC-Sim", app, wcsim.worst_response.get(app, 0.0))
            )
            cells.append(
                Table2Cell(index, "Proposed", app, proposed_result.wcrt_of(app))
            )
            cells.append(
                Table2Cell(index, "Naive", app, naive_result.wcrt_of(app))
            )
    return cells


def format_table2(cells: List[Table2Cell]) -> str:
    """Render the cells in the paper's layout (methods x mappings)."""
    by_key: Dict[Tuple[str, int, str], float] = {
        (cell.method, cell.mapping, cell.app): cell.wcrt for cell in cells
    }
    mappings = sorted({cell.mapping for cell in cells})
    lines = []
    header = f"{'':>10}"
    for mapping in mappings:
        header += f" | Mapping {mapping}: " + "  ".join(f"{a:>8}" for a in CRITICAL_APPS)
    lines.append("Table 2: WCRT [ms] of the two critical Cruise applications")
    lines.append(header)
    lines.append("-" * len(header))
    for method in ROW_ORDER:
        row = f"{method:>10}"
        for mapping in mappings:
            values = "  ".join(
                f"{by_key.get((method, mapping, app), float('nan')):8.0f}"
                for app in CRITICAL_APPS
            )
            row += f" |            {values}"
        lines.append(row)
    return "\n".join(lines)
