"""Figure 5 — co-optimization of service and power for DT-med.

The two-objective GA (minimise expected power, maximise post-drop
service) produces a Pareto front over the drop-set lattice of
``{t1, t2, t3}``: dropping everything is the power optimum, dropping
nothing the service optimum, with intermediate drop sets in between —
five Pareto-optimal points in the paper.
"""

from repro.dse import ExplorationResult, Explorer, ExplorerConfig
from repro.suites import get_benchmark


def run_fig5(
    generations: int = 60,
    population: int = 32,
    seed: int = 2014,
    benchmark: str = "dt-med",
) -> ExplorationResult:
    """Run the two-objective exploration for the Figure 5 front."""
    problem = get_benchmark(benchmark).problem
    config = ExplorerConfig.from_options(
        population=population, generations=generations, seed=seed
    )
    return Explorer(problem, config).run()


def format_front(result: ExplorationResult) -> str:
    """Render the Pareto front in the style of Figure 5.

    Uses the per-drop-set front (cheapest feasible design evaluated per
    drop set, non-dominated ones only) — the same granularity the paper's
    figure plots.
    """
    front = result.drop_set_front()
    lines = ["Figure 5: power/service Pareto front (DT-med)"]
    lines.append(f"{'power':>10} | {'service':>8} | dropped set")
    lines.append("-" * 44)
    if not front:
        lines.append("(no feasible design point found — increase the budget)")
    for point in front:
        dropped = point.dropped
        label = "{" + ", ".join(dropped) + "}" if dropped else "{} (none)"
        lines.append(f"{point.power:10.3f} | {point.service:8.1f} | {label}")
    return "\n".join(lines)
