"""Complexity profile of Algorithm 1 (paper §3).

The paper states the analysis costs ``O(|V|^2 + |V| * C)`` with ``C`` the
back-end cost — every re-executable or passively replicated task adds one
back-end run.  This harness measures wall-clock time of the proposed
analysis over generated task sets of growing size, which the
``bench_alg1_scaling`` benchmark turns into a regression check.
"""

import random
import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.benchgen.tgff import GraphShape, TgffConfig, generate_problem
from repro.core import MixedCriticalityAnalysis
from repro.dse.chromosome import heuristic_chromosome
from repro.hardening.transform import harden


@dataclass(frozen=True)
class ScalingRow:
    """Measured analysis cost for one generated problem size."""

    tasks: int
    transitions: int
    seconds: float


def run_scaling(
    sizes: Sequence[int] = (2, 4, 6),
    seed: int = 7,
    granularity: str = "job",
) -> List[ScalingRow]:
    """Time Algorithm 1 over problems with ``sizes`` graphs each.

    Every critical task is re-executed once, so the number of analyzed
    transitions grows linearly with the critical task count.
    """
    rows: List[ScalingRow] = []
    analysis = MixedCriticalityAnalysis(granularity=granularity)
    for size in sizes:
        problem = generate_problem(
            seed=seed + size,
            critical_graphs=size,
            droppable_graphs=size,
            processors=max(4, size),
            config=TgffConfig(
                shape=GraphShape(min_tasks=4, max_tasks=6),
                period_slack_range=(3.0, 5.0),
            ),
            name_prefix=f"scal{size}",
        )
        chromosome = heuristic_chromosome(problem, random.Random(seed))
        design = chromosome.decode(problem)
        hardened = harden(problem.applications, design.plan)
        start = time.perf_counter()
        result = analysis.analyze(
            hardened,
            problem.architecture,
            design.mapping,
            dropped=design.dropped,
        )
        elapsed = time.perf_counter() - start
        rows.append(
            ScalingRow(
                tasks=len(hardened.applications.all_tasks),
                transitions=result.transitions_analyzed,
                seconds=elapsed,
            )
        )
    return rows
