"""Stable high-level facade over the toolkit.

Scripts used to assemble every experiment from six deep modules (load a
bundle, build a plan, harden, pick a back-end, wire an evaluator, ...).
This module condenses the four everyday flows into one import::

    import repro

    bundle = repro.api.load("cruise.json")          # or a suite name
    result = repro.api.analyze(bundle, dropped=("info", "log"))
    sim = repro.api.simulate(bundle, profiles=500)
    front = repro.api.explore(bundle, generations=25)
    report = repro.api.verify(bundle, budget=200)

Each function returns the *existing* result dataclasses —
:class:`~repro.core.analysis.MCAnalysisResult`,
:class:`~repro.sim.montecarlo.MonteCarloResult`,
:class:`~repro.dse.results.ExplorationResult` — so code written against
the deep modules keeps working and code written against the facade can
drop down a layer when it needs to.

``system`` arguments accept a :class:`~repro.model.serialization
.SystemBundle`, a path to a system JSON file, or the name of a built-in
benchmark suite (``cruise``, ``dt-med``, ``dt-large``, ``synth-1``,
``synth-2``).
"""

from pathlib import Path
from typing import Iterable, Optional, Tuple, Union

from repro.core.analysis import MCAnalysisResult
from repro.core.factory import make_analysis
from repro.core.fastpath import FastPathConfig
from repro.errors import ReproError
from repro.hardening.spec import HardeningPlan
from repro.hardening.transform import harden
from repro.model.application import ApplicationSet
from repro.model.mapping import Mapping
from repro.model.serialization import SystemBundle, load_system
from repro.obs.trace import span
from repro.sched.comm import CommModel
from repro.sched.wcrt import SchedBackend

__all__ = [
    "load",
    "analyze",
    "simulate",
    "explore",
    "verify",
    "validate_dropped",
    "cache_stats",
    "cache_clear",
]

SystemLike = Union[str, Path, SystemBundle]

#: Accepted drop-set spellings: an iterable of names or one
#: comma-separated string (the CLI's ``--dropped`` syntax).
DroppedLike = Union[str, Iterable[str]]


def load(source: SystemLike) -> SystemBundle:
    """A system bundle from a JSON file, a suite name, or pass-through.

    Built-in suite names resolve to a fresh benchmark instance (no
    mapping, no plan — ``explore`` finds those); anything else is read as
    a path written by :func:`repro.model.serialization.save_system`.
    """
    if isinstance(source, SystemBundle):
        return source
    from repro.suites import benchmark_names, get_benchmark

    if isinstance(source, str) and source in benchmark_names():
        benchmark = get_benchmark(source)
        return SystemBundle(
            applications=benchmark.problem.applications,
            architecture=benchmark.problem.architecture,
            mapping=None,
            plan=None,
        )
    return load_system(source)


def validate_dropped(
    applications: ApplicationSet, dropped: DroppedLike
) -> Tuple[str, ...]:
    """Normalise a drop set and reject names missing from the task graphs.

    Accepts an iterable of application names or one comma-separated
    string; surrounding whitespace is stripped and empty entries are
    discarded.  Raises :class:`~repro.errors.ReproError` listing *all*
    unknown names, not just the first.
    """
    if isinstance(dropped, str):
        dropped = dropped.split(",")
    names = tuple(n.strip() for n in dropped if n and n.strip())
    known = {graph.name for graph in applications.graphs}
    unknown = sorted(set(names) - known)
    if unknown:
        raise ReproError(
            f"unknown application(s) in drop set: {', '.join(unknown)}; "
            f"known applications: {', '.join(sorted(known))}"
        )
    return names


def cache_stats() -> dict:
    """Hit/miss/occupancy statistics of the process-wide schedule cache.

    The cache is the :func:`repro.core.fastpath.shared_cache` LRU used by
    every analysis running with :meth:`FastPathConfig.shared` (the serving
    layer's default).  Analyses with a private cache (the CLI default, the
    DSE evaluator) do not show up here.
    """
    from repro.core.fastpath import shared_cache

    return shared_cache().stats()


def cache_clear() -> None:
    """Drop every entry of the process-wide schedule cache.

    Hit/miss tallies are kept (they are lifetime counters); only the
    memoized :class:`~repro.sched.wcrt.ScheduleBounds` entries go.
    """
    from repro.core.fastpath import shared_cache

    shared_cache().clear()


def _apply_comm_overrides(
    bundle: SystemBundle,
    comm_backend: Optional[str],
    comm_arq: Optional[int],
    comm_arq_timeout: Optional[float],
) -> SystemBundle:
    """Rewrite the bundle's fabric comm configuration (``--comm-*``).

    Overrides land on the interconnect itself (not just the model
    object), so everything downstream — default comm resolution, job-set
    fingerprints, the verification oracles — sees one consistent
    configuration.  All-``None`` is the no-op fast path.
    """
    if comm_backend is None and comm_arq is None and comm_arq_timeout is None:
        return bundle
    from repro.comm import with_comm

    architecture = with_comm(
        bundle.architecture,
        backend=comm_backend,
        arq_retries=comm_arq,
        arq_timeout=comm_arq_timeout,
    )
    return SystemBundle(
        bundle.applications, architecture, bundle.mapping, bundle.plan
    )


def analyze(
    system: SystemLike,
    *,
    method: str = "proposed",
    backend: Union[SchedBackend, str, None] = None,
    granularity: str = "job",
    dropped: DroppedLike = (),
    plan: Optional[HardeningPlan] = None,
    mapping: Optional[Mapping] = None,
    policy: str = "fp",
    bus_contention: bool = False,
    comm: Union[CommModel, str, None] = None,
    comm_backend: Optional[str] = None,
    comm_arq: Optional[int] = None,
    comm_arq_timeout: Optional[float] = None,
    fast_path: Union[FastPathConfig, bool, None] = None,
) -> MCAnalysisResult:
    """WCRT analysis of a mapped system (the CLI ``analyze`` flow).

    ``plan``/``mapping`` default to the bundle's own; ``method`` is one
    of ``proposed``/``naive``/``adhoc`` and ``backend`` one of
    ``window``/``fast``/``holistic`` (or a back-end instance), both
    routed through :func:`repro.core.factory.make_analysis`.

    ``comm_backend``/``comm_arq``/``comm_arq_timeout`` rewrite the
    system's interconnect comm configuration before analysis (the CLI's
    ``--comm-backend``/``--comm-arq`` flags; names are validated against
    :data:`repro.comm.COMM_BACKENDS`).  ``comm`` still accepts a
    ready-made model/backend instance, which then wins outright.
    """
    with span("api.analyze", method=method, granularity=granularity):
        bundle = load(system)
        bundle = _apply_comm_overrides(
            bundle, comm_backend, comm_arq, comm_arq_timeout
        )
        mapping = mapping if mapping is not None else bundle.mapping
        if mapping is None:
            raise ReproError(
                "system carries no mapping; pass mapping=... or run explore()"
            )
        plan = plan if plan is not None else (bundle.plan or HardeningPlan())
        hardened = harden(bundle.applications, plan)
        drop_set = validate_dropped(bundle.applications, dropped)
        analysis = make_analysis(
            method=method,
            backend=backend,
            granularity=granularity,
            comm=comm,
            policy=policy,
            bus_contention=bus_contention,
            fast_path=fast_path,
        )
        return analysis.analyze(
            hardened, bundle.architecture, mapping, drop_set
        )


def simulate(
    system: SystemLike,
    *,
    profiles: int = 500,
    seed: int = 0,
    rng=None,
    dropped: DroppedLike = (),
    plan: Optional[HardeningPlan] = None,
    mapping: Optional[Mapping] = None,
    policy: str = "fp",
    max_faults: int = 3,
    worst_bias: float = 0.5,
    comm_backend: Optional[str] = None,
    comm_arq: Optional[int] = None,
    comm_arq_timeout: Optional[float] = None,
):
    """Monte-Carlo fault-injection campaign (the CLI ``simulate`` flow).

    Returns the :class:`~repro.sim.montecarlo.MonteCarloResult` of a
    WC-Sim estimator over ``profiles`` random fault profiles.  Pass an
    externally owned ``random.Random`` as ``rng`` to share a generator
    with a larger campaign; it takes precedence over ``seed`` and the
    result records ``seed=None``.  ``comm_backend``/``comm_arq``/
    ``comm_arq_timeout`` rewrite the fabric comm configuration exactly
    as in :func:`analyze`.
    """
    from repro.sim import BiasedSampler, MonteCarloEstimator, Simulator

    with span("api.simulate", profiles=profiles, policy=policy):
        bundle = load(system)
        bundle = _apply_comm_overrides(
            bundle, comm_backend, comm_arq, comm_arq_timeout
        )
        mapping = mapping if mapping is not None else bundle.mapping
        if mapping is None:
            raise ReproError(
                "system carries no mapping; pass mapping=... or run explore()"
            )
        plan = plan if plan is not None else (bundle.plan or HardeningPlan())
        hardened = harden(bundle.applications, plan)
        drop_set = validate_dropped(bundle.applications, dropped)
        simulator = Simulator(
            hardened, bundle.architecture, mapping,
            dropped=drop_set, policy=policy,
        )
        estimator = MonteCarloEstimator(
            simulator, sampler=BiasedSampler(worst_bias), max_faults=max_faults
        )
        return estimator.estimate(profiles=profiles, seed=seed, rng=rng)


def verify(
    system: SystemLike,
    *,
    budget: int = 200,
    seed: int = 0,
    granularity: str = "job",
    policy: str = "fp",
    max_faults: int = 3,
    shrink: bool = True,
    metamorphic: bool = True,
    corpus_dir: Union[str, Path, None] = None,
    backend: Optional[SchedBackend] = None,
    label: Optional[str] = None,
    config=None,
    comm_backend: Optional[str] = None,
    comm_arq: Optional[int] = None,
    comm_arq_timeout: Optional[float] = None,
):
    """Adversarial soundness campaign (the CLI ``verify`` flow).

    Runs directed + exhaustive + random fault-injection scenarios, the
    differential oracle lattice, fast-path/warm-start consistency, and
    the metamorphic properties against ``system``; shrinks any violation
    and (when ``corpus_dir`` is set) writes self-contained reproducer
    JSON files.  Returns the deterministic
    :class:`~repro.verify.campaign.VerificationReport` — two calls with
    the same system, ``seed`` and ``budget`` produce identical reports.

    Suites without a mapping get a deterministic seeded design.  Pass a
    full :class:`~repro.verify.campaign.CampaignConfig` as ``config`` to
    override more than the common knobs (it wins over the keyword
    shortcuts); ``backend`` swaps the analysis back-end under test — the
    hook the harness's own broken-backend tests use.
    """
    from repro.verify.campaign import (
        CampaignConfig,
        run_campaign,
        state_from_bundle,
    )

    bundle = load(system)
    bundle = _apply_comm_overrides(
        bundle, comm_backend, comm_arq, comm_arq_timeout
    )
    state = state_from_bundle(bundle, seed=seed)
    if config is None:
        config = CampaignConfig(
            budget=budget,
            seed=seed,
            granularity=granularity,
            policy=policy,
            max_faults=max_faults,
            shrink=shrink,
            metamorphic=metamorphic,
            corpus_dir=corpus_dir,
            backend=backend,
        )
    if label is None:
        label = system if isinstance(system, str) else "system"
    return run_campaign(state, config, label=label)


def explore(
    system,
    *,
    generations: int = 25,
    population: int = 32,
    seed: int = 0,
    workers: int = 1,
    backend: Optional[str] = None,
    config=None,
    islands: int = 1,
    migration_every: int = 10,
    migrants: int = 2,
    topology: str = "ring",
    execution: Optional[str] = None,
    fleet: Optional[str] = None,
):
    """GA design-space exploration (the CLI ``explore`` flow).

    The canonical call passes one :class:`~repro.dse.request
    .ExploreRequest` — the same typed value the CLI and the HTTP job
    layer build — and returns the
    :class:`~repro.dse.results.ExplorationResult`::

        request = repro.dse.ExploreRequest.from_options(
            "cruise", generations=50, population=64, islands=4,
        )
        result = repro.api.explore(request)

    The keyword shortcuts (``generations=...``, ``population=...``,
    ``config=...``) remain as thin deprecated shims: they build the
    equivalent request through the same ``ExplorerConfig.from_options``
    path and emit a :class:`DeprecationWarning`.

    ``backend`` names the evaluator's schedulability back-end (one
    validation path with serve and the CLI, via
    :func:`repro.core.factory.make_dse_evaluator`); ``islands`` > 1
    shards the run over island worker processes (``execution`` picks
    ``process``/``inline``/``serve``; ``fleet`` is the serve base URL
    for the durable-job fleet mode).
    """
    import warnings

    from repro.dse.islands import run_explore
    from repro.dse.request import ExploreRequest, IslandTopology

    if isinstance(system, ExploreRequest):
        request = system
    else:
        warnings.warn(
            "api.explore(system, **kwargs) is deprecated; build a "
            "repro.dse.ExploreRequest (e.g. ExploreRequest.from_options)"
            " and pass it as the single argument",
            DeprecationWarning,
            stacklevel=2,
        )
        shape = IslandTopology(
            islands=islands,
            migration_every=migration_every,
            migrants=migrants,
            kind=topology,
        )
        if config is not None:
            request = ExploreRequest(
                system=system, config=config, topology=shape,
                backend=backend,
            )
        else:
            request = ExploreRequest.from_options(
                system,
                backend=backend,
                islands=islands,
                migration_every=migration_every,
                migrants=migrants,
                topology=topology,
                generations=generations,
                population=population,
                seed=seed,
                workers=workers,
            )
    with span(
        "api.explore",
        generations=request.config.generations,
        population=request.config.population_size,
        workers=request.config.workers,
        islands=request.topology.islands,
    ):
        return run_explore(request, execution=execution, fleet=fleet)
