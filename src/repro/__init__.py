"""repro — reproduction of "Static Mapping of Mixed-Critical Applications
for Fault-Tolerant MPSoCs" (Kang et al., DAC 2014).

The package provides:

* :mod:`repro.model` — application (task graphs) and architecture models;
* :mod:`repro.hardening` — re-execution and active/passive replication
  transformations of task graphs;
* :mod:`repro.reliability` — transient-fault model and reliability
  constraint checking;
* :mod:`repro.sched` — a schedulability back-end computing safe best-case
  start / worst-case finish bounds per task (the ``sched`` function of the
  paper's Algorithm 1);
* :mod:`repro.core` — the mixed-criticality WCRT analysis (Algorithm 1),
  the ``Naive``/``Adhoc`` baselines, the power model, and the design
  evaluator;
* :mod:`repro.sim` — a discrete-event simulator with fault injection and
  the Monte-Carlo ``WC-Sim`` estimator;
* :mod:`repro.dse` — the genetic-algorithm design-space exploration with
  the Figure-4 chromosome and a from-scratch SPEA2 selector;
* :mod:`repro.benchgen` — TGFF-style synthetic task-graph generation;
* :mod:`repro.suites` — the Cruise, DT-med, DT-large and Synth benchmarks;
* :mod:`repro.experiments` — harnesses regenerating every table and figure
  of the paper's evaluation section;
* :mod:`repro.verify` — the adversarial fault-injection soundness
  harness (differential oracles, metamorphic properties, counterexample
  shrinking, replayable reproducer corpus);
* :mod:`repro.api` — the stable facade (``load`` / ``analyze`` /
  ``simulate`` / ``explore`` / ``verify``), re-exported at the package
  top level.
"""

from repro.errors import (
    AnalysisError,
    HardeningError,
    InfeasibleError,
    MappingError,
    ModelError,
    ReproError,
)
from repro.model import (
    ApplicationSet,
    Architecture,
    Channel,
    Criticality,
    Interconnect,
    Mapping,
    Processor,
    Task,
    TaskGraph,
    TaskRole,
)
from repro.hardening import (
    HardeningKind,
    HardeningPlan,
    HardeningSpec,
    harden,
)
from repro.core import (
    AdhocAnalysis,
    AnalysisMethod,
    DesignPoint,
    Evaluator,
    FastPathConfig,
    MixedCriticalityAnalysis,
    NaiveAnalysis,
    PowerModel,
    make_analysis,
    make_backend,
)
from repro.sched import (
    FastWindowAnalysisBackend,
    HolisticAnalysisBackend,
    SchedBackend,
    ScheduleBounds,
    WindowAnalysisBackend,
)
from repro.dse import Explorer, ExplorerConfig
from repro import api
from repro.api import (
    analyze,
    cache_clear,
    cache_stats,
    explore,
    load,
    simulate,
    verify,
)

__all__ = [
    "api",
    "load",
    "analyze",
    "simulate",
    "explore",
    "verify",
    "cache_stats",
    "cache_clear",
    "ReproError",
    "ModelError",
    "MappingError",
    "HardeningError",
    "AnalysisError",
    "InfeasibleError",
    "Task",
    "TaskRole",
    "Channel",
    "TaskGraph",
    "ApplicationSet",
    "Criticality",
    "Processor",
    "Interconnect",
    "Architecture",
    "Mapping",
    "HardeningKind",
    "HardeningSpec",
    "HardeningPlan",
    "harden",
    "SchedBackend",
    "ScheduleBounds",
    "WindowAnalysisBackend",
    "FastWindowAnalysisBackend",
    "HolisticAnalysisBackend",
    "MixedCriticalityAnalysis",
    "NaiveAnalysis",
    "AdhocAnalysis",
    "AnalysisMethod",
    "make_analysis",
    "make_backend",
    "FastPathConfig",
    "PowerModel",
    "Evaluator",
    "DesignPoint",
    "Explorer",
    "ExplorerConfig",
]

__version__ = "1.0.0"
