"""Transient-fault model and reliability analysis (paper §2.1, §2.3, ref [6]).

Each processor has a constant fault rate ``lambda_p`` per time unit; the
probability that a task execution of duration ``c`` on processor ``p`` is
hit by at least one transient fault is ``1 - exp(-lambda_p * c)``.

A non-droppable application ``t`` carries a reliability constraint
``f_t in (0, 1]``: the expected number of *unsafe* (undetected-faulty)
executions per unit time must not exceed ``f_t``.
"""

from repro.reliability.faults import execution_fault_probability, poisson_fault_count
from repro.reliability.analysis import (
    graph_failure_rate,
    graph_unsafe_probability,
    system_reliability_report,
    task_unsafe_probability,
)
from repro.reliability.constraints import (
    ReliabilityViolation,
    check_reliability,
    minimal_reexecutions,
    minimal_replicas,
    strengthen_spec,
)

__all__ = [
    "execution_fault_probability",
    "poisson_fault_count",
    "task_unsafe_probability",
    "graph_unsafe_probability",
    "graph_failure_rate",
    "system_reliability_report",
    "ReliabilityViolation",
    "check_reliability",
    "minimal_reexecutions",
    "minimal_replicas",
    "strengthen_spec",
]
