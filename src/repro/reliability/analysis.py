"""Unsafe-execution probability of hardened tasks and applications.

A task execution is *unsafe* when it delivers a faulty result that the
hardening in place fails to detect or mask:

* unhardened task — any fault is unsafe;
* re-execution (k) — unsafe only if the original execution *and* all ``k``
  re-executions are faulty (detection itself is assumed perfect);
* checkpointing (n segments, k recoveries) — unsafe when more than ``k``
  faults hit one (overhead-inflated) execution, i.e. a Poisson tail;
* replication (n copies) — unsafe when a majority of copies is faulty and
  out-votes the correct ones; with exactly two copies the voter can only
  detect, so unsafe means both copies faulty.

Voters and the fault-detection logic are assumed reliable, which is the
usual assumption in the referenced hardening literature ([2], [3], [6]).
Passive copies are counted like active ones: reliability-wise the schemes
differ only in *when* copies run, not in how many opinions the voter sees.
"""

from itertools import product
from typing import Dict, Sequence

from repro.errors import AnalysisError
from repro.hardening.spec import HardeningKind, HardeningSpec
from repro.hardening.transform import HardenedSystem
from repro.model.architecture import Architecture, Processor
from repro.model.mapping import Mapping
from repro.model.task import Task
from repro.reliability.faults import execution_fault_probability, poisson_fault_count


def task_unsafe_probability(
    task: Task,
    spec: HardeningSpec,
    copy_processors: Sequence[Processor],
) -> float:
    """Probability that one instance of the task ends unsafely.

    ``copy_processors`` lists the processor of each copy of the task —
    a single processor for unhardened and re-executed tasks, ``replicas``
    processors for replicated ones (primary first).
    """
    expected = spec.replicas if spec.is_replicated else 1
    if len(copy_processors) != expected:
        raise AnalysisError(
            f"task {task.name!r}: expected {expected} copy processor(s), "
            f"got {len(copy_processors)}"
        )

    if spec.kind is HardeningKind.NONE:
        processor = copy_processors[0]
        return execution_fault_probability(
            processor.fault_rate, processor.scale_time(task.wcet)
        )

    if spec.kind is HardeningKind.REEXECUTION:
        processor = copy_processors[0]
        duration = processor.scale_time(task.wcet + task.detection_overhead)
        per_execution = execution_fault_probability(processor.fault_rate, duration)
        return per_execution ** (spec.reexecutions + 1)

    if spec.kind is HardeningKind.CHECKPOINT:
        # Unsafe when more faults strike than recoveries are budgeted:
        # P[#faults > k] over the (overhead-inflated) execution.
        processor = copy_processors[0]
        duration = processor.scale_time(
            task.wcet + spec.checkpoints * task.detection_overhead
        )
        covered = sum(
            poisson_fault_count(processor.fault_rate, duration, i)
            for i in range(spec.reexecutions + 1)
        )
        return max(0.0, 1.0 - covered)

    # Replication: enumerate fault patterns over the (few) copies.
    probabilities = [
        execution_fault_probability(p.fault_rate, p.scale_time(task.wcet))
        for p in copy_processors
    ]
    return _majority_failure_probability(probabilities)


def _majority_failure_probability(fault_probabilities: Sequence[float]) -> float:
    """Probability that faulty copies reach a majority among ``n`` copies.

    With ``n = 2`` a mismatch is detectable but not correctable, so the
    unsafe case degenerates to *both* copies faulty.
    """
    n = len(fault_probabilities)
    threshold = n if n == 2 else n // 2 + 1
    unsafe = 0.0
    for pattern in product((False, True), repeat=n):
        faulty = sum(pattern)
        if faulty < threshold:
            continue
        probability = 1.0
        for is_faulty, q in zip(pattern, fault_probabilities):
            probability *= q if is_faulty else (1.0 - q)
        unsafe += probability
    return unsafe


def graph_unsafe_probability(
    hardened: HardenedSystem,
    graph_name: str,
    mapping: Mapping,
    architecture: Architecture,
) -> float:
    """Probability that one instance of an application ends unsafely.

    Task faults are independent, so the instance is safe only if every
    primary task's (hardened) execution is safe.
    """
    source_graph = hardened.source.graph(graph_name)
    safe = 1.0
    for task in source_graph.tasks:
        spec = hardened.plan.spec_of(task.name)
        copy_names = hardened.replica_groups.get(task.name, (task.name,))
        processors = [architecture.processor(mapping[name]) for name in copy_names]
        safe *= 1.0 - task_unsafe_probability(task, spec, processors)
    return 1.0 - safe


def graph_failure_rate(
    hardened: HardenedSystem,
    graph_name: str,
    mapping: Mapping,
    architecture: Architecture,
) -> float:
    """Expected unsafe executions per unit time (to compare against ``f_t``)."""
    graph = hardened.source.graph(graph_name)
    return graph_unsafe_probability(hardened, graph_name, mapping, architecture) / graph.period


def per_task_unsafe_budget(graph_task_count: int, reliability_target: float, period: float) -> float:
    """Equal-share per-task unsafe-probability budget for a graph.

    The graph meets ``f_t`` if every one of its ``n`` tasks keeps its
    per-instance unsafe probability below ``f_t * period / n`` (union
    bound).  Used by the repair heuristics to size hardening locally.
    """
    if graph_task_count <= 0:
        raise AnalysisError("graph task count must be positive")
    return reliability_target * period / graph_task_count


def system_reliability_report(
    hardened: HardenedSystem,
    mapping: Mapping,
    architecture: Architecture,
) -> Dict[str, Dict[str, float]]:
    """Per-application reliability summary.

    Returns ``{graph: {unsafe_probability, failure_rate, target, satisfied}}``
    for every non-droppable application (droppable graphs carry no target).
    """
    report: Dict[str, Dict[str, float]] = {}
    for graph in hardened.source.critical_graphs:
        probability = graph_unsafe_probability(
            hardened, graph.name, mapping, architecture
        )
        rate = probability / graph.period
        target = graph.reliability_target
        report[graph.name] = {
            "unsafe_probability": probability,
            "failure_rate": rate,
            "target": target,
            "satisfied": rate <= target,
        }
    return report
