"""Reliability-constraint checking and hardening sizing.

The DSE repair heuristic (paper §4) escalates hardening on tasks of an
application until the application's reliability constraint ``f_t`` is met;
the helpers here compute how much hardening a single task needs and provide
a deterministic escalation ladder.
"""

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import AnalysisError
from repro.hardening.spec import HardeningKind, HardeningSpec
from repro.hardening.transform import HardenedSystem
from repro.model.architecture import Architecture
from repro.model.mapping import Mapping
from repro.reliability.analysis import graph_failure_rate

#: Upper bound on re-execution depth considered by the sizing helpers.
MAX_REEXECUTIONS = 8
#: Upper bound on replica count considered by the sizing helpers.
MAX_REPLICAS = 7


@dataclass(frozen=True)
class ReliabilityViolation:
    """A non-droppable application exceeding its reliability constraint."""

    graph: str
    failure_rate: float
    target: float

    def __str__(self) -> str:
        return (
            f"application {self.graph!r}: failure rate {self.failure_rate:.3e} "
            f"exceeds target {self.target:.3e}"
        )


def check_reliability(
    hardened: HardenedSystem,
    mapping: Mapping,
    architecture: Architecture,
) -> List[ReliabilityViolation]:
    """All reliability violations of a design point (empty when feasible)."""
    violations: List[ReliabilityViolation] = []
    for graph in hardened.source.critical_graphs:
        rate = graph_failure_rate(hardened, graph.name, mapping, architecture)
        if rate > graph.reliability_target:
            violations.append(
                ReliabilityViolation(
                    graph=graph.name,
                    failure_rate=rate,
                    target=graph.reliability_target,
                )
            )
    return violations


def minimal_reexecutions(per_execution_fault: float, unsafe_budget: float) -> Optional[int]:
    """Smallest ``k`` with ``q^(k+1) <= budget``, or ``None`` if none ``<= MAX``.

    ``q`` is the per-execution fault probability (detection overhead
    included); a fault-free task (``q == 0``) needs no re-execution at all,
    in which case 0 is returned.
    """
    if not 0 <= per_execution_fault <= 1:
        raise AnalysisError(
            f"fault probability must lie in [0, 1], got {per_execution_fault}"
        )
    if unsafe_budget <= 0:
        return None
    if per_execution_fault == 0 or per_execution_fault <= unsafe_budget:
        return 0
    if per_execution_fault >= 1:
        return None
    # q^(k+1) <= b  <=>  k + 1 >= log(b) / log(q)   (log(q) < 0)
    needed = math.ceil(math.log(unsafe_budget) / math.log(per_execution_fault)) - 1
    needed = max(needed, 0)
    # Guard against floating-point edge cases around the ceiling.
    while per_execution_fault ** (needed + 1) > unsafe_budget:
        needed += 1
    return needed if needed <= MAX_REEXECUTIONS else None


def minimal_replicas(per_copy_fault: float, unsafe_budget: float) -> Optional[int]:
    """Smallest replica count whose majority-failure probability meets budget.

    Assumes all copies share the fault probability ``per_copy_fault`` (the
    homogeneous case; heterogeneous platforms are re-checked exactly by
    :func:`repro.reliability.analysis.task_unsafe_probability`).  Returns
    ``None`` when no count up to :data:`MAX_REPLICAS` suffices.
    """
    from repro.reliability.analysis import _majority_failure_probability

    if unsafe_budget <= 0:
        return None
    for count in range(2, MAX_REPLICAS + 1):
        unsafe = _majority_failure_probability([per_copy_fault] * count)
        if unsafe <= unsafe_budget:
            return count
    return None


def strengthen_spec(spec: HardeningSpec) -> Optional[HardeningSpec]:
    """One step up the hardening ladder, or ``None`` at the top.

    The ladder trades time first (deeper re-execution), then space
    (more replicas):

    ``NONE -> re-exec(1) -> re-exec(2) -> active(3) -> passive(4, 2 active)
    -> active(5) -> None``

    Replication specs escalate by adding copies of the same kind.
    """
    if spec.kind is HardeningKind.NONE:
        return HardeningSpec.reexecution(1)
    if spec.kind is HardeningKind.REEXECUTION:
        if spec.reexecutions < 2:
            return HardeningSpec.reexecution(spec.reexecutions + 1)
        return HardeningSpec.active(3)
    if spec.kind is HardeningKind.ACTIVE:
        if spec.replicas == 3:
            return HardeningSpec.passive(4, active=2)
        if spec.replicas + 2 <= MAX_REPLICAS:
            return HardeningSpec.active(spec.replicas + 2)
        return None
    if spec.kind is HardeningKind.PASSIVE:
        if spec.replicas == 4:
            return HardeningSpec.active(5)
        if spec.replicas + 1 <= MAX_REPLICAS:
            return HardeningSpec.passive(spec.replicas + 1, active=spec.effective_active_replicas)
        return None
    if spec.kind is HardeningKind.CHECKPOINT:
        if spec.reexecutions < MAX_REEXECUTIONS:
            return HardeningSpec.checkpointing(
                spec.reexecutions + 1, segments=spec.checkpoints
            )
        return HardeningSpec.active(3)
    raise AnalysisError(f"unknown hardening kind {spec.kind!r}")
