"""Transient-fault primitives.

Transient faults are modelled as a Poisson process with a constant rate
``lambda_p`` per processor (paper §2.1, following refs [11], [12]).
"""

import math

from repro.errors import ModelError


def execution_fault_probability(fault_rate: float, duration: float) -> float:
    """Probability that at least one fault hits an execution.

    ``P[fault] = 1 - exp(-lambda * c)`` for an execution of duration ``c``
    on a processor with fault rate ``lambda``.
    """
    if fault_rate < 0:
        raise ModelError(f"fault rate must be >= 0, got {fault_rate}")
    if duration < 0:
        raise ModelError(f"duration must be >= 0, got {duration}")
    return -math.expm1(-fault_rate * duration)


def poisson_fault_count(fault_rate: float, duration: float, count: int) -> float:
    """Probability of exactly ``count`` faults during an execution."""
    if count < 0:
        raise ModelError(f"fault count must be >= 0, got {count}")
    mean = fault_rate * duration
    if mean < 0:
        raise ModelError("fault rate and duration must be >= 0")
    return math.exp(-mean) * mean**count / math.factorial(count)
