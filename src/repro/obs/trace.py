"""Hierarchical span tracing with cross-process propagation.

Spans answer *where* the time went: a run produces a tree of named,
monotonic-clock-timed sections (``api.explore`` → ``ga.generation`` →
``eval.guarded`` → ``sched.holistic`` → …) with typed attributes
attached at the point where the information exists (cache hits,
transitions pruned, warm-start outcomes, generation index, batch size,
queue wait).  Design constraints mirror :mod:`repro.obs.metrics`:

* **near-zero overhead when disabled** — :func:`span` checks one flag
  and returns a shared no-op context manager; no IDs are drawn, no
  dicts are built, nothing is locked;
* **cheap when enabled** — starting a span draws 8 random bytes and
  pushes onto a thread-local stack; finishing one builds a small dict
  and hands it to the configured sinks under one lock;
* **propagation is explicit** — :func:`capture_context` /
  :func:`activate` carry the current span across
  ``ThreadPoolExecutor`` workers, :func:`to_traceparent` /
  :func:`from_traceparent` carry it across HTTP hops (W3C
  ``traceparent`` syntax), and :meth:`SpanContext.to_dict` /
  :meth:`SpanContext.from_dict` carry it through explore checkpoints so
  a resumed job continues the same trace.

Span records are plain dicts (see :data:`SPAN_SCHEMA_FIELDS`) so any
sink — the shared JSONL writer, an in-memory collector, the Chrome
trace exporter in :mod:`repro.obs.export` — consumes the same shape.
Records carry a ``"span"`` key where event records carry ``"event"``,
so both interleave safely in one JSONL stream.
"""

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "activate",
    "annotate",
    "capture_context",
    "current_context",
    "from_traceparent",
    "span",
    "to_traceparent",
    "tracer",
    "RESPONSE_TRACE_HEADER",
    "TRACEPARENT_HEADER",
]

#: Request header carrying the caller's trace context (W3C syntax).
TRACEPARENT_HEADER = "traceparent"
#: Response header echoing the trace ID a request was served under.
RESPONSE_TRACE_HEADER = "X-Repro-Trace"

#: Keys present in every finished span record.
SPAN_SCHEMA_FIELDS = (
    "span", "trace_id", "span_id", "parent_id",
    "start_us", "duration_us", "thread", "attrs",
)

# Wall-clock anchor for the process: span timestamps are monotonic
# offsets from this pair, so records from one process share a timeline
# and Chrome-trace ``ts`` values are stable within a trace file.
_EPOCH_MONOTONIC = time.monotonic()
_EPOCH_WALL = time.time()

SpanSink = Callable[[dict], None]


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


class SpanContext:
    """An addressable position in a trace: ``(trace_id, span_id)``."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_dict(self) -> dict:
        """JSON-ready form (checkpoint / job-record serialization)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: Optional[dict]) -> Optional["SpanContext"]:
        """Inverse of :meth:`to_dict`; tolerates ``None`` / junk."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not trace_id or not span_id:
            return None
        return cls(str(trace_id), str(span_id))

    def __repr__(self) -> str:
        return f"SpanContext({self.trace_id!r}, {self.span_id!r})"


class Span:
    """One live, named, timed section; use as a context manager."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "_tracer", "_start", "_attrs", "_stack",
    )

    def __init__(
        self,
        tracer_: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Optional[dict],
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id(8)
        self.parent_id = parent_id
        self._tracer = tracer_
        self._start = 0.0
        self._attrs = dict(attrs) if attrs else {}
        self._stack: Optional[List["Span"]] = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one typed attribute (bool/int/float/str)."""
        self._attrs[key] = value

    def set_attributes(self, **attrs: Any) -> None:
        """Attach several attributes at once."""
        self._attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._stack = self._tracer._stack()
        self._stack.append(self)
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        duration = time.monotonic() - self._start
        stack = self._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif stack is not None:  # pragma: no cover — unbalanced exit
            try:
                stack.remove(self)
            except ValueError:
                pass
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._tracer._finish(self, duration)
        return False


class _NoopSpan:
    """Shared do-nothing span returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, **attrs: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _NullActivation:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        return False


_NULL_ACTIVATION = _NullActivation()


class _Activation:
    """Installs a remote/captured context as the thread's trace root.

    Re-roots the thread: the existing span stack is set aside (spans
    already live on it keep a reference and still close correctly) and
    new spans parent on ``context`` until exit.  This is what lets a
    pool worker run a request's work under the *request's* trace even
    though the worker thread has its own infrastructure spans open.
    """

    __slots__ = ("_tracer", "_context", "_prev_stack", "_prev_remote")

    def __init__(self, tracer_: "Tracer", context: SpanContext):
        self._tracer = tracer_
        self._context = context
        self._prev_stack: Optional[List["Span"]] = None
        self._prev_remote: Optional[SpanContext] = None

    def __enter__(self):
        local = self._tracer._local
        self._prev_stack = getattr(local, "stack", None)
        self._prev_remote = getattr(local, "remote", None)
        local.stack = []
        local.remote = self._context
        return self

    def __exit__(self, *_exc):
        local = self._tracer._local
        local.stack = (
            self._prev_stack if self._prev_stack is not None else []
        )
        local.remote = self._prev_remote
        return False


class Tracer:
    """Creates spans, tracks per-thread context, fans out to sinks."""

    def __init__(self, enabled: bool = False):
        self._enabled = enabled
        self._sinks: List[SpanSink] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- enable / disable ------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether :func:`span` produces real spans."""
        return self._enabled

    def enable(self, sink: Optional[SpanSink] = None) -> None:
        """Turn tracing on, optionally adding ``sink`` first."""
        if sink is not None:
            self.add_sink(sink)
        self._enabled = True

    def disable(self) -> None:
        """Turn every span call into a shared no-op."""
        self._enabled = False

    def add_sink(self, sink: SpanSink) -> None:
        """Register a callable receiving each finished span record."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    def remove_sink(self, sink: SpanSink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def reset(self) -> None:
        """Disable, drop every sink, forget all thread contexts."""
        self._enabled = False
        with self._lock:
            self._sinks.clear()
        self._local = threading.local()

    # -- per-thread context ----------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost live span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_context(self) -> Optional[SpanContext]:
        """Context of the innermost live span, or the activated remote."""
        current = self.current_span()
        if current is not None:
            return current.context
        return getattr(self._local, "remote", None)

    def activate(self, context: Optional[SpanContext]):
        """Adopt ``context`` as this thread's parent for new spans.

        Used on executor workers (parent captured at submit time) and on
        server request threads (parent parsed off ``traceparent``).
        """
        if context is None or not self._enabled:
            return _NULL_ACTIVATION
        return _Activation(self, context)

    # -- span lifecycle --------------------------------------------------

    def start_span(self, name: str, attrs: Optional[dict] = None):
        """A context-managed span parented on the thread's current context."""
        if not self._enabled:
            return _NOOP_SPAN
        parent = self.current_context()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = _new_id(16), None
        return Span(self, name, trace_id, parent_id, attrs)

    def _finish(self, span_: Span, duration: float) -> None:
        record = {
            "span": span_.name,
            "trace_id": span_.trace_id,
            "span_id": span_.span_id,
            "parent_id": span_.parent_id,
            "start_us": int(
                (span_._start - _EPOCH_MONOTONIC) * 1e6
            ),
            "duration_us": int(duration * 1e6),
            "thread": threading.current_thread().name,
            "attrs": span_._attrs,
        }
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            sink(record)


# ---------------------------------------------------------------------------
# traceparent encoding (W3C trace-context syntax, version 00)
# ---------------------------------------------------------------------------


def to_traceparent(context: Optional[SpanContext]) -> Optional[str]:
    """``00-<trace_id>-<span_id>-01`` for ``context`` (``None`` in, out)."""
    if context is None:
        return None
    trace_id = context.trace_id.ljust(32, "0")[:32]
    span_id = context.span_id.ljust(16, "0")[:16]
    return f"00-{trace_id}-{span_id}-01"


def from_traceparent(header: Optional[str]) -> Optional[SpanContext]:
    """Parse a ``traceparent`` header; ``None`` on absence or junk."""
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    _version, trace_id, span_id = parts[0], parts[1], parts[2]
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    if int(trace_id, 16) == 0 or int(span_id, 16) == 0:
        return None
    return SpanContext(trace_id, span_id)


# ---------------------------------------------------------------------------
# module-level conveniences over the process-wide tracer
# ---------------------------------------------------------------------------

#: The process-wide tracer every repro subsystem records into.  Off by
#: default: ``--trace-out`` (CLI) or ``ServeConfig.trace_out`` turn it
#: on with a sink attached.
_GLOBAL = Tracer(enabled=False)


def tracer() -> Tracer:
    """The process-wide tracer (always the same object)."""
    return _GLOBAL


def span(name: str, **attrs: Any):
    """``with span("phase", key=value): ...`` on the global tracer.

    Returns the shared no-op span when tracing is off; hot call sites
    pay one attribute load, one flag check and one (small) kwargs dict.
    """
    if not _GLOBAL._enabled:
        return _NOOP_SPAN
    return _GLOBAL.start_span(name, attrs)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost live span on this thread.

    Lets deep layers (cache lookups, warm-start decisions) enrich the
    span their caller opened without threading a span object through
    every signature.  A no-op when tracing is off or no span is live.
    """
    if not _GLOBAL._enabled:
        return
    current = _GLOBAL.current_span()
    if current is not None:
        current._attrs.update(attrs)


def current_context() -> Optional[SpanContext]:
    """The calling thread's current span context (or ``None``)."""
    if not _GLOBAL._enabled:
        return None
    return _GLOBAL.current_context()


def capture_context() -> Optional[SpanContext]:
    """Snapshot the current context for hand-off to another thread."""
    return current_context()


def activate(context: Optional[SpanContext]):
    """``with activate(ctx): ...`` — parent new spans on ``ctx``."""
    return _GLOBAL.activate(context)
