"""Structured logging for the ``repro.*`` logger hierarchy.

Every subsystem gets its logger via :func:`get_logger` (``"dse"`` →
``repro.dse``); :func:`configure` installs a single stream handler on
the ``repro`` root with a consistent format and is idempotent, so the
CLI, the experiments runner and library users can all call it.

Structured payloads are attached as ``key=value`` suffixes through
:func:`kv` — greppable and cheap, without external dependencies::

    log.info("generation done %s", kv(gen=3, archive=100))
"""

import logging as _logging
import sys
from typing import Optional

from repro.errors import ReproError

ROOT_NAME = "repro"

_LEVELS = {
    "debug": _logging.DEBUG,
    "info": _logging.INFO,
    "warning": _logging.WARNING,
    "error": _logging.ERROR,
}

#: Marker attribute identifying the handler :func:`configure` installs.
_HANDLER_FLAG = "_repro_obs_handler"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def get_logger(name: str = "") -> _logging.Logger:
    """The logger ``repro`` or ``repro.<name>``."""
    return _logging.getLogger(f"{ROOT_NAME}.{name}" if name else ROOT_NAME)


def level_from_name(level: str) -> int:
    """Map ``"debug"|"info"|"warning"|"error"`` to a logging level."""
    try:
        return _LEVELS[level.lower()]
    except KeyError:
        raise ReproError(
            f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
        ) from None


def configure(level: str = "warning", stream=None) -> _logging.Logger:
    """Set up the ``repro`` root logger (idempotent).

    Installs exactly one stream handler (stderr by default) with the
    structured format; repeated calls only adjust level and stream.
    """
    root = get_logger()
    root.setLevel(level_from_name(level))
    for handler in root.handlers:
        if getattr(handler, _HANDLER_FLAG, False):
            try:
                handler.setStream(stream or sys.stderr)
            except ValueError:
                # The previous stream was closed under us (e.g. a test
                # harness swapping stderr); rebind without flushing it.
                handler.stream = stream or sys.stderr
            return root
    handler = _logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(_logging.Formatter(_FORMAT, _DATE_FORMAT))
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.propagate = False
    return root


def kv(**fields) -> str:
    """Render keyword fields as a sorted ``key=value`` string."""
    parts = []
    for key in sorted(fields):
        value = fields[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)
