"""Observability: metrics, typed events, structured logging, span traces.

The four pillars (see ``docs/observability.md`` for the full schema):

* :mod:`repro.obs.metrics` — process-wide counters, gauges, timers and
  fixed-bucket histograms with JSON/JSONL export; near-zero overhead
  when disabled.
* :mod:`repro.obs.events` — a typed event bus carrying run telemetry
  (generation-complete, evaluation-done, scenario-analyzed,
  fault-injected, deadline-miss, archive-updated, early-stop) with
  pluggable subscribers.
* :mod:`repro.obs.logging` — the ``repro.*`` structured logger
  hierarchy.
* :mod:`repro.obs.trace` / :mod:`repro.obs.export` — hierarchical
  spans with cross-thread and cross-process context propagation, JSONL
  and Chrome trace-event exporters, and per-phase self-time summaries.
"""

from repro.obs.events import (
    ArchiveUpdated,
    DeadlineMissed,
    EarlyStopped,
    Event,
    EventBus,
    EvaluationCompleted,
    FaultInjected,
    GenerationCompleted,
    InMemoryCollector,
    JsonlTraceWriter,
    ProgressLogger,
    ScenarioAnalyzed,
    bus,
    capture,
    event_from_dict,
    event_to_dict,
)
from repro.obs.export import (
    JsonlSpanExporter,
    format_summary,
    read_spans,
    spans_to_chrome,
    summarize,
    write_chrome_trace,
)
from repro.obs.logging import configure, get_logger, kv
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Timer,
    metrics,
)
from repro.obs.trace import (
    Span,
    SpanContext,
    Tracer,
    activate,
    capture_context,
    current_context,
    from_traceparent,
    span,
    to_traceparent,
    tracer,
)

__all__ = [
    "ArchiveUpdated",
    "Counter",
    "DeadlineMissed",
    "EarlyStopped",
    "EvaluationCompleted",
    "Event",
    "EventBus",
    "FaultInjected",
    "Gauge",
    "GenerationCompleted",
    "Histogram",
    "InMemoryCollector",
    "JsonlSpanExporter",
    "JsonlTraceWriter",
    "MetricError",
    "MetricsRegistry",
    "ProgressLogger",
    "ScenarioAnalyzed",
    "Span",
    "SpanContext",
    "Timer",
    "Tracer",
    "activate",
    "bus",
    "capture",
    "capture_context",
    "configure",
    "current_context",
    "event_from_dict",
    "event_to_dict",
    "format_summary",
    "from_traceparent",
    "get_logger",
    "kv",
    "metrics",
    "read_spans",
    "span",
    "spans_to_chrome",
    "summarize",
    "to_traceparent",
    "tracer",
    "write_chrome_trace",
]
