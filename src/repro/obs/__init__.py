"""Observability: metrics registry, typed event bus, structured logging.

The three pillars (see ``docs/observability.md`` for the full schema):

* :mod:`repro.obs.metrics` — process-wide counters, gauges, timers and
  fixed-bucket histograms with JSON/JSONL export; near-zero overhead
  when disabled.
* :mod:`repro.obs.events` — a typed event bus carrying run telemetry
  (generation-complete, evaluation-done, scenario-analyzed,
  fault-injected, deadline-miss, archive-updated, early-stop) with
  pluggable subscribers.
* :mod:`repro.obs.logging` — the ``repro.*`` structured logger
  hierarchy.
"""

from repro.obs.events import (
    ArchiveUpdated,
    DeadlineMissed,
    EarlyStopped,
    Event,
    EventBus,
    EvaluationCompleted,
    FaultInjected,
    GenerationCompleted,
    InMemoryCollector,
    JsonlTraceWriter,
    ProgressLogger,
    ScenarioAnalyzed,
    bus,
    capture,
    event_from_dict,
    event_to_dict,
)
from repro.obs.logging import configure, get_logger, kv
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Timer,
    metrics,
)

__all__ = [
    "ArchiveUpdated",
    "Counter",
    "DeadlineMissed",
    "EarlyStopped",
    "EvaluationCompleted",
    "Event",
    "EventBus",
    "FaultInjected",
    "Gauge",
    "GenerationCompleted",
    "Histogram",
    "InMemoryCollector",
    "JsonlTraceWriter",
    "MetricError",
    "MetricsRegistry",
    "ProgressLogger",
    "ScenarioAnalyzed",
    "Timer",
    "bus",
    "capture",
    "configure",
    "event_from_dict",
    "event_to_dict",
    "get_logger",
    "kv",
    "metrics",
]
