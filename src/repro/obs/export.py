"""Span exporters and trace post-processing.

Three consumers of the span records produced by :mod:`repro.obs.trace`:

* :class:`JsonlSpanExporter` — appends one JSON line per finished span
  (records carry a ``"span"`` key, so they interleave with event
  records in one file);
* :func:`spans_to_chrome` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format, loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``;
* :func:`summarize` / :func:`format_summary` — the ``repro trace
  summarize`` report: a per-phase self-time table plus the critical
  path through the largest trace in the file.

*Self time* of a span is its duration minus the summed durations of its
direct children — the time attributable to that phase itself rather
than to anything it delegated to.  Summed over a (serial) span tree,
self times reconstruct the root duration exactly, which is what makes
the per-phase table a faithful decomposition.
"""

import json
import threading
from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from repro.errors import ReproError

__all__ = [
    "JsonlSpanExporter",
    "TraceSummary",
    "format_summary",
    "read_spans",
    "spans_to_chrome",
    "summarize",
    "write_chrome_trace",
]


class JsonlSpanExporter:
    """Thread-safe sink appending one JSON line per span record."""

    def __init__(self, path_or_handle):
        if hasattr(path_or_handle, "write"):
            self._handle: TextIO = path_or_handle
            self._owns = False
        else:
            self._handle = open(path_or_handle, "w")
            self._owns = True
        self._lock = threading.Lock()

    def __call__(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns and not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False


def read_spans(path) -> List[dict]:
    """Span records from a JSONL trace file (event lines are skipped)."""
    spans: List[dict] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{path}:{lineno}: not valid JSON ({error})"
                ) from None
            if isinstance(record, dict) and "span" in record:
                spans.append(record)
    return spans


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------


def spans_to_chrome(spans: Iterable[dict]) -> dict:
    """Chrome trace-event JSON object for ``spans``.

    Complete ``"X"`` (duration) events on one pid, one tid per source
    thread; thread names are attached as ``"M"`` metadata events so
    Perfetto labels the tracks.
    """
    events: List[dict] = []
    tids: Dict[str, int] = {}
    for record in spans:
        thread = str(record.get("thread", "main"))
        tid = tids.setdefault(thread, len(tids) + 1)
        args = {
            "trace_id": record.get("trace_id"),
            "span_id": record.get("span_id"),
            "parent_id": record.get("parent_id"),
        }
        attrs = record.get("attrs") or {}
        for key, value in attrs.items():
            args[key] = value
        events.append({
            "name": record.get("span", "?"),
            "cat": str(record.get("span", "?")).split(".", 1)[0],
            "ph": "X",
            "ts": record.get("start_us", 0),
            "dur": max(1, int(record.get("duration_us", 0))),
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        }
        for thread, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[dict], path) -> None:
    """Write :func:`spans_to_chrome` output as a JSON file."""
    with open(path, "w") as handle:
        json.dump(spans_to_chrome(spans), handle, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Summaries: per-phase self time and critical path
# ---------------------------------------------------------------------------


class TraceSummary:
    """Aggregated view of one trace file (see :func:`summarize`)."""

    __slots__ = ("phases", "critical_path", "root", "total_us", "span_count")

    def __init__(self, phases, critical_path, root, total_us, span_count):
        #: ``[(name, count, total_us, self_us)]`` sorted by self time.
        self.phases: List[Tuple[str, int, int, int]] = phases
        #: ``[(name, duration_us)]`` root-to-leaf along largest children.
        self.critical_path: List[Tuple[str, int]] = critical_path
        #: The root span record of the largest trace (or ``None``).
        self.root: Optional[dict] = root
        #: Duration of that root span in microseconds.
        self.total_us: int = total_us
        self.span_count: int = span_count


def _roots(spans: List[dict]) -> List[dict]:
    """Spans whose parent is absent from the file (remote or none)."""
    ids = {record["span_id"] for record in spans if "span_id" in record}
    return [
        record for record in spans
        if record.get("parent_id") is None
        or record.get("parent_id") not in ids
    ]


def child_coverage(spans: List[dict], root: dict) -> float:
    """Fraction of ``root``'s duration covered by its direct children."""
    duration = root.get("duration_us") or 0
    if duration <= 0:
        return 0.0
    covered = sum(
        record.get("duration_us", 0)
        for record in spans
        if record.get("parent_id") == root.get("span_id")
    )
    return min(1.0, covered / duration)


def summarize(spans: List[dict]) -> TraceSummary:
    """Per-phase self-time table plus critical path for ``spans``."""
    if not spans:
        return TraceSummary([], [], None, 0, 0)

    children: Dict[Optional[str], List[dict]] = {}
    for record in spans:
        children.setdefault(record.get("parent_id"), []).append(record)

    # Self time: duration minus direct children (clamped — parallel
    # children can overlap and legitimately exceed the parent).
    phase_total: Dict[str, int] = {}
    phase_self: Dict[str, int] = {}
    phase_count: Dict[str, int] = {}
    for record in spans:
        name = record.get("span", "?")
        duration = int(record.get("duration_us", 0))
        child_sum = sum(
            int(child.get("duration_us", 0))
            for child in children.get(record.get("span_id"), ())
        )
        phase_total[name] = phase_total.get(name, 0) + duration
        phase_self[name] = phase_self.get(name, 0) + max(
            0, duration - child_sum
        )
        phase_count[name] = phase_count.get(name, 0) + 1
    phases = sorted(
        (
            (name, phase_count[name], phase_total[name], phase_self[name])
            for name in phase_total
        ),
        key=lambda row: row[3],
        reverse=True,
    )

    roots = _roots(spans)
    root = max(roots, key=lambda r: r.get("duration_us", 0), default=None)
    total_us = int(root.get("duration_us", 0)) if root else 0

    critical: List[Tuple[str, int]] = []
    node = root
    seen = set()
    while node is not None and node.get("span_id") not in seen:
        seen.add(node.get("span_id"))
        critical.append(
            (node.get("span", "?"), int(node.get("duration_us", 0)))
        )
        kids = children.get(node.get("span_id"), [])
        node = max(kids, key=lambda r: r.get("duration_us", 0), default=None)

    return TraceSummary(phases, critical, root, total_us, len(spans))


def _fmt_us(us: int) -> str:
    if us >= 1_000_000:
        return f"{us / 1e6:.2f}s"
    if us >= 1_000:
        return f"{us / 1e3:.1f}ms"
    return f"{us}us"


def format_summary(summary: TraceSummary, top: int = 20) -> str:
    """Human-readable report for ``repro trace summarize``."""
    if summary.span_count == 0:
        return "no spans found\n"
    lines: List[str] = []
    lines.append(
        f"{summary.span_count} spans; largest trace root: "
        + (
            f"{summary.root.get('span')} ({_fmt_us(summary.total_us)})"
            if summary.root
            else "-"
        )
    )
    lines.append("")
    lines.append("per-phase self time")
    lines.append(
        f"  {'phase':<32} {'count':>7} {'total':>10} {'self':>10} {'self%':>7}"
    )
    grand_self = sum(row[3] for row in summary.phases) or 1
    for name, count, total_us, self_us in summary.phases[:top]:
        share = 100.0 * self_us / grand_self
        lines.append(
            f"  {name:<32} {count:>7} {_fmt_us(total_us):>10} "
            f"{_fmt_us(self_us):>10} {share:>6.1f}%"
        )
    if len(summary.phases) > top:
        lines.append(f"  … {len(summary.phases) - top} more phases")
    lines.append("")
    lines.append("critical path (largest child at each level)")
    for depth, (name, duration_us) in enumerate(summary.critical_path):
        lines.append(f"  {'  ' * depth}{name}  {_fmt_us(duration_us)}")
    return "\n".join(lines) + "\n"
