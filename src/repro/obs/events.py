"""A lightweight typed event bus for run telemetry.

Emitters (GA loop, evaluator, analysis, simulator) publish frozen
dataclass events on the process-wide bus returned by :func:`bus`;
subscribers attach per event type (or to everything).  Publishing with
no subscribers costs one dict lookup, so the hot paths stay cheap; event
*construction* in tight loops should additionally be guarded with
:meth:`EventBus.wants`.

Three stock subscribers cover the common needs:

* :class:`InMemoryCollector` — keeps events in a list (tests, CLI report
  assembly);
* :class:`JsonlTraceWriter` — appends one JSON line per event
  (round-trippable via :func:`event_from_dict`);
* :class:`ProgressLogger` — human-readable one-line-per-generation
  progress on a stream (the CLI's ``--progress``).
"""

import json
import sys
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from typing import Callable, ClassVar, Dict, List, Optional, Tuple, Type

from repro.errors import ReproError

Handler = Callable[["Event"], None]

#: ``kind`` string -> event class, for deserialization.
EVENT_TYPES: Dict[str, Type["Event"]] = {}


class Event:
    """Base class; subclasses are frozen dataclasses with a ``kind``."""

    kind: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if not cls.kind:
            raise ReproError(f"event class {cls.__name__} lacks a kind")
        if cls.kind in EVENT_TYPES:
            raise ReproError(f"duplicate event kind {cls.kind!r}")
        EVENT_TYPES[cls.kind] = cls


# ---------------------------------------------------------------------------
# Event catalogue (docs/observability.md documents the schema)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GenerationCompleted(Event):
    """One GA generation finished (after environmental selection)."""

    kind: ClassVar[str] = "generation-complete"

    generation: int
    archive_size: int
    feasible_in_archive: int
    #: Minimum power over the feasible archive (``None`` until feasible).
    best_power: Optional[float]
    #: 2-D hypervolume of the feasible archive w.r.t. a per-generation
    #: reference point — a convergence proxy, not an absolute measure.
    hypervolume: float
    #: Cumulative evaluator invocations (cache misses) so far.
    evaluations: int
    #: Cumulative evaluation-cache hits so far.
    cache_hits: int
    #: ``cache_hits / (cache_hits + evaluations)`` so far.
    cache_hit_rate: float
    #: Cumulative candidates that failed to decode even after repair.
    repair_failures: int
    #: Wall-clock seconds spent on this generation.
    wall_seconds: float


@dataclass(frozen=True)
class ArchiveUpdated(Event):
    """The SPEA2 archive was re-selected this generation."""

    kind: ClassVar[str] = "archive-updated"

    generation: int
    size: int
    feasible: int
    #: Whether the best feasible power strictly improved this generation.
    improved: bool


@dataclass(frozen=True)
class EvaluationCompleted(Event):
    """One design point evaluated (feasibility + objectives)."""

    kind: ClassVar[str] = "evaluation-done"

    feasible: bool
    power: Optional[float]
    service: Optional[float]
    violations: int
    seconds: float


@dataclass(frozen=True)
class ScenarioAnalyzed(Event):
    """Algorithm 1 analyzed one normal-to-critical transition scenario."""

    kind: ClassVar[str] = "scenario-analyzed"

    trigger: str
    #: ``"job"`` or ``"task"`` enumeration granularity.
    granularity: str
    #: Fixed-point sweeps of the back-end run for this scenario.
    sweeps: int


@dataclass(frozen=True)
class FaultInjected(Event):
    """The simulator observed a transient fault on a job attempt."""

    kind: ClassVar[str] = "fault-injected"

    time: float
    task: str
    instance: int
    attempt: int


@dataclass(frozen=True)
class DeadlineMissed(Event):
    """A simulated application instance finished past its deadline."""

    kind: ClassVar[str] = "deadline-miss"

    graph: str
    instance: int
    #: Response time (finish minus release) of the missing instance.
    response: float
    #: Relative deadline the response exceeded.
    deadline: float


@dataclass(frozen=True)
class EarlyStopped(Event):
    """The GA stopped before its generation budget (stagnation)."""

    kind: ClassVar[str] = "early-stop"

    generation: int
    stagnation: int
    best_power: Optional[float]


@dataclass(frozen=True)
class EvaluationFailed(Event):
    """A guarded evaluation raised; the guard absorbed the exception."""

    kind: ClassVar[str] = "evaluation-failed"

    #: Pipeline stage that blew up: ``"decode"``, ``"evaluate"``.
    stage: str
    error_type: str
    error: str
    #: Primary-backend attempts made (1 + retries).
    attempts: int
    #: Whether a fallback-backend result was substituted.
    fallback_used: bool
    #: Whether the poison point was written to the quarantine log.
    quarantined: bool


@dataclass(frozen=True)
class BackendFellBack(Event):
    """The guard re-evaluated a design with the cheap fallback backend."""

    kind: ClassVar[str] = "backend-fallback"

    #: ``"error"`` (primary raised) or ``"budget"`` (soft budget blown).
    reason: str
    #: Exception type of the primary failure (``None`` for budget).
    error_type: Optional[str]
    #: Wall-clock seconds the primary evaluation took before giving up.
    seconds: float


@dataclass(frozen=True)
class CheckpointWritten(Event):
    """A crash-safe run snapshot was committed to disk."""

    kind: ClassVar[str] = "checkpoint-written"

    generation: int
    path: str
    #: Serialized snapshot size in bytes.
    size_bytes: int
    #: Wall-clock seconds spent serializing and renaming.
    seconds: float


@dataclass(frozen=True)
class RunResumed(Event):
    """An exploration restarted from a checkpoint snapshot."""

    kind: ClassVar[str] = "run-resumed"

    #: Generation the snapshot was taken at (the run continues at +1).
    generation: int
    path: str
    #: Evaluation-cache entries restored from the snapshot.
    cache_entries: int


@dataclass(frozen=True)
class RunInterrupted(Event):
    """SIGINT/KeyboardInterrupt cut the run; a partial result is returned."""

    kind: ClassVar[str] = "run-interrupted"

    #: Last *completed* generation at the time of the interrupt.
    generation: int
    #: Final checkpoint written on the way out (``None`` if disabled).
    checkpoint_path: Optional[str]


@dataclass(frozen=True)
class IslandEpochCompleted(Event):
    """One island finished an epoch (ran up to a migration barrier)."""

    kind: ClassVar[str] = "island-epoch"

    island: int
    #: The barrier generation the island ran up to (== total generations
    #: for the final epoch).
    barrier: int
    #: Execution backend that ran the epoch (``inline``/``process``).
    execution: str
    #: Wall-clock seconds for the epoch wave member.
    seconds: float


@dataclass(frozen=True)
class MigrationCompleted(Event):
    """Archive migrants were exchanged between islands at a barrier."""

    kind: ClassVar[str] = "island-migration"

    barrier: int
    islands: int
    #: Chromosomes actually injected (duplicates are skipped).
    migrants: int
    topology: str


@dataclass(frozen=True)
class ViolationFound(Event):
    """A verification oracle observed a soundness inversion."""

    kind: ClassVar[str] = "verify-violation"

    #: Which relation was violated (see ``repro.verify.oracles.ORACLES``).
    oracle: str
    #: The graph or task the numbers belong to.
    subject: str
    #: The value that should have dominated.
    expected: float
    #: The observed value that exceeded or diverged from it.
    actual: float
    #: Name of the offending fault scenario (``None`` for analysis-level
    #: oracles with no fault profile).
    scenario: Optional[str]


@dataclass(frozen=True)
class VerificationCompleted(Event):
    """A verification campaign finished (violations or not)."""

    kind: ClassVar[str] = "verify-complete"

    #: System label the campaign ran against.
    label: str
    #: Fault-injection scenarios simulated.
    scenarios: int
    #: Total oracle checks (scenarios + lattice + consistency + metamorphic).
    checks: int
    violations: int
    #: Accepted counterexample-shrinking steps across all violations.
    shrink_steps: int
    #: Reproducer files written to the corpus.
    reproducers: int


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def event_to_dict(event: Event) -> dict:
    """``{"event": kind, **fields}`` — JSON-ready."""
    payload = {"event": event.kind}
    payload.update(asdict(event))
    return payload


def event_from_dict(payload: dict) -> Event:
    """Inverse of :func:`event_to_dict`."""
    data = dict(payload)
    try:
        kind = data.pop("event")
    except KeyError:
        raise ReproError("event payload lacks an 'event' kind") from None
    try:
        cls = EVENT_TYPES[kind]
    except KeyError:
        raise ReproError(f"unknown event kind {kind!r}") from None
    names = {f.name for f in fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ReproError(
            f"event {kind!r}: unknown fields {sorted(unknown)}"
        )
    return cls(**data)


# ---------------------------------------------------------------------------
# The bus
# ---------------------------------------------------------------------------


class EventBus:
    """Publish/subscribe over the event catalogue.

    Subscription mutations take a lock; ``publish`` reads an immutable
    handler tuple, so concurrent publishers (the GA's evaluation thread
    pool) never block each other.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._handlers: Dict[Type[Event], Tuple[Handler, ...]] = {}
        self._any: Tuple[Handler, ...] = ()

    def subscribe(self, event_type: Type[Event], handler: Handler) -> Handler:
        """Call ``handler`` for every published ``event_type`` instance."""
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise ReproError(f"not an event type: {event_type!r}")
        with self._lock:
            current = self._handlers.get(event_type, ())
            self._handlers[event_type] = current + (handler,)
        return handler

    def subscribe_all(self, handler: Handler) -> Handler:
        """Call ``handler`` for every published event of any type."""
        with self._lock:
            self._any = self._any + (handler,)
        return handler

    def unsubscribe(self, handler: Handler) -> None:
        """Detach ``handler`` from every subscription (idempotent)."""
        with self._lock:
            for event_type, handlers in list(self._handlers.items()):
                pruned = tuple(h for h in handlers if h is not handler)
                if pruned:
                    self._handlers[event_type] = pruned
                else:
                    del self._handlers[event_type]
            self._any = tuple(h for h in self._any if h is not handler)

    def clear(self) -> None:
        """Drop every subscription."""
        with self._lock:
            self._handlers.clear()
            self._any = ()

    def wants(self, event_type: Type[Event]) -> bool:
        """Whether anybody listens for ``event_type`` (guards hot paths)."""
        return bool(self._any) or event_type in self._handlers

    def publish(self, event: Event) -> None:
        """Deliver ``event`` to its subscribers synchronously, in order."""
        handlers = self._handlers.get(type(event))
        if handlers:
            for handler in handlers:
                handler(event)
        if self._any:
            for handler in self._any:
                handler(event)


#: The process-wide bus every repro subsystem publishes on.
_GLOBAL = EventBus()


def bus() -> EventBus:
    """The process-wide event bus (always the same object)."""
    return _GLOBAL


@contextmanager
def capture(*event_types: Type[Event], on: Optional[EventBus] = None):
    """Collect events of the given types (or all) while the block runs.

    >>> with capture(GenerationCompleted) as collected:
    ...     ...
    >>> [e.generation for e in collected.events]  # doctest: +SKIP
    """
    target = on or bus()
    collector = InMemoryCollector()
    if event_types:
        for event_type in event_types:
            target.subscribe(event_type, collector)
    else:
        target.subscribe_all(collector)
    try:
        yield collector
    finally:
        target.unsubscribe(collector)


# ---------------------------------------------------------------------------
# Stock subscribers
# ---------------------------------------------------------------------------


class InMemoryCollector:
    """Appends every received event to :attr:`events`."""

    def __init__(self):
        self.events: List[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def of_type(self, event_type: Type[Event]) -> List[Event]:
        """The received events of one type, in arrival order."""
        return [e for e in self.events if isinstance(e, event_type)]

    def clear(self) -> None:
        self.events.clear()


class JsonlTraceWriter:
    """Writes one JSON line per record; use as a context manager.

    Explicitly thread-safe: serialization happens outside the lock, but
    the write *and* the flush of each line hold one lock together, so
    concurrent emitters (bus subscribers on worker threads, the span
    exporter) can never interleave partial lines in the output file.
    Accepts bus events via :meth:`__call__` and raw dict records (span
    records from :mod:`repro.obs.trace`) via :meth:`write_record`, so
    one file carries both streams.
    """

    def __init__(self, path):
        self._handle = open(path, "w")
        self._lock = threading.Lock()

    def __call__(self, event: Event) -> None:
        self.write_record(event_to_dict(event))

    def write_record(self, record: dict) -> None:
        """Append one JSON-ready dict as a single line (thread-safe)."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False


class ProgressLogger:
    """One human-readable line per generation / early stop on a stream."""

    def __init__(self, stream=None):
        self._stream = stream

    def _write(self, text: str) -> None:
        stream = self._stream or sys.stderr
        stream.write(text + "\n")
        stream.flush()

    def __call__(self, event: Event) -> None:
        if isinstance(event, GenerationCompleted):
            best = (
                f"{event.best_power:.3f}"
                if event.best_power is not None
                else "-"
            )
            self._write(
                f"[gen {event.generation:4d}] archive={event.archive_size:3d} "
                f"feasible={event.feasible_in_archive:3d} best_power={best} "
                f"hv={event.hypervolume:.3f} "
                f"cache_hit_rate={event.cache_hit_rate:.2f} "
                f"({event.wall_seconds * 1e3:.0f} ms)"
            )
        elif isinstance(event, EarlyStopped):
            best = (
                f"{event.best_power:.3f}"
                if event.best_power is not None
                else "-"
            )
            self._write(
                f"[gen {event.generation:4d}] early stop after "
                f"{event.stagnation} stagnant generation(s), "
                f"best_power={best}"
            )

    def attach(self, target: Optional[EventBus] = None) -> "ProgressLogger":
        """Subscribe to the generation/early-stop events."""
        target = target or bus()
        target.subscribe(GenerationCompleted, self)
        target.subscribe(EarlyStopped, self)
        return self
