"""Benchmark telemetry: registry-backed timings + machine-readable reports.

The files under ``benchmarks/`` route their measured timings through the
process registry (``bench.<name>`` timers) and call
:func:`write_bench_report` with their result rows.  When the environment
variable ``REPRO_BENCH_DIR`` (or the explicit ``out_dir``) names a
directory, a ``BENCH_<name>.json`` file is written there containing the
rows plus a snapshot of every ``bench.*`` metric; otherwise the data
stays in the registry only (so plain ``pytest benchmarks/`` runs leave
no files behind).
"""

import json
import os
from pathlib import Path
from typing import Optional

from repro.obs.metrics import Timer, metrics

#: Environment variable selecting the report output directory.
ENV_OUT_DIR = "REPRO_BENCH_DIR"


def bench_timer(name: str) -> Timer:
    """The registry timer ``bench.<name>``."""
    return metrics().timer(f"bench.{name}")


def bench_metrics_snapshot() -> dict:
    """The ``bench.*`` slice of the process metrics snapshot."""
    snapshot = metrics().snapshot()
    return {
        kind: {
            name: value
            for name, value in entries.items()
            if name.startswith("bench.")
        }
        for kind, entries in snapshot.items()
    }


def write_bench_report(
    name: str, payload: Optional[dict] = None, out_dir: Optional[str] = None
) -> Optional[Path]:
    """Write ``BENCH_<name>.json`` if an output directory is configured.

    Returns the written path, or ``None`` when reporting is off.  The
    report merges the caller's ``payload`` with the current ``bench.*``
    metrics, so repeated timings accumulated through :func:`bench_timer`
    appear without extra bookkeeping.
    """
    directory = out_dir or os.environ.get(ENV_OUT_DIR)
    if not directory:
        return None
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    report = {
        "benchmark": name,
        "payload": payload or {},
        "metrics": bench_metrics_snapshot(),
    }
    path = target / f"BENCH_{name}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
