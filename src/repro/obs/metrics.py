"""Process-wide metrics registry: counters, gauges, timers, histograms.

The DSE loop, the WCRT analysis and the simulator all increment metrics
through the module-level registry returned by :func:`metrics`.  Design
constraints (mirroring the always-on counters of production telemetry
systems):

* **near-zero overhead when disabled** — every record path starts with a
  single ``enabled`` flag check and returns immediately;
* **cheap when enabled** — one short lock acquisition per record, far
  below the cost of the instrumented operations (a ``sched()`` back-end
  run is milliseconds, a lock bounce ~100 ns);
* **machine-readable export** — :meth:`MetricsRegistry.snapshot` gives a
  plain dict, :meth:`MetricsRegistry.write_json` /
  :meth:`MetricsRegistry.jsonl_lines` serialize it.

The registry is deliberately *not* reset between runs: like a process
metrics endpoint, values accumulate until :meth:`MetricsRegistry.reset`
is called (the CLI snapshots per-command deltas by resetting first).

Set the environment variable ``REPRO_METRICS=0`` to start the process
with the global registry disabled (used for overhead-sensitive
benchmarking).
"""

import json
import os
import re
import threading
import time
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Default histogram bucket upper bounds (generic log-ish scale that
#: covers sweep counts, transition counts and millisecond timings alike).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)


class MetricError(ReproError):
    """Raised on metric name/type misuse."""


class _Instrument:
    """Shared plumbing: name + back-reference to the owning registry."""

    __slots__ = ("name", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry"):
        self.name = name
        self._registry = registry


class Counter(_Instrument):
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self, name: str, registry: "MetricsRegistry"):
        super().__init__(name, registry)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (no-op while the registry is disabled)."""
        registry = self._registry
        if not registry.enabled:
            return
        if amount < 0:
            raise MetricError(f"counter {self.name!r}: negative increment")
        with registry._lock:
            self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge(_Instrument):
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self, name: str, registry: "MetricsRegistry"):
        super().__init__(name, registry)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        with registry._lock:
            self.value = value

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class _TimerContext:
    """Context manager measuring one timed section."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "Timer"):
        self._timer = timer
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc):
        self._timer.observe(time.perf_counter() - self._start)
        return False


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        return False


_NULL_CONTEXT = _NullContext()


class Timer(_Instrument):
    """Aggregated durations: count, total, min, max (seconds)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self, name: str, registry: "MetricsRegistry"):
        super().__init__(name, registry)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, seconds: float) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        with registry._lock:
            self.count += 1
            self.total += seconds
            if self.min is None or seconds < self.min:
                self.min = seconds
            if self.max is None or seconds > self.max:
                self.max = seconds

    def time(self):
        """``with timer.time(): ...`` — records the elapsed wall time."""
        if not self._registry.enabled:
            return _NULL_CONTEXT
        return _TimerContext(self)

    @property
    def mean(self) -> float:
        """Mean duration over all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "type": "timer",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class _P2Quantile:
    """Streaming quantile estimate via the P² algorithm.

    Jain & Chlamtac (1985): five markers track the running quantile in
    O(1) space, adjusted with a piecewise-parabolic fit on every
    observation.  Exact for the first five samples, then an estimate
    whose error shrinks with the stream; no samples are retained.
    """

    __slots__ = ("quantile", "_initial", "_heights", "_positions", "_desired")

    def __init__(self, quantile: float):
        self.quantile = quantile
        self._initial: List[float] = []
        self._heights: Optional[List[float]] = None
        self._positions: Optional[List[float]] = None
        self._desired: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        q = self.quantile
        if self._heights is None:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0
                ]
            return
        h, n, d = self._heights, self._positions, self._desired
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = 3
            for i in range(4):
                if value < h[i + 1]:
                    cell = i
                    break
        for i in range(cell + 1, 5):
            n[i] += 1.0
        increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
        for i in range(5):
            d[i] += increments[i]
        for i in (1, 2, 3):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1 if delta >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step * (h[i + step] - h[i]) / (n[i + step] - n[i])

    @property
    def value(self) -> Optional[float]:
        """Current estimate (exact below five samples; None when empty)."""
        if self._heights is not None:
            return self._heights[2]
        if not self._initial:
            return None
        ordered = sorted(self._initial)
        position = self.quantile * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction


#: Quantiles every histogram estimates online (name -> q).
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
)


class Histogram(_Instrument):
    """Fixed-bucket histogram (bucket = upper bound, inclusive).

    Alongside the buckets, three streaming :class:`_P2Quantile`
    estimators (p50/p95/p99) are fed on every observation, giving
    latency percentiles without retaining samples or assuming the
    bucket layout matches the distribution.
    """

    __slots__ = (
        "buckets", "counts", "overflow", "count", "total", "min", "max",
        "_quantiles",
    )

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, registry)
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise MetricError(f"histogram {self.name!r}: empty bucket list")
        if len(set(ordered)) != len(ordered):
            raise MetricError(f"histogram {name!r}: duplicate buckets")
        self.buckets = ordered
        self.counts = [0] * len(ordered)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._quantiles = tuple(_P2Quantile(q) for _name, q in QUANTILES)

    def observe(self, value: float) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        with registry._lock:
            slot = bisect_left(self.buckets, value)
            if slot == len(self.buckets):
                self.overflow += 1
            else:
                self.counts[slot] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for estimator in self._quantiles:
                estimator.observe(value)

    @property
    def mean(self) -> float:
        """Mean observed value (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantiles(self) -> Dict[str, Optional[float]]:
        """Streaming estimates ``{"p50": ..., "p95": ..., "p99": ...}``."""
        return {
            name: estimator.value
            for (name, _q), estimator in zip(QUANTILES, self._quantiles)
        }

    def as_dict(self) -> dict:
        payload = {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        payload.update(self.quantiles())
        return payload


def _prometheus_name(name: str) -> str:
    """``serve.latency_ms`` -> ``repro_serve_latency_ms``."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _prometheus_value(value) -> str:
    """A number in Prometheus text syntax (integers stay integral)."""
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class MetricsRegistry:
    """A named collection of instruments.

    Instruments are created on first access and type-checked thereafter:
    asking for ``counter("x")`` after ``gauge("x")`` raises
    :class:`MetricError` instead of silently aliasing.
    """

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}
        self._enabled = enabled

    # -- enable / disable ------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether record calls currently do anything."""
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        """Turn every record path into a cheap no-op."""
        self._enabled = False

    # -- instrument accessors --------------------------------------------

    def _get(self, name: str, cls, factory) -> _Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, requested {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter, lambda: Counter(name, self))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge, lambda: Gauge(name, self))

    def timer(self, name: str) -> Timer:
        """Get or create the timer ``name``."""
        return self._get(name, Timer, lambda: Timer(name, self))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed at creation)."""
        return self._get(name, Histogram, lambda: Histogram(name, self, buckets))

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Drop every instrument (names become free again)."""
        with self._lock:
            self._instruments.clear()

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        """All instruments as ``{kind_plural: {name: payload}}``."""
        out: Dict[str, Dict[str, dict]] = {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }
        plural = {
            Counter: "counters",
            Gauge: "gauges",
            Timer: "timers",
            Histogram: "histograms",
        }
        with self._lock:
            items = sorted(self._instruments.items())
        for name, instrument in items:
            payload = instrument.as_dict()
            kind = plural[type(instrument)]
            del payload["type"]
            if kind in ("counters", "gauges"):
                out[kind][name] = payload["value"]
            else:
                out[kind][name] = payload
        return out

    def prometheus_lines(self) -> Iterator[str]:
        """Prometheus text exposition (format 0.0.4) of every instrument.

        Names are sanitized to ``repro_<name>`` with non-identifier
        characters collapsed to underscores.  Counters gain the
        conventional ``_total`` suffix; timers export as summaries
        (``_sum``/``_count``); histograms export cumulative
        ``_bucket{le=...}`` series plus ``_sum``/``_count`` and their
        streaming p50/p95/p99 estimates as gauges.
        """
        with self._lock:
            items = sorted(self._instruments.items())
        for name, instrument in items:
            metric = _prometheus_name(name)
            if isinstance(instrument, Counter):
                yield f"# TYPE {metric}_total counter"
                yield f"{metric}_total {instrument.value}"
            elif isinstance(instrument, Gauge):
                yield f"# TYPE {metric} gauge"
                yield f"{metric} {_prometheus_value(instrument.value)}"
            elif isinstance(instrument, Histogram):
                yield f"# TYPE {metric} histogram"
                cumulative = 0
                for bound, count in zip(instrument.buckets, instrument.counts):
                    cumulative += count
                    le = _prometheus_value(bound)
                    yield f'{metric}_bucket{{le="{le}"}} {cumulative}'
                yield f'{metric}_bucket{{le="+Inf"}} {instrument.count}'
                yield f"{metric}_sum {_prometheus_value(instrument.total)}"
                yield f"{metric}_count {instrument.count}"
                for qname, value in instrument.quantiles().items():
                    if value is not None:
                        yield f"# TYPE {metric}_{qname} gauge"
                        yield f"{metric}_{qname} {_prometheus_value(value)}"
            elif isinstance(instrument, Timer):
                yield f"# TYPE {metric} summary"
                yield f"{metric}_sum {_prometheus_value(instrument.total)}"
                yield f"{metric}_count {instrument.count}"

    def jsonl_lines(self) -> Iterator[str]:
        """One JSON object per instrument (JSONL export)."""
        with self._lock:
            items = sorted(self._instruments.items())
        for name, instrument in items:
            payload = {"name": name}
            payload.update(instrument.as_dict())
            yield json.dumps(payload, sort_keys=True)

    def write_json(self, path, extra: Optional[dict] = None) -> None:
        """Write the snapshot (merged with ``extra``) as a JSON file."""
        payload = dict(extra or {})
        payload["metrics"] = self.snapshot()
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def write_jsonl(self, path) -> None:
        """Write one JSON line per instrument."""
        with open(path, "w") as handle:
            for line in self.jsonl_lines():
                handle.write(line + "\n")


#: The process-wide registry every repro subsystem records into.
_GLOBAL = MetricsRegistry(
    enabled=os.environ.get("REPRO_METRICS", "1") not in ("0", "false", "off")
)


def metrics() -> MetricsRegistry:
    """The process-wide registry (always the same object)."""
    return _GLOBAL
