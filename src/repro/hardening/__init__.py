"""Hardening techniques against transient faults (paper §2.2).

Three techniques are supported, with their classical trade-offs:

* **re-execution** — roll-back and run the same task instance again, up to
  ``k`` times; topology unchanged, WCET inflated per Eq. (1):
  ``wcet' = (wcet + dt) * (k + 1)``;
* **active replication** — ``n`` copies of the task run on (ideally)
  different processors, a majority voter merges their outputs;
* **passive replication** — only part of the copies run proactively; the
  remaining replicas are instantiated on request of the voter when it
  detects a mismatch.

:func:`harden` applies a :class:`HardeningPlan` to an application set and
returns the transformed applications ``T'`` plus the bookkeeping needed by
the analyses (replica groups, voters, passive copies, re-execution depths).
"""

from repro.hardening.spec import HardeningKind, HardeningPlan, HardeningSpec
from repro.hardening.transform import HardenedSystem, harden
from repro.hardening.reexecution import (
    critical_wcet,
    nominal_bounds,
    reexecution_wcet,
)

__all__ = [
    "HardeningKind",
    "HardeningSpec",
    "HardeningPlan",
    "HardenedSystem",
    "harden",
    "reexecution_wcet",
    "critical_wcet",
    "nominal_bounds",
]
