"""Application of a hardening plan: ``T -> T'`` (paper §2.2, Figure 2).

Replication modifies the task-graph topology: the hardened task is copied,
the copies feed a majority voter, and the voter takes over the task's
outgoing channels.  Passive copies additionally receive *on-demand* trigger
edges from every active copy — they can only start once the active copies
have finished and the voter has requested them — which keeps the graph a
DAG while preserving the sequential detect-then-reexecute semantics of
Figure 2(b).

Re-execution leaves the topology unchanged; its timing effect (Eq. (1)) is
applied by the analyses via :mod:`repro.hardening.reexecution`.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import HardeningError
from repro.hardening.reexecution import critical_wcet as _critical_wcet
from repro.hardening.reexecution import nominal_bounds as _nominal_bounds
from repro.hardening.reexecution import recovery_bounds as _recovery_bounds
from repro.hardening.spec import HardeningKind, HardeningPlan, HardeningSpec
from repro.model.application import ApplicationSet
from repro.model.task import Channel, Task, TaskRole
from repro.model.taskgraph import TaskGraph

#: Separator used in generated replica/voter names.  Primary task names may
#: not contain it, which keeps generated names collision-free.
NAME_SEPARATOR = "#"


@dataclass(frozen=True)
class CriticalTrigger:
    """A task whose first fault switches the system to the critical state.

    Per paper §3 the trigger set consists of the re-executable and the
    passively replicated tasks.  ``start_anchors`` are the tasks whose
    earliest start bounds the first moment a fault can occur
    (``minStart_v`` in Algorithm 1); ``finish_anchor`` is the task whose
    latest normal-state finish bounds the moment from which droppable tasks
    have certainly disappeared (``maxFinish_v``).
    """

    primary: str
    kind: HardeningKind
    start_anchors: Tuple[str, ...]
    finish_anchor: str


@dataclass(frozen=True)
class HardenedSystem:
    """The result of applying a hardening plan.

    Attributes
    ----------
    applications:
        The transformed application set ``T'``.
    source:
        The original application set ``T``.
    plan:
        The plan that was applied.
    replica_groups:
        For each replicated primary task: all copy names, primary first,
        then active replicas, then passive copies.
    voters:
        For each replicated primary task: the voter task name.
    passive_tasks:
        Names of all passive (on-demand) copies in ``T'``.
    reexec_counts:
        ``task -> k`` for every re-executable task.
    time_redundancy:
        ``task -> spec`` for every time-redundant task (re-execution and
        checkpointing alike).
    derived_to_primary:
        Maps every task of ``T'`` to the primary task it descends from
        (primary tasks map to themselves).
    """

    applications: ApplicationSet
    source: ApplicationSet
    plan: HardeningPlan
    replica_groups: Dict[str, Tuple[str, ...]]
    voters: Dict[str, str]
    passive_tasks: FrozenSet[str]
    reexec_counts: Dict[str, int]
    time_redundancy: Dict[str, HardeningSpec]
    derived_to_primary: Dict[str, str]

    def spec_of(self, task_name: str) -> HardeningSpec:
        """Hardening spec of the primary task a ``T'`` task descends from."""
        return self.plan.spec_of(self.derived_to_primary.get(task_name, task_name))

    def is_passive(self, task_name: str) -> bool:
        """Whether a ``T'`` task is an on-demand (passive) copy."""
        return task_name in self.passive_tasks

    def is_reexecutable(self, task_name: str) -> bool:
        """Whether a ``T'`` task is hardened by re-execution."""
        return task_name in self.reexec_counts

    def is_time_redundant(self, task_name: str) -> bool:
        """Whether a ``T'`` task recovers via re-execution or checkpointing."""
        return task_name in self.time_redundancy

    def critical_inflation(self, task_name: str) -> float:
        """``critical_wcet / nominal_wcet`` of a time-redundant task.

        1.0 for everything else; processor speed scaling cancels in the
        ratio, so the analyses can inflate scaled job WCETs directly.
        """
        if task_name not in self.time_redundancy:
            return 1.0
        nominal = self.nominal_bounds(task_name)[1]
        if nominal <= 0:
            return 1.0
        return self.critical_wcet(task_name) / nominal

    def recovery_bounds(self, task_name: str) -> Tuple[float, float]:
        """``[bcet, wcet]`` of one fault recovery of a time-redundant task."""
        task = self.applications.task(task_name)
        return _recovery_bounds(task, self.time_redundancy[task_name])

    def nominal_bounds(self, task_name: str) -> Tuple[float, float]:
        """Fault-free ``[bcet, wcet]`` of a ``T'`` task.

        Includes the per-execution detection overhead of re-executable
        tasks; does *not* zero out passive copies — that is Algorithm 1's
        explicit preprocessing step (lines 2–6).
        """
        task = self.applications.task(task_name)
        return _nominal_bounds(task, self._timing_spec(task_name))

    def critical_wcet(self, task_name: str) -> float:
        """Critical-state worst case of a ``T'`` task (Eq. (1) if re-executed)."""
        task = self.applications.task(task_name)
        return _critical_wcet(task, self._timing_spec(task_name))

    def _timing_spec(self, task_name: str) -> HardeningSpec:
        return self.time_redundancy.get(task_name, HardeningSpec.none())

    def triggers(self) -> List[CriticalTrigger]:
        """All tasks that may switch the system to the critical state.

        For a re-executable task the anchors are the task itself: the
        fault is detected at the end of its nominal execution.  For a
        passively replicated task the fault may occur as early as the
        earliest active copy starts, and the transition is complete once
        the voter has finished (it is the voter that detects the mismatch
        and requests the passive copy).
        """
        triggers: List[CriticalTrigger] = []
        for task_name in sorted(self.time_redundancy):
            triggers.append(
                CriticalTrigger(
                    primary=task_name,
                    kind=self.time_redundancy[task_name].kind,
                    start_anchors=(task_name,),
                    finish_anchor=task_name,
                )
            )
        for primary, spec in self.plan.items():
            if spec.kind is not HardeningKind.PASSIVE:
                continue
            group = self.replica_groups[primary]
            active = tuple(
                name for name in group if name not in self.passive_tasks
            )
            triggers.append(
                CriticalTrigger(
                    primary=primary,
                    kind=HardeningKind.PASSIVE,
                    start_anchors=active,
                    finish_anchor=self.voters[primary],
                )
            )
        return triggers

    @property
    def trigger_count(self) -> int:
        """Number of possible normal-to-critical transitions."""
        return len(self.triggers())


def harden(applications: ApplicationSet, plan: HardeningPlan) -> HardenedSystem:
    """Apply a hardening plan to an application set.

    Raises :class:`~repro.errors.HardeningError` if the plan names unknown
    tasks, targets non-primary tasks, or a task name contains the reserved
    separator ``#``.
    """
    known = set(applications.all_task_names)
    for task_name, _spec in plan.items():
        if task_name not in known:
            raise HardeningError(f"hardening plan names unknown task {task_name!r}")

    replica_groups: Dict[str, Tuple[str, ...]] = {}
    voters: Dict[str, str] = {}
    passive_tasks: List[str] = []
    reexec_counts: Dict[str, int] = {}
    time_redundancy: Dict[str, HardeningSpec] = {}
    derived_to_primary: Dict[str, str] = {}

    new_graphs: List[TaskGraph] = []
    for graph in applications.graphs:
        new_graphs.append(
            _harden_graph(
                graph,
                plan,
                replica_groups,
                voters,
                passive_tasks,
                reexec_counts,
                time_redundancy,
                derived_to_primary,
            )
        )

    return HardenedSystem(
        applications=ApplicationSet(new_graphs),
        source=applications,
        plan=plan,
        replica_groups=replica_groups,
        voters=voters,
        passive_tasks=frozenset(passive_tasks),
        reexec_counts=reexec_counts,
        time_redundancy=time_redundancy,
        derived_to_primary=derived_to_primary,
    )


def _harden_graph(
    graph: TaskGraph,
    plan: HardeningPlan,
    replica_groups: Dict[str, Tuple[str, ...]],
    voters: Dict[str, str],
    passive_tasks: List[str],
    reexec_counts: Dict[str, int],
    time_redundancy: Dict[str, HardeningSpec],
    derived_to_primary: Dict[str, str],
) -> TaskGraph:
    """Transform one task graph according to the plan."""
    tasks: List[Task] = []
    channels: List[Channel] = []
    # The task from which successors of each original task now receive data.
    out_port: Dict[str, str] = {}
    # The copies of each original task that receive its incoming channels,
    # paired with the on-demand flag of the receiving copy.
    receivers: Dict[str, List[Tuple[str, bool]]] = {}

    for task in graph.tasks:
        if task.role is not TaskRole.PRIMARY:
            raise HardeningError(
                f"graph {graph.name!r}: task {task.name!r} is already derived "
                f"({task.role.value}); hardening applies to primary graphs only"
            )
        if NAME_SEPARATOR in task.name:
            raise HardeningError(
                f"task name {task.name!r} contains the reserved separator "
                f"{NAME_SEPARATOR!r}"
            )
        spec = plan.spec_of(task.name)
        derived_to_primary[task.name] = task.name

        if spec.is_time_redundant:
            if spec.kind is HardeningKind.REEXECUTION:
                reexec_counts[task.name] = spec.reexecutions
            time_redundancy[task.name] = spec
            tasks.append(task)
            out_port[task.name] = task.name
            receivers[task.name] = [(task.name, False)]
        elif spec.is_replicated:
            group, voter, group_channels, group_passive = _replicate(task, spec)
            tasks.extend(group)
            tasks.append(voter)
            channels.extend(group_channels)
            passive_tasks.extend(group_passive)
            for copy in group:
                derived_to_primary[copy.name] = task.name
            derived_to_primary[voter.name] = task.name
            replica_groups[task.name] = tuple(copy.name for copy in group)
            voters[task.name] = voter.name
            out_port[task.name] = voter.name
            passive_set = set(group_passive)
            receivers[task.name] = [
                (copy.name, copy.name in passive_set) for copy in group
            ]
        else:
            tasks.append(task)
            out_port[task.name] = task.name
            receivers[task.name] = [(task.name, False)]

    for channel in graph.channels:
        source = out_port[channel.src]
        for receiver, on_demand in receivers[channel.dst]:
            channels.append(
                Channel(
                    src=source,
                    dst=receiver,
                    size=channel.size,
                    on_demand=on_demand or channel.on_demand,
                )
            )

    return graph.derive(tasks=tasks, channels=channels)


def _replicate(
    task: Task, spec: HardeningSpec
) -> Tuple[List[Task], Task, List[Channel], List[str]]:
    """Build the copies, voter and internal channels for one task."""
    active_count = spec.effective_active_replicas
    copies: List[Task] = []
    passive_names: List[str] = []

    # Primary keeps its name and acts as copy 0.
    copies.append(task)
    for index in range(1, active_count):
        copies.append(
            Task(
                name=f"{task.name}{NAME_SEPARATOR}r{index}",
                bcet=task.bcet,
                wcet=task.wcet,
                voting_overhead=task.voting_overhead,
                detection_overhead=task.detection_overhead,
                role=TaskRole.REPLICA,
                origin=task.name,
                replica_index=index,
            )
        )
    for offset in range(spec.passive_replicas):
        index = active_count + offset
        name = f"{task.name}{NAME_SEPARATOR}p{offset}"
        copies.append(
            Task(
                name=name,
                bcet=task.bcet,
                wcet=task.wcet,
                voting_overhead=task.voting_overhead,
                detection_overhead=task.detection_overhead,
                role=TaskRole.REPLICA,
                origin=task.name,
                replica_index=index,
            )
        )
        passive_names.append(name)

    voter = Task(
        name=f"{task.name}{NAME_SEPARATOR}vote",
        bcet=task.voting_overhead,
        wcet=task.voting_overhead,
        role=TaskRole.VOTER,
        origin=task.name,
    )

    channels: List[Channel] = []
    active_names = [copy.name for copy in copies if copy.name not in passive_names]
    for copy in copies:
        channels.append(
            Channel(
                src=copy.name,
                dst=voter.name,
                size=0.0,
                on_demand=copy.name in passive_names,
            )
        )
    # Passive copies start only after every active copy finished (the voter
    # then has the information to request them): on-demand trigger edges.
    for passive in passive_names:
        for active in active_names:
            channels.append(
                Channel(src=active, dst=passive, size=0.0, on_demand=True)
            )
    return copies, voter, channels, passive_names
