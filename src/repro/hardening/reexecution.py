"""Re-execution timing arithmetic — Eq. (1) of the paper.

A task hardened by re-execution detects faults locally at the end of each
execution (overhead ``dt``), rolls back, and runs again — up to ``k``
times.  The critical-state worst case is therefore

    ``wcet' = (wcet + dt) * (k + 1)``.

The nominal case (``k = 0``, no fault) still pays the detection overhead
once: ``wcet + dt``.
"""

from typing import Tuple

from repro.errors import HardeningError
from repro.hardening.spec import HardeningKind, HardeningSpec
from repro.model.task import Task


def reexecution_wcet(wcet: float, detection_overhead: float, k: int) -> float:
    """Eq. (1): worst-case execution time with up to ``k`` re-executions."""
    if k < 0:
        raise HardeningError(f"re-execution count must be >= 0, got {k}")
    return (wcet + detection_overhead) * (k + 1)


def checkpoint_wcet(
    wcet: float, detection_overhead: float, segments: int, k: int
) -> float:
    """Checkpointing worst case (extension of Eq. (1), cf. ref [2]).

    Detection + state saving cost one ``dt`` per segment; each of the
    ``k`` recoveries re-executes at most one segment plus its detection:

        ``wcet' = (wcet + n*dt) + k * (wcet/n + dt)``

    With ``n = 1`` this degenerates to Eq. (1) exactly.
    """
    if segments < 1:
        raise HardeningError(f"segment count must be >= 1, got {segments}")
    if k < 0:
        raise HardeningError(f"recovery count must be >= 0, got {k}")
    nominal = wcet + segments * detection_overhead
    recovery = wcet / segments + detection_overhead
    return nominal + k * recovery


def nominal_bounds(task: Task, spec: HardeningSpec) -> Tuple[float, float]:
    """``[bcet, wcet]`` of a task in the fault-free (normal) state.

    Time-redundant tasks pay the detection overhead on every execution
    (once per segment for checkpointing), so it is included even when no
    fault occurs.  Other kinds leave the bounds untouched (replication
    overheads materialise as voter tasks).
    """
    if spec.kind is HardeningKind.REEXECUTION:
        return (
            task.bcet + task.detection_overhead,
            task.wcet + task.detection_overhead,
        )
    if spec.kind is HardeningKind.CHECKPOINT:
        overhead = spec.checkpoints * task.detection_overhead
        return (task.bcet + overhead, task.wcet + overhead)
    return (task.bcet, task.wcet)


def recovery_bounds(task: Task, spec: HardeningSpec) -> Tuple[float, float]:
    """``[bcet, wcet]`` of a single fault recovery.

    Re-execution re-runs the whole task (plus detection); checkpointing
    only the current segment.  Only meaningful for time-redundant specs.
    """
    if spec.kind is HardeningKind.REEXECUTION:
        return (
            task.bcet + task.detection_overhead,
            task.wcet + task.detection_overhead,
        )
    if spec.kind is HardeningKind.CHECKPOINT:
        n = spec.checkpoints
        return (
            task.bcet / n + task.detection_overhead,
            task.wcet / n + task.detection_overhead,
        )
    raise HardeningError(f"{spec.kind.value} spec has no recovery phase")


def critical_wcet(task: Task, spec: HardeningSpec) -> float:
    """Worst-case execution time of a task in the critical state.

    For re-executable tasks this is Eq. (1), for checkpointed tasks its
    segment-wise generalisation; for every other kind the critical-state
    worst case equals the nominal one.
    """
    if spec.kind is HardeningKind.REEXECUTION:
        return reexecution_wcet(task.wcet, task.detection_overhead, spec.reexecutions)
    if spec.kind is HardeningKind.CHECKPOINT:
        return checkpoint_wcet(
            task.wcet, task.detection_overhead, spec.checkpoints, spec.reexecutions
        )
    return nominal_bounds(task, spec)[1]
