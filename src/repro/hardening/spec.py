"""Per-task hardening specifications and whole-system plans."""

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import HardeningError


class HardeningKind(enum.Enum):
    """The hardening technique applied to a task.

    ``REEXECUTION``, ``ACTIVE`` and ``PASSIVE`` are the paper's §2.2
    techniques; ``CHECKPOINT`` is the checkpointing-with-rollback scheme
    of the related work (Pop et al., ref [2]) supported as an extension:
    the task saves its state at segment boundaries and a fault only
    re-executes the current segment.
    """

    NONE = "none"
    REEXECUTION = "reexecution"
    ACTIVE = "active"
    PASSIVE = "passive"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class HardeningSpec:
    """How a single (primary) task is hardened.

    Parameters
    ----------
    kind:
        The hardening technique.
    reexecutions:
        ``k`` — maximum number of re-executions (only for
        :attr:`HardeningKind.REEXECUTION`; must be >= 1).
    replicas:
        Total number of copies of the task, including the original (only
        for replication kinds; must be >= 2; >= 3 enables majority
        masking, exactly 2 gives detection only).
    active_replicas:
        For :attr:`HardeningKind.PASSIVE`: how many of the copies run
        proactively (>= 2 so that the voter can detect a mismatch and
        < ``replicas`` so that at least one passive copy exists).
    checkpoints:
        For :attr:`HardeningKind.CHECKPOINT`: the number of execution
        segments (>= 2; one segment is plain re-execution).  Detection
        and state saving cost one ``detection_overhead`` per segment; a
        fault re-executes only the current segment, up to
        ``reexecutions`` recoveries in total.
    """

    kind: HardeningKind = HardeningKind.NONE
    reexecutions: int = 0
    replicas: int = 1
    active_replicas: Optional[int] = None
    checkpoints: int = 0

    def __post_init__(self):
        if self.kind is not HardeningKind.CHECKPOINT and self.checkpoints != 0:
            raise HardeningError("only CHECKPOINT specs carry a segment count")
        if self.kind is HardeningKind.NONE:
            if self.reexecutions != 0 or self.replicas != 1 or self.active_replicas is not None:
                raise HardeningError("NONE spec must not carry parameters")
        elif self.kind is HardeningKind.REEXECUTION:
            if self.reexecutions < 1:
                raise HardeningError(
                    f"re-execution requires k >= 1, got {self.reexecutions}"
                )
            if self.replicas != 1 or self.active_replicas is not None:
                raise HardeningError("re-execution spec must not set replica counts")
        elif self.kind is HardeningKind.CHECKPOINT:
            if self.checkpoints < 2:
                raise HardeningError(
                    f"checkpointing requires >= 2 segments, got {self.checkpoints}"
                )
            if self.reexecutions < 1:
                raise HardeningError(
                    f"checkpointing requires k >= 1 recoveries, got {self.reexecutions}"
                )
            if self.replicas != 1 or self.active_replicas is not None:
                raise HardeningError("checkpoint spec must not set replica counts")
        elif self.kind is HardeningKind.ACTIVE:
            if self.replicas < 2:
                raise HardeningError(
                    f"active replication requires >= 2 copies, got {self.replicas}"
                )
            if self.reexecutions != 0 or self.active_replicas is not None:
                raise HardeningError("active spec carries only the replica count")
        elif self.kind is HardeningKind.PASSIVE:
            if self.replicas < 3:
                raise HardeningError(
                    f"passive replication requires >= 3 copies (>= 2 active + "
                    f">= 1 passive), got {self.replicas}"
                )
            active = self.effective_active_replicas
            if active < 2:
                raise HardeningError("passive replication requires >= 2 active copies")
            if active >= self.replicas:
                raise HardeningError(
                    "passive replication requires at least one passive copy"
                )
            if self.reexecutions != 0:
                raise HardeningError("passive spec must not set re-executions")

    @property
    def effective_active_replicas(self) -> int:
        """Number of proactively executed copies."""
        if self.kind is HardeningKind.ACTIVE:
            return self.replicas
        if self.kind is HardeningKind.PASSIVE:
            return 2 if self.active_replicas is None else self.active_replicas
        return 1

    @property
    def passive_replicas(self) -> int:
        """Number of on-demand copies."""
        if self.kind is HardeningKind.PASSIVE:
            return self.replicas - self.effective_active_replicas
        return 0

    @property
    def is_replicated(self) -> bool:
        """Whether the spec creates replica tasks and a voter."""
        return self.kind in (HardeningKind.ACTIVE, HardeningKind.PASSIVE)

    @property
    def triggers_critical_state(self) -> bool:
        """Whether a fault under this spec switches the system critical.

        Per paper §3, re-execution and passive replication trigger the
        critical state; active replication masks faults transparently.
        Checkpoint recovery, like re-execution, delays the task and
        therefore triggers the critical state as well.
        """
        return self.kind in (
            HardeningKind.REEXECUTION,
            HardeningKind.PASSIVE,
            HardeningKind.CHECKPOINT,
        )

    @property
    def is_time_redundant(self) -> bool:
        """Whether the spec recovers by spending extra time on the same PE."""
        return self.kind in (HardeningKind.REEXECUTION, HardeningKind.CHECKPOINT)

    # Convenience constructors ------------------------------------------------

    @staticmethod
    def none() -> "HardeningSpec":
        """No hardening."""
        return HardeningSpec()

    @staticmethod
    def reexecution(k: int) -> "HardeningSpec":
        """Re-execution with at most ``k`` retries."""
        return HardeningSpec(kind=HardeningKind.REEXECUTION, reexecutions=k)

    @staticmethod
    def active(replicas: int = 3) -> "HardeningSpec":
        """Active replication with ``replicas`` proactive copies."""
        return HardeningSpec(kind=HardeningKind.ACTIVE, replicas=replicas)

    @staticmethod
    def passive(replicas: int = 3, active: int = 2) -> "HardeningSpec":
        """Passive replication: ``active`` proactive + the rest on demand."""
        return HardeningSpec(
            kind=HardeningKind.PASSIVE, replicas=replicas, active_replicas=active
        )

    @staticmethod
    def checkpointing(recoveries: int, segments: int = 2) -> "HardeningSpec":
        """Checkpointing: ``segments`` segments, up to ``recoveries`` rollbacks."""
        return HardeningSpec(
            kind=HardeningKind.CHECKPOINT,
            reexecutions=recoveries,
            checkpoints=segments,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-friendly dictionary."""
        return {
            "kind": self.kind.value,
            "reexecutions": self.reexecutions,
            "replicas": self.replicas,
            "active_replicas": self.active_replicas,
            "checkpoints": self.checkpoints,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "HardeningSpec":
        """Deserialize from :meth:`to_dict` output."""
        return HardeningSpec(
            kind=HardeningKind(data.get("kind", "none")),
            reexecutions=data.get("reexecutions", 0),
            replicas=data.get("replicas", 1),
            active_replicas=data.get("active_replicas"),
            checkpoints=data.get("checkpoints", 0),
        )


class HardeningPlan:
    """An immutable map from primary task names to hardening specs.

    Tasks absent from the plan are unhardened.
    """

    def __init__(self, specs: Optional[Mapping[str, HardeningSpec]] = None):
        cleaned: Dict[str, HardeningSpec] = {}
        for task_name, spec in (specs or {}).items():
            if spec.kind is not HardeningKind.NONE:
                cleaned[task_name] = spec
        self._specs = cleaned

    def spec_of(self, task_name: str) -> HardeningSpec:
        """Spec of a task (``NONE`` when unlisted)."""
        return self._specs.get(task_name, HardeningSpec.none())

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._specs))

    def items(self) -> Iterable[Tuple[str, HardeningSpec]]:
        """``(task, spec)`` pairs for all hardened tasks, sorted by name."""
        return [(name, self._specs[name]) for name in sorted(self._specs)]

    def with_spec(self, task_name: str, spec: HardeningSpec) -> "HardeningPlan":
        """Return a copy where the named task uses ``spec``."""
        updated = dict(self._specs)
        if spec.kind is HardeningKind.NONE:
            updated.pop(task_name, None)
        else:
            updated[task_name] = spec
        return HardeningPlan(updated)

    def kind_histogram(self) -> Dict[HardeningKind, int]:
        """Count of applied techniques, used by the §5.2 statistics."""
        histogram: Dict[HardeningKind, int] = {}
        for spec in self._specs.values():
            histogram[spec.kind] = histogram.get(spec.kind, 0) + 1
        return histogram

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-friendly dictionary."""
        return {name: spec.to_dict() for name, spec in self.items()}

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "HardeningPlan":
        """Deserialize from :meth:`to_dict` output."""
        return HardeningPlan(
            {name: HardeningSpec.from_dict(spec) for name, spec in data.items()}
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, HardeningPlan):
            return NotImplemented
        return self._specs == other._specs

    def __repr__(self) -> str:
        return f"HardeningPlan({len(self._specs)} hardened tasks)"
