"""Retrying, keep-alive stdlib client for ``repro serve``.

Backs the ``repro submit`` CLI, the serve test/smoke harnesses, and the
chaos harness.  Everything rides on :mod:`http.client` with one
persistent connection per thread; errors surface as
:class:`ServeError` carrying the HTTP status, the server's
``Retry-After`` hint, and whether the failure was transport-level.

Retries are **safe by construction** and **opt-in** via
:class:`RetryPolicy`:

* ``analyze``/``simulate`` are pure functions of their canonical body;
  the server dedups them by sha256 request digest, so a replayed
  request coalesces with the in-flight computation and can never
  compute twice or diverge (byte-identical responses for all waiters).
* ``explore`` submissions carry a client-generated ``idempotency_key``;
  the server binds the key to the first accepted job, so a retried
  submission returns the same job instead of launching a duplicate
  exploration.
* ``cancel`` and every ``GET`` are idempotent by nature.

Retryable: HTTP 429 and 503 (honoring ``Retry-After`` as the *floor*
of the jittered exponential backoff) and transport failures (connection
refused/reset, timeouts, mid-response disconnects).  Never retried:
400, 404, 500, 504 — those are answers, not interference.

When tracing is enabled, every attempt opens a ``client.request`` span
and ships its context in a ``traceparent`` header, so the server-side
spans join the caller's trace; the trace ID the server answered under
(``X-Repro-Trace``) is kept on :attr:`ServeClient.last_trace_id`.
"""

import http.client
import json
import random
import socket
import threading
import time
import uuid
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.model.serialization import SystemBundle
from repro.obs.metrics import metrics
from repro.serve.admission import (
    CLASS_HEADER,
    CLIENT_HEADER,
    DEADLINE_HEADER,
    parse_class,
    parse_client_id,
)
from repro.obs.trace import (
    RESPONSE_TRACE_HEADER,
    TRACEPARENT_HEADER,
    capture_context,
    span as trace_span,
    to_traceparent,
)

__all__ = ["ServeClient", "ServeError", "RetryPolicy", "DeadlineExhausted"]

SystemSpec = Union[str, Dict[str, Any], SystemBundle]


class ServeError(ReproError):
    """An HTTP- or transport-level failure reported by the client."""

    def __init__(
        self,
        message: str,
        status: int = 0,
        retry_after: Optional[int] = None,
        error_type: Optional[str] = None,
        transport: bool = False,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.error_type = error_type
        #: Whether the failure happened below HTTP (connect, reset,
        #: timeout, mid-response disconnect) — always retryable for this
        #: API because every endpoint is idempotent (see module docs).
        self.transport = transport


class DeadlineExhausted(ServeError):
    """The caller's remaining budget cannot cover another attempt.

    Raised *before* sleeping when a retry backoff (including a server
    ``Retry-After`` floor) would overshoot the deadline the caller gave
    this request — failing fast beats blocking past a budget nobody can
    extend.  Never retried (``transport=False``, no retryable status).
    """


class RetryPolicy:
    """Jittered exponential backoff with ``Retry-After`` as the floor.

    ``delay(attempt)`` grows ``backoff_base * 2**attempt`` up to
    ``backoff_cap``, multiplied by ``1 + U(0, jitter)`` so synchronized
    clients spread out.  A server-provided ``Retry-After`` can only
    *raise* the delay — the server's estimate is honest (EWMA of work
    durations times backlog) and sleeping less would just earn another
    429.  ``seed`` pins the jitter stream for reproducible harnesses.
    """

    def __init__(
        self,
        retries: int = 4,
        backoff_base: float = 0.05,
        backoff_cap: float = 10.0,
        jitter: float = 0.5,
        seed: Optional[int] = None,
    ):
        if retries < 0:
            raise ReproError("retries must be >= 0")
        if backoff_base < 0 or backoff_cap < 0 or jitter < 0:
            raise ReproError("backoff parameters must be >= 0")
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()

    def should_retry(self, error: ServeError) -> bool:
        """Whether this failure class is worth another attempt."""
        return error.transport or error.status in (429, 503)

    def delay(self, attempt: int, retry_after: Optional[int] = None) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        with self._rng_lock:
            delay = base * (1.0 + self.jitter * self._rng.random())
        if retry_after:
            delay = max(delay, float(retry_after))
        return delay


def _system_payload(system: SystemSpec) -> Union[str, Dict[str, Any]]:
    if isinstance(system, SystemBundle):
        from repro.serve.encoding import bundle_to_payload

        return bundle_to_payload(system)
    return system


class _TransportFailure(Exception):
    """Internal: an attempt died below HTTP; carries the cause."""

    def __init__(self, cause: BaseException):
        super().__init__(str(cause))
        self.cause = cause


class ServeClient:
    """One server endpoint plus request plumbing.

    The client keeps one persistent connection per thread (keep-alive),
    reconnecting transparently when the server closed an idle one.
    ``retry=None`` (the default) fails fast on the first error —
    harnesses and the CLI opt into a :class:`RetryPolicy` explicitly.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 600.0,
        retry: Optional[RetryPolicy] = None,
        criticality: Optional[str] = None,
        client_id: Optional[str] = None,
    ):
        self.base_url = base_url.rstrip("/")
        #: Criticality class sent as ``X-Repro-Class`` on every request
        #: (``None`` sends no header; the server defaults to standard).
        self.criticality = (
            parse_class(criticality) if criticality is not None else None
        )
        #: Quota identity sent as ``X-Repro-Client`` (``None`` shares
        #: the server's anonymous bucket).
        self.client_id = (
            parse_client_id(client_id) if client_id is not None else None
        )
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", ""):
            raise ReproError(
                f"unsupported scheme {parts.scheme!r} in {base_url!r}"
            )
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self.timeout = timeout
        self.retry = retry
        self._local = threading.local()
        #: Trace ID of the most recent response (``X-Repro-Trace``).
        self.last_trace_id: Optional[str] = None

    # -- connection management -------------------------------------------

    def _connection(self, timeout: float) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is not None and conn.timeout != timeout:
            self._drop_connection()
            conn = None
        if conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=timeout
            )
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
            self._local.conn = None

    def close(self) -> None:
        """Close this thread's persistent connection (if any)."""
        self._drop_connection()

    # -- plumbing --------------------------------------------------------

    def _attempt(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
        timeout: float,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One transport round trip, with transparent stale-connection
        recovery: a request that dies on a *reused* keep-alive connection
        (the server may have closed it while idle) is re-sent once on a
        fresh connection before the failure counts as an attempt.  Safe
        because every endpoint is idempotent (see module docs).
        """
        for fresh in (False, True):
            reused = getattr(self._local, "conn", None) is not None
            conn = self._connection(timeout)
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                data = resp.read()
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                OSError,
            ) as error:
                self._drop_connection()
                if reused and not fresh:
                    metrics().counter("client.reconnects").inc()
                    continue
                raise _TransportFailure(error) from error
            resp_headers = {k: v for k, v in resp.getheaders()}
            if resp.will_close:
                self._drop_connection()
            return resp.status, resp_headers, data
        raise _TransportFailure(OSError("unreachable"))  # pragma: no cover

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        deadline_seconds: Optional[float] = None,
    ) -> bytes:
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        timeout = self.timeout if timeout is None else timeout
        # The deadline is an *overall* budget across every retry: each
        # attempt recomputes the remaining slice, ships it as
        # ``X-Repro-Deadline`` (so the server can 504 doomed work at
        # admission), and caps its socket timeout at the slice.
        deadline = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        retry = self.retry
        attempts = 1 + (retry.retries if retry is not None else 0)
        last_error: Optional[ServeError] = None
        for attempt in range(attempts):
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExhausted(
                        f"request budget of {deadline_seconds:g}s exhausted "
                        f"after {attempt} attempt(s)"
                    ) from last_error
            try:
                return self._attempt_with_span(
                    method,
                    path,
                    body,
                    timeout if remaining is None else min(timeout, remaining),
                    attempt,
                    remaining,
                )
            except ServeError as error:
                last_error = error
                if retry is None or not retry.should_retry(error):
                    raise
                if attempt + 1 >= attempts:
                    break
                wait = retry.delay(attempt, error.retry_after)
                if deadline is not None and time.monotonic() + wait > deadline:
                    # Sleeping would outlive the budget (often because the
                    # server's Retry-After floor exceeds what is left):
                    # fail fast with a typed error instead of blocking.
                    left = max(0.0, deadline - time.monotonic())
                    raise DeadlineExhausted(
                        f"server backoff of {wait:.2f}s exceeds the "
                        f"{left:.2f}s of request budget left",
                        status=error.status,
                        retry_after=error.retry_after,
                        error_type=error.error_type,
                    ) from error
                metrics().counter("client.retries").inc()
                time.sleep(wait)
        assert last_error is not None
        raise last_error

    def _attempt_with_span(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        timeout: float,
        attempt: int,
        remaining: Optional[float] = None,
    ) -> bytes:
        with trace_span(
            "client.request", method=method, path=path, attempt=attempt
        ) as sp:
            headers: Dict[str, str] = {}
            if body is not None:
                headers["Content-Type"] = "application/json"
            if self.criticality is not None:
                headers[CLASS_HEADER] = self.criticality
            if self.client_id is not None:
                headers[CLIENT_HEADER] = self.client_id
            if remaining is not None:
                headers[DEADLINE_HEADER] = f"{remaining:.3f}"
            # Captured *inside* the span, so the server parents its
            # serve.request on this client.request, not on our caller.
            traceparent = to_traceparent(capture_context())
            if traceparent is not None:
                headers[TRACEPARENT_HEADER] = traceparent
            try:
                status, resp_headers, data = self._attempt(
                    method, path, body, headers, timeout
                )
            except _TransportFailure as failure:
                cause = failure.cause
                raise ServeError(
                    f"cannot reach {self.base_url}: "
                    f"{type(cause).__name__}: {cause}",
                    transport=True,
                ) from None
            served = resp_headers.get(RESPONSE_TRACE_HEADER)
            if served:
                self.last_trace_id = served
                sp.set_attribute("served_trace_id", served)
            if status >= 400:
                try:
                    detail = json.loads(data).get("error", {})
                except (json.JSONDecodeError, AttributeError):
                    detail = {}
                retry_after = resp_headers.get("Retry-After")
                raise ServeError(
                    detail.get("message") or f"HTTP {status} on {path}",
                    status=status,
                    retry_after=int(retry_after) if retry_after else None,
                    error_type=detail.get("type"),
                )
            return data

    def _request_json(
        self, method, path, payload=None, timeout=None, deadline_seconds=None
    ) -> Dict[str, Any]:
        return json.loads(
            self._request(method, path, payload, timeout, deadline_seconds)
        )

    # -- endpoints -------------------------------------------------------

    def analyze_raw(self, system: SystemSpec, **params) -> bytes:
        """``POST /v1/analyze``, returning the raw response bytes.

        The raw form exists so byte-identity (dedup, facade equality) can
        be asserted without a decode/re-encode round trip.  Reserved
        kwargs: ``request_timeout`` overrides the client timeout for
        this request only; ``deadline_seconds`` is the overall budget
        across retries, shipped per attempt as ``X-Repro-Deadline`` (a
        header, so it never splits the server's dedup digest).
        Everything else goes into the request body.
        """
        timeout = params.pop("request_timeout", None)
        deadline = params.pop("deadline_seconds", None)
        payload = {"system": _system_payload(system), **params}
        return self._request(
            "POST", "/v1/analyze", payload, timeout, deadline_seconds=deadline
        )

    def analyze(self, system: SystemSpec, **params) -> Dict[str, Any]:
        """``POST /v1/analyze`` decoded to a dict."""
        return json.loads(self.analyze_raw(system, **params))

    def simulate_raw(self, system: SystemSpec, **params) -> bytes:
        """``POST /v1/simulate``, returning the raw response bytes."""
        timeout = params.pop("request_timeout", None)
        deadline = params.pop("deadline_seconds", None)
        payload = {"system": _system_payload(system), **params}
        return self._request(
            "POST", "/v1/simulate", payload, timeout, deadline_seconds=deadline
        )

    def simulate(self, system: SystemSpec, **params) -> Dict[str, Any]:
        """``POST /v1/simulate`` decoded to a dict."""
        return json.loads(self.simulate_raw(system, **params))

    def explore(self, system: SystemSpec, **params) -> Dict[str, Any]:
        """``POST /v1/explore``; returns the 202 job stub (``id`` etc.).

        An ``idempotency_key`` is generated when the caller does not
        supply one, so retried submissions (explicit or via the retry
        policy) always coalesce onto one server-side job.
        """
        timeout = params.pop("request_timeout", None)
        deadline = params.pop("deadline_seconds", None)
        params.setdefault("idempotency_key", f"ck-{uuid.uuid4().hex}")
        payload = {"system": _system_payload(system), **params}
        return self._request_json(
            "POST", "/v1/explore", payload, timeout, deadline_seconds=deadline
        )

    def shard(self, system: SystemSpec, **params) -> Dict[str, Any]:
        """``POST /v1/shard``; returns the 202 job stub.

        Shard jobs are the island coordinator's durable building blocks
        (``op`` = ``epoch``/``migrate``/``merge`` against a shared
        ``run_id``).  The coordinator supplies deterministic
        ``idempotency_key`` values, so resubmitting a step after a
        client crash coalesces onto the original job; a random key is
        generated only when the caller set none.
        """
        timeout = params.pop("request_timeout", None)
        deadline = params.pop("deadline_seconds", None)
        params.setdefault("idempotency_key", f"ck-{uuid.uuid4().hex}")
        payload = {"system": _system_payload(system), **params}
        return self._request_json(
            "POST", "/v1/shard", payload, timeout, deadline_seconds=deadline
        )

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>``."""
        return self._request_json("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /v1/jobs/<id>/cancel``."""
        return self._request_json("POST", f"/v1/jobs/{job_id}/cancel")

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request_json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._request_json("GET", "/metrics")

    def wait_job(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_seconds: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll until the job leaves pending/running (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] not in ("pending", "running"):
                return record
            if time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {record['status']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_seconds)
