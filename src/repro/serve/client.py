"""Thin stdlib client for a running ``repro serve`` instance.

Backs the ``repro submit`` CLI and the serve test/smoke harnesses.
Everything rides on :mod:`urllib.request`; errors surface as
:class:`ServeError` carrying the HTTP status and, for 429 responses,
the server's ``Retry-After`` hint.

When tracing is enabled, every request opens a ``client.request`` span
and ships its context in a ``traceparent`` header, so the server-side
spans join the caller's trace; the trace ID the server answered under
(``X-Repro-Trace``) is kept on :attr:`ServeClient.last_trace_id`.
"""

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Union

from repro.errors import ReproError
from repro.model.serialization import SystemBundle
from repro.obs.trace import (
    RESPONSE_TRACE_HEADER,
    TRACEPARENT_HEADER,
    capture_context,
    span as trace_span,
    to_traceparent,
)

__all__ = ["ServeClient", "ServeError"]

SystemSpec = Union[str, Dict[str, Any], SystemBundle]


class ServeError(ReproError):
    """An HTTP-level failure reported by the server."""

    def __init__(
        self,
        message: str,
        status: int = 0,
        retry_after: Optional[int] = None,
        error_type: Optional[str] = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.error_type = error_type


def _system_payload(system: SystemSpec) -> Union[str, Dict[str, Any]]:
    if isinstance(system, SystemBundle):
        from repro.serve.encoding import bundle_to_payload

        return bundle_to_payload(system)
    return system


class ServeClient:
    """One server endpoint plus request plumbing."""

    def __init__(self, base_url: str, timeout: float = 600.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Trace ID of the most recent response (``X-Repro-Trace``).
        self.last_trace_id: Optional[str] = None

    # -- plumbing --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> bytes:
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        with trace_span("client.request", method=method, path=path) as sp:
            headers: Dict[str, str] = (
                {"Content-Type": "application/json"} if body else {}
            )
            # Captured *inside* the span, so the server parents its
            # serve.request on this client.request, not on our caller.
            traceparent = to_traceparent(capture_context())
            if traceparent is not None:
                headers[TRACEPARENT_HEADER] = traceparent
            request = urllib.request.Request(
                self.base_url + path,
                data=body,
                method=method,
                headers=headers,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as resp:
                    served = resp.headers.get(RESPONSE_TRACE_HEADER)
                    if served:
                        self.last_trace_id = served
                        sp.set_attribute("served_trace_id", served)
                    return resp.read()
            except urllib.error.HTTPError as error:
                served = error.headers.get(RESPONSE_TRACE_HEADER)
                if served:
                    self.last_trace_id = served
                raw = error.read()
                try:
                    detail = json.loads(raw).get("error", {})
                except (json.JSONDecodeError, AttributeError):
                    detail = {}
                retry_after = error.headers.get("Retry-After")
                raise ServeError(
                    detail.get("message") or f"HTTP {error.code} on {path}",
                    status=error.code,
                    retry_after=int(retry_after) if retry_after else None,
                    error_type=detail.get("type"),
                ) from None
            except urllib.error.URLError as error:
                raise ServeError(
                    f"cannot reach {self.base_url}: {error.reason}"
                ) from None

    def _request_json(self, method, path, payload=None) -> Dict[str, Any]:
        return json.loads(self._request(method, path, payload))

    # -- endpoints -------------------------------------------------------

    def analyze_raw(self, system: SystemSpec, **params) -> bytes:
        """``POST /v1/analyze``, returning the raw response bytes.

        The raw form exists so byte-identity (dedup, facade equality) can
        be asserted without a decode/re-encode round trip.
        """
        payload = {"system": _system_payload(system), **params}
        return self._request("POST", "/v1/analyze", payload)

    def analyze(self, system: SystemSpec, **params) -> Dict[str, Any]:
        """``POST /v1/analyze`` decoded to a dict."""
        return json.loads(self.analyze_raw(system, **params))

    def simulate(self, system: SystemSpec, **params) -> Dict[str, Any]:
        """``POST /v1/simulate`` decoded to a dict."""
        payload = {"system": _system_payload(system), **params}
        return self._request_json("POST", "/v1/simulate", payload)

    def explore(self, system: SystemSpec, **params) -> Dict[str, Any]:
        """``POST /v1/explore``; returns the 202 job stub (``id`` etc.)."""
        payload = {"system": _system_payload(system), **params}
        return self._request_json("POST", "/v1/explore", payload)

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>``."""
        return self._request_json("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /v1/jobs/<id>/cancel``."""
        return self._request_json("POST", f"/v1/jobs/{job_id}/cancel")

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request_json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._request_json("GET", "/metrics")

    def wait_job(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_seconds: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll until the job leaves pending/running (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] not in ("pending", "running"):
                return record
            if time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {record['status']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_seconds)
