"""Disk-backed cross-process tier for the analysis ``ScheduleCache``.

The in-memory LRU of :mod:`repro.core.fastpath` dies with its process,
so a restarted worker re-runs every ``sched()`` fixed point from zero
and sibling pre-fork workers cannot share warm state.  This module adds
a second tier:

* :class:`DiskCacheStore` — one JSON file per cache entry under a
  shared directory, written atomically (temp file + ``os.replace``) so
  concurrent workers never observe torn records.  Keys are the canonical
  :meth:`~repro.sched.jobs.JobSet.fingerprint` sha256 digests, sharded
  by their first two hex characters to keep directories small.
* :class:`TieredScheduleCache` — a drop-in :class:`ScheduleCache` whose
  misses fall through to the store and whose puts write through to it.
  Installed process-wide via
  :func:`repro.core.fastpath.configure_shared_cache`, it makes every
  ``FastPathConfig.shared()`` analysis read and feed the shared tier.

Soundness: equal fingerprints mean the back-end would see byte-identical
input (the fingerprint covers jobs, precedence, mapping, and priorities),
so a stored entry's arrays are valid verbatim for the caller's job set —
rehydration only *rebinds* the arrays onto the live
:class:`~repro.sched.jobs.JobSet`.  JSON round-trips Python floats
exactly (``repr``-based), so rehydrated bounds are bit-identical and the
byte-identity guarantee of served responses is preserved.

Everything here is best-effort: any I/O or decode error is counted in
:meth:`DiskCacheStore.stats` and treated as a miss, never raised into an
analysis.
"""

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.fastpath import ScheduleCache
from repro.obs.metrics import metrics
from repro.sched.jobs import JobSet
from repro.sched.wcrt import ScheduleBounds

__all__ = ["DiskCacheStore", "TieredScheduleCache"]

#: Bump when the on-disk record layout changes; mismatched records are
#: ignored (treated as misses) rather than migrated.
SCHEMA_VERSION = 1

_ARRAY_FIELDS = ("min_start", "min_finish", "max_start", "max_finish")


def _tuplize(value: Any) -> Any:
    """Recursively turn lists back into tuples (JSON flattens both)."""
    if isinstance(value, list):
        return tuple(_tuplize(item) for item in value)
    return value


def bounds_to_record(key: str, bounds: ScheduleBounds) -> Dict[str, Any]:
    """The JSON-safe on-disk form of one cache entry."""
    record: Dict[str, Any] = {
        "version": SCHEMA_VERSION,
        "key": key,
        "jobs": len(bounds.jobset.jobs),
        "min_start": list(bounds._min_start),
        "min_finish": list(bounds._min_finish),
        "max_start": list(bounds._max_start),
        "max_finish": list(bounds._max_finish),
        "converged": bounds.converged,
        "sweeps": bounds.sweeps,
    }
    state = getattr(bounds, "holistic_state", None)
    if state is not None:
        record["holistic_state"] = state
    return record


def bounds_from_record(
    record: Dict[str, Any], key: str, jobset: JobSet
) -> Optional[ScheduleBounds]:
    """Rebind a stored record onto ``jobset``; ``None`` if unusable.

    The caller guarantees ``jobset.fingerprint() == key``; this only
    checks the record itself (schema version, key echo, array lengths)
    so a truncated or foreign file degrades to a miss.
    """
    if not isinstance(record, dict):
        return None
    if record.get("version") != SCHEMA_VERSION or record.get("key") != key:
        return None
    count = len(jobset.jobs)
    if record.get("jobs") != count:
        return None
    arrays = []
    for field in _ARRAY_FIELDS:
        values = record.get(field)
        if not isinstance(values, list) or len(values) != count:
            return None
        if not all(isinstance(v, (int, float)) for v in values):
            return None
        arrays.append([float(v) for v in values])
    bounds = ScheduleBounds(
        jobset,
        arrays[0],
        arrays[1],
        arrays[2],
        arrays[3],
        converged=bool(record.get("converged", True)),
        sweeps=int(record.get("sweeps", 0)),
    )
    state = record.get("holistic_state")
    if isinstance(state, dict) and "signature" in state:
        # JSON turned the signature's nested tuples into lists; the
        # warm-start compatibility check compares tuples exactly, so a
        # non-restored signature would silently disable every warm
        # start seeded from a rehydrated entry.
        restored = dict(state)
        restored["signature"] = _tuplize(state["signature"])
        bounds.holistic_state = restored
    return bounds


class DiskCacheStore:
    """A directory of atomic JSON cache entries shared across processes.

    Writes go to a same-directory temp file first and are published with
    ``os.replace``, so readers in sibling processes see either the old
    record, the new record, or nothing — never a torn file.  There is no
    cross-process locking: entries for one key are deterministic
    (byte-identical analysis results), so a lost write race costs one
    redundant store, not correctness.
    """

    def __init__(
        self,
        root: Union[str, Path],
        capacity: int = 8192,
        prune_every: int = 512,
    ):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._capacity = max(1, int(capacity))
        self._prune_every = max(1, int(prune_every))
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.errors = 0

    @property
    def root(self) -> Path:
        """The shared cache directory."""
        return self._root

    def _path(self, key: str) -> Path:
        return self._root / key[:2] / f"{key}.json"

    def load(self, key: str, jobset: JobSet) -> Optional[ScheduleBounds]:
        """Read and rebind the entry for ``key`` (``None`` on any miss)."""
        path = self._path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except OSError:
            with self._lock:
                self.errors += 1
                self.misses += 1
            return None
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            with self._lock:
                self.errors += 1
                self.misses += 1
            return None
        bounds = bounds_from_record(record, key, jobset)
        with self._lock:
            if bounds is None:
                self.errors += 1
                self.misses += 1
            else:
                self.hits += 1
        return bounds

    def store(self, key: str, bounds: ScheduleBounds) -> None:
        """Atomically publish the entry for ``key`` (best-effort)."""
        path = self._path(key)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            record = bounds_to_record(key, bounds)
            tmp.write_text(json.dumps(record), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            with self._lock:
                self.errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        with self._lock:
            self.writes += 1
            due = self.writes % self._prune_every == 0
        if due:
            self._prune()

    def entries(self) -> int:
        """Number of entry files currently on disk."""
        return sum(1 for _ in self._iter_entries())

    def _iter_entries(self):
        try:
            for shard in os.scandir(self._root):
                if not shard.is_dir():
                    continue
                for entry in os.scandir(shard.path):
                    if entry.name.endswith(".json"):
                        yield entry
        except OSError:
            return

    def _prune(self) -> None:
        """Drop the oldest entries once the store exceeds capacity.

        mtime-ordered, so recently stored/refreshed results survive.
        Races with sibling workers pruning the same files are harmless
        (unlink errors are swallowed).
        """
        try:
            entries = sorted(
                self._iter_entries(), key=lambda e: e.stat().st_mtime
            )
        except OSError:
            return
        excess = len(entries) - self._capacity
        for entry in entries[:excess]:
            try:
                os.unlink(entry.path)
            except OSError:
                pass

    def stats(self) -> Dict[str, Any]:
        """Lifetime tallies for this process's view of the store."""
        with self._lock:
            hits = self.hits
            misses = self.misses
            writes = self.writes
            errors = self.errors
        requests = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "writes": writes,
            "errors": errors,
            "hit_rate": hits / requests if requests else 0.0,
            "path": str(self._root),
        }


class TieredScheduleCache(ScheduleCache):
    """L1 in-memory LRU over an L2 :class:`DiskCacheStore`.

    ``get`` falls through to disk on an L1 miss (when the caller supplied
    a job set to rebind onto) and promotes disk hits back into L1;
    ``put`` writes through to both tiers.  The inherited ``hits`` /
    ``misses`` tallies describe the L1 tier only; the disk tier reports
    its own under ``stats()["disk"]``.
    """

    def __init__(self, store: DiskCacheStore, capacity: int = 4096):
        super().__init__(capacity)
        self.store = store

    def get(
        self, key: str, jobset: Optional[JobSet] = None
    ) -> Optional[ScheduleBounds]:
        bounds = super().get(key, jobset)
        if bounds is not None:
            return bounds
        if jobset is None:
            return None
        bounds = self.store.load(key, jobset)
        if bounds is None:
            return None
        super().put(key, bounds)
        metrics().counter("analysis.cache.disk_hits").inc()
        return bounds

    def put(self, key: str, bounds: ScheduleBounds) -> None:
        super().put(key, bounds)
        self.store.store(key, bounds)

    def stats(self) -> dict:
        data = super().stats()
        data["disk"] = self.store.stats()
        return data
