"""Criticality-aware admission control for the serving tier.

The paper's core move is graceful degradation by criticality: under
faults, best-effort graphs are dropped so critical ones keep their
guarantees.  The serving tier treats *overload* the same way.  Every
request carries a criticality class, and the admission layer enforces a
rely-guarantee contract mirrored from mixed-criticality scheduling:
under sustained pressure, best-effort load is shed first, standard load
degrades next, and critical requests keep full service and a stated
latency behavior (strict-priority queueing bounds their wait by the
critical backlog alone, not the total backlog).

Three mechanisms compose here:

* **Classes** — ``critical`` / ``standard`` / ``best-effort``, sent as
  an ``X-Repro-Class`` header or a ``criticality`` request field.
  Unknown names are rejected with the full class list (the ``--method``
  error pattern).  The class maps to a strict priority in the worker
  pool's admission queue (:mod:`repro.serve.pool`), where an aging
  floor keeps best-effort from starving forever under bounded load.
* **Per-client quotas** — a token bucket per ``X-Repro-Client`` id
  (``--quota-rps`` / ``--quota-burst``).  An exhausted bucket answers
  an honest 429 with ``Retry-After`` equal to the time until the next
  token, never less than one second.
* **Brownout** — a hysteretic controller watching the pool's estimated
  queue delay.  Stage 1 sheds best-effort with 503; stage 2 additionally
  serves ``standard`` analyze through a bounded fast-window fallback
  marked ``"degraded": true`` (and sheds other standard compute).
  ``critical`` is never shed or degraded.  Stages clear only after the
  delay stays under the exit threshold for a dwell period, so the
  controller cannot flap at the threshold.

Deadlines propagate end to end: the client sends its remaining budget
as ``X-Repro-Deadline``, admission folds it with any body
``deadline_seconds`` (the tighter wins), and a request whose budget is
already spent fails with 504 *at admission* instead of burning a
worker on an answer nobody is waiting for.
"""

import math
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import ReproError
from repro.obs.metrics import metrics

__all__ = [
    "CLASSES",
    "DEFAULT_CLASS",
    "CLASS_HEADER",
    "CLIENT_HEADER",
    "DEADLINE_HEADER",
    "class_priority",
    "parse_class",
    "parse_client_id",
    "parse_deadline",
    "AdmissionContext",
    "AdmissionDecision",
    "AdmissionController",
    "TokenBucket",
    "ClientQuotas",
    "BrownoutController",
    "QuotaExceeded",
    "BrownoutShed",
]

#: Criticality classes, most critical first; the index is the strict
#: priority used by the worker pool (0 preempts 1 preempts 2 at pickup).
CLASSES = ("critical", "standard", "best-effort")
DEFAULT_CLASS = "standard"

CLASS_HEADER = "X-Repro-Class"
CLIENT_HEADER = "X-Repro-Client"
DEADLINE_HEADER = "X-Repro-Deadline"

#: Client id of requests that did not identify themselves; they share
#: one quota bucket, so anonymous traffic cannot multiply its budget by
#: omitting the header.
ANONYMOUS_CLIENT = "anonymous"

_CLIENT_ID_MAX = 128
_CLIENT_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


class QuotaExceeded(ReproError):
    """The client's token bucket is empty; retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: int):
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


class BrownoutShed(ReproError):
    """The brownout controller shed this class; 503 + ``Retry-After``."""

    def __init__(self, message: str, retry_after: int):
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


def class_priority(criticality: str) -> int:
    """The strict queue priority of a class (0 is most urgent)."""
    return CLASSES.index(criticality)


def parse_class(value: Any) -> str:
    """Validate a criticality class name (the ``--method`` UX pattern)."""
    if value is None:
        return DEFAULT_CLASS
    if value not in CLASSES:
        raise ReproError(
            f"unknown criticality class {value!r}; valid classes: "
            f"{', '.join(sorted(CLASSES))}"
        )
    return value


def parse_client_id(value: Any) -> str:
    """Validate an ``X-Repro-Client`` id (quota-bucket key)."""
    if value is None:
        return ANONYMOUS_CLIENT
    if (
        not isinstance(value, str)
        or not value
        or len(value) > _CLIENT_ID_MAX
        or not set(value) <= _CLIENT_ID_CHARS
        or value.startswith(".")
    ):
        raise ReproError(
            f"{CLIENT_HEADER} must be 1-{_CLIENT_ID_MAX} characters of "
            f"[A-Za-z0-9._-] and must not start with '.'"
        )
    return value


def parse_deadline(value: Any) -> Optional[float]:
    """Validate an ``X-Repro-Deadline`` remaining budget in seconds.

    Zero and negative budgets are *accepted* here — a doomed request is
    an admission-time 504 (an answer), not a 400 (a client bug).
    """
    if value is None:
        return None
    try:
        deadline = float(value)
    except (TypeError, ValueError):
        raise ReproError(
            f"{DEADLINE_HEADER} must be the remaining request budget as a "
            f"number of seconds, got {value!r}"
        ) from None
    if math.isnan(deadline) or math.isinf(deadline):
        raise ReproError(
            f"{DEADLINE_HEADER} must be a finite number of seconds, "
            f"got {value!r}"
        )
    return deadline


class AdmissionContext:
    """Who is asking, how urgent it is, and how much budget is left.

    Built from request headers (and optionally body fields, which win
    over headers); carried alongside — never inside — the canonical
    request params, so admission metadata can never split the dedup key
    of an otherwise identical computation.
    """

    __slots__ = ("criticality", "client", "deadline", "received", "decision")

    def __init__(
        self,
        criticality: str = DEFAULT_CLASS,
        client: str = ANONYMOUS_CLIENT,
        deadline_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.criticality = parse_class(criticality)
        self.client = parse_client_id(client)
        self.received = clock()
        #: Filled in by the server once the request is admitted.
        self.decision: Optional["AdmissionDecision"] = None
        #: Absolute monotonic deadline derived from the remaining budget
        #: the client reported, or ``None``.
        self.deadline = (
            self.received + deadline_seconds
            if deadline_seconds is not None
            else None
        )

    @classmethod
    def from_headers(cls, headers: Mapping[str, str]) -> "AdmissionContext":
        """Parse the admission headers; raises :class:`ReproError` (400)
        on malformed values, listing what would have been accepted."""
        return cls(
            criticality=parse_class(headers.get(CLASS_HEADER)),
            client=parse_client_id(headers.get(CLIENT_HEADER)),
            deadline_seconds=parse_deadline(headers.get(DEADLINE_HEADER)),
        )

    def absorb_body_fields(self, payload: Dict[str, Any]) -> None:
        """Pop ``criticality``/``client`` body fields into the context.

        Body fields override headers (they are more specific).  They are
        *removed* from the payload so the canonical request params — and
        therefore the dedup digest — never vary with admission metadata.
        """
        if "criticality" in payload:
            self.criticality = parse_class(payload.pop("criticality"))
        if "client" in payload:
            self.client = parse_client_id(payload.pop("client"))

    @property
    def priority(self) -> int:
        return class_priority(self.criticality)

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds of budget left, or ``None`` when unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - (time.monotonic() if now is None else now)

    def merged_deadline(
        self, body_deadline: Optional[float]
    ) -> Optional[float]:
        """The effective budget in seconds: tighter of header and body."""
        remaining = self.remaining()
        if remaining is None:
            return body_deadline
        if body_deadline is None:
            return remaining
        return min(remaining, body_deadline)


class AdmissionDecision:
    """Outcome of an accepted admission."""

    __slots__ = ("criticality", "priority", "degraded", "stage")

    def __init__(self, criticality: str, degraded: bool, stage: int):
        self.criticality = criticality
        self.priority = class_priority(criticality)
        #: Whether the request must be served through the bounded
        #: fast-window fallback and marked ``"degraded": true``.
        self.degraded = degraded
        #: Brownout stage at admission time (0 = normal).
        self.stage = stage


class TokenBucket:
    """Thread-safe token bucket: ``rate`` tokens/second, ``burst`` cap.

    ``acquire()`` refills from the injected clock, then consumes one
    token if available; otherwise it reports the exact wait until the
    next token.  With a frozen clock the bucket admits exactly ``burst``
    acquisitions no matter how many threads race it — the concurrency
    contract the quota layer relies on.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_clock", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate < 0:
            raise ReproError("token bucket rate must be >= 0")
        if burst < 1:
            raise ReproError("token bucket burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._updated = clock()
        self._lock = threading.Lock()

    def acquire(self) -> Optional[float]:
        """Take one token; returns ``None`` on success, else the exact
        number of seconds until a token becomes available."""
        with self._lock:
            now = self._clock()
            if now > self._updated:
                self._tokens = min(
                    self.burst, self._tokens + (now - self._updated) * self.rate
                )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            if self.rate <= 0:
                return math.inf
            return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


class ClientQuotas:
    """Per-client token buckets keyed on the ``X-Repro-Client`` id.

    Buckets are created lazily and bounded in number: beyond
    ``max_clients`` the least-recently-used bucket is evicted (a client
    id churned through once does not pin memory forever; an evicted
    repeat offender merely starts from a full bucket again).
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        max_clients: int = 10_000,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ReproError("quota rate must be positive (rps)")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, 2 * rate)
        if self.burst < 1:
            raise ReproError("quota burst must be >= 1")
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    def _bucket(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            return bucket

    def check(self, client: str) -> None:
        """Consume one token for ``client``; raises :class:`QuotaExceeded`
        (429) with the honest wait when the bucket is empty."""
        wait = self._bucket(client).acquire()
        if wait is None:
            return
        retry = 1 if math.isinf(wait) else int(math.ceil(wait))
        raise QuotaExceeded(
            f"client {client!r} exceeded its quota of {self.rate:g} "
            f"requests/second (burst {self.burst:g})",
            retry_after=retry,
        )

    @property
    def clients(self) -> int:
        with self._lock:
            return len(self._buckets)


class BrownoutController:
    """Hysteretic overload stages from the pool's estimated queue delay.

    * stage 0 — normal service;
    * stage 1 — entered when the delay exceeds ``enter_seconds``:
      best-effort is shed with 503;
    * stage 2 — entered at ``stage2_factor * enter_seconds``: standard
      analyze degrades to the bounded fast-window fallback, other
      standard compute is shed; critical stays untouched.

    A stage is left only after the delay stays below ``exit_seconds``
    (strictly less than the enter threshold) for ``dwell_seconds`` — the
    classic hysteresis loop, so the controller cannot oscillate when the
    delay hovers at a threshold.  Recovery steps down one stage at a
    time.
    """

    def __init__(
        self,
        enter_seconds: float = 0.75,
        exit_seconds: float = 0.25,
        stage2_factor: float = 2.0,
        dwell_seconds: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if enter_seconds <= 0:
            raise ReproError("brownout enter threshold must be positive")
        if not 0 <= exit_seconds < enter_seconds:
            raise ReproError(
                "brownout exit threshold must satisfy "
                "0 <= exit < enter (hysteresis)"
            )
        if stage2_factor < 1:
            raise ReproError("brownout stage-2 factor must be >= 1")
        if dwell_seconds < 0:
            raise ReproError("brownout dwell must be >= 0")
        self.enter_seconds = enter_seconds
        self.exit_seconds = exit_seconds
        self.stage2_factor = stage2_factor
        self.dwell_seconds = dwell_seconds
        self._clock = clock
        self._stage = 0
        self._calm_since: Optional[float] = None
        self._lock = threading.Lock()

    def update(self, delay_seconds: float) -> int:
        """Feed one delay observation; returns the current stage."""
        with self._lock:
            now = self._clock()
            enter2 = self.enter_seconds * self.stage2_factor
            if delay_seconds > enter2:
                target = 2
            elif delay_seconds > self.enter_seconds:
                target = 1
            else:
                target = None  # no escalation pressure
            if target is not None and target > self._stage:
                self._stage = target
                self._calm_since = None
                metrics().counter("serve.admission.brownout_escalations").inc()
            elif self._stage > 0:
                # Recovery: require the delay to stay under the exit
                # threshold for a full dwell before stepping down.
                if delay_seconds < self.exit_seconds:
                    if self._calm_since is None:
                        self._calm_since = now
                    elif now - self._calm_since >= self.dwell_seconds:
                        self._stage -= 1
                        self._calm_since = now if self._stage else None
                else:
                    self._calm_since = None
            return self._stage

    @property
    def stage(self) -> int:
        with self._lock:
            return self._stage


class AdmissionController:
    """The serving tier's front door: deadline, quota, brownout, class.

    ``admit(endpoint, ctx)`` either returns an
    :class:`AdmissionDecision` (carrying the queue priority and whether
    the response must be degraded) or raises the typed rejection the
    HTTP layer maps onto honest status codes:

    * :class:`~repro.serve.pool.DeadlineExceeded` — budget already spent
      at admission (504, no worker burned);
    * :class:`QuotaExceeded` — per-client token bucket empty (429);
    * :class:`BrownoutShed` — this class is shed at the current
      brownout stage (503).
    """

    def __init__(
        self,
        pool,
        quotas: Optional[ClientQuotas] = None,
        brownout: Optional[BrownoutController] = None,
    ):
        self._pool = pool
        self.quotas = quotas
        self.brownout = brownout

    def current_stage(self) -> int:
        """The brownout stage given the pool's current delay estimate."""
        if self.brownout is None:
            return 0
        stage = self.brownout.update(self._pool.estimated_delay())
        metrics().gauge("serve.admission.brownout_stage").set(stage)
        return stage

    def admit(self, endpoint: str, ctx: AdmissionContext) -> AdmissionDecision:
        from repro.serve.pool import DeadlineExceeded

        registry = metrics()
        label = ctx.criticality.replace("-", "_")
        remaining = ctx.remaining()
        if remaining is not None and remaining <= 0:
            registry.counter("serve.admission.expired").inc()
            raise DeadlineExceeded(
                f"request budget already spent at admission "
                f"({-remaining:.3f}s past the deadline)"
            )
        if self.quotas is not None:
            try:
                self.quotas.check(ctx.client)
            except QuotaExceeded:
                registry.counter("serve.admission.quota_rejected").inc()
                raise
        stage = self.current_stage()
        degraded = False
        if stage >= 1 and ctx.criticality == "best-effort":
            self._count_shed(label)
            raise BrownoutShed(
                f"brownout stage {stage}: best-effort requests are shed; "
                f"retry later or raise the request class",
                retry_after=self._pool.retry_after(),
            )
        if stage >= 2 and ctx.criticality == "standard":
            if endpoint == "analyze":
                degraded = True
                registry.counter("serve.admission.degraded").inc()
            else:
                self._count_shed(label)
                raise BrownoutShed(
                    f"brownout stage {stage}: standard {endpoint} requests "
                    f"are shed (only analyze degrades); retry later",
                    retry_after=self._pool.retry_after(),
                )
        registry.counter(f"serve.admission.accepted.{label}").inc()
        return AdmissionDecision(ctx.criticality, degraded, stage)

    @staticmethod
    def _count_shed(label: str) -> None:
        registry = metrics()
        registry.counter("serve.admission.shed").inc()
        registry.counter(f"serve.admission.shed.{label}").inc()

    def snapshot(self) -> Dict[str, Any]:
        """Admission state for ``/metrics`` and ``/healthz``."""
        registry = metrics()
        return {
            "brownout_stage": (
                self.brownout.stage if self.brownout is not None else 0
            ),
            "brownout_enabled": self.brownout is not None,
            "quota": (
                {
                    "rps": self.quotas.rate,
                    "burst": self.quotas.burst,
                    "clients": self.quotas.clients,
                }
                if self.quotas is not None
                else None
            ),
            "shed": {
                cls: registry.counter(
                    f"serve.admission.shed.{cls.replace('-', '_')}"
                ).value
                for cls in CLASSES
            },
            "degraded": registry.counter("serve.admission.degraded").value,
            "quota_rejected": registry.counter(
                "serve.admission.quota_rejected"
            ).value,
        }
