"""Fault-injection campaign against a supervised serve fleet.

The serving tier claims three hard properties: **no wrong answers**
(every response a client accepts is byte-identical to a direct
:func:`repro.api.analyze` call), **no lost work** (worker death never
strands an exploration job; a drain parks it resumable on a committed
checkpoint), and **self-healing** (the supervisor restarts crashed
workers, the disk cache re-warms them).  This module earns those claims
instead of asserting them: a seeded campaign runs real clients against
a real multi-process fleet while injecting the faults that production
actually sees —

* **process murder** — SIGKILL of a random worker mid-request (no
  drain, no goodbye);
* **connection mischief** — garbage bytes, half-closed sockets, RST
  via ``SO_LINGER``, byte-at-a-time slow sends, and connect-then-drop,
  all aimed at the accept loop the real clients share;

then ends with a graceful SIGTERM drain and a cold restart, checking:
zero response mismatches, zero client-visible failures (the retrying
:class:`~repro.serve.client.ServeClient` must absorb every injected
fault), supervisor restarts observed for every kill, drain exit code 0,
the long-running exploration job still resumable, and a nonzero disk-
cache hit rate in the restarted worker.

Everything is deterministic per ``seed`` except OS scheduling; the
report says exactly which check failed and why.  Run it via
``repro chaos`` or ``scripts/serve_chaos.py``.
"""

import json
import os
import random
import signal
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.logging import get_logger, kv
from repro.serve.client import RetryPolicy, ServeClient, ServeError
from repro.serve.supervisor import Supervisor, SupervisorConfig

_LOG = get_logger("serve")

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "run_chaos",
    "OverloadConfig",
    "OverloadReport",
    "run_overload",
]


def mapped_system(name: str) -> Dict[str, Any]:
    """A suite inlined with a deterministic round-robin mapping.

    Suites carry no mapping, so one is synthesized the same way on the
    client and the oracle side — the payload the server analyzes is the
    payload the oracle analyzes.
    """
    from repro.api import load
    from repro.model.mapping import Mapping
    from repro.model.serialization import SystemBundle
    from repro.serve.encoding import bundle_to_payload

    bundle = load(name)
    processors = [p.name for p in bundle.architecture.processors]
    tasks = [
        task.name
        for graph in bundle.applications.graphs
        for task in graph.tasks
    ]
    mapping = Mapping({
        task: processors[i % len(processors)]
        for i, task in enumerate(tasks)
    })
    return bundle_to_payload(SystemBundle(
        bundle.applications, bundle.architecture, mapping, None
    ))

def build_workload() -> List[Dict[str, Any]]:
    """The request mix clients replay all campaign long.

    Small systems (one request is fast) with distinct parameter shapes
    (the batcher's dedup cannot collapse the campaign into one
    computation).  Suites carry no mapping, so each system is inlined
    with a deterministic round-robin mapping — the same payload the
    oracle analyzes directly.
    """
    cruise = mapped_system("cruise")
    synth = mapped_system("synth-1")
    return [
        {"system": cruise, "method": "proposed", "granularity": "job"},
        {"system": cruise, "method": "proposed", "granularity": "job",
         "dropped": ["info", "diag"]},
        {"system": synth, "method": "proposed", "granularity": "job"},
        {"system": cruise, "method": "naive", "granularity": "job"},
    ]


class ChaosConfig:
    """Campaign shape: fleet size, duration, fault cadence, seed."""

    def __init__(
        self,
        seed: int = 0,
        processes: int = 2,
        duration_seconds: float = 20.0,
        clients: int = 4,
        kill_every_seconds: float = 3.0,
        mischief_every_seconds: float = 0.5,
        state_dir: Optional[str] = None,
        report_path: Optional[str] = None,
        host: str = "127.0.0.1",
        drain_timeout: float = 30.0,
        request_timeout: float = 60.0,
    ):
        if processes < 1:
            raise ReproError("chaos needs >= 1 worker process")
        if duration_seconds <= 0:
            raise ReproError("chaos duration must be positive")
        self.seed = seed
        self.processes = processes
        self.duration_seconds = duration_seconds
        self.clients = clients
        self.kill_every_seconds = kill_every_seconds
        self.mischief_every_seconds = mischief_every_seconds
        self.state_dir = state_dir
        self.report_path = report_path
        self.host = host
        self.drain_timeout = drain_timeout
        self.request_timeout = request_timeout


class ChaosReport:
    """Outcome of one campaign; ``ok`` iff every check passed."""

    def __init__(self, config: ChaosConfig):
        self.seed = config.seed
        self.processes = config.processes
        self.duration_seconds = config.duration_seconds
        self.requests = 0
        self.mismatches: List[Dict[str, Any]] = []
        self.client_failures: List[str] = []
        self.kills = 0
        self.mischief: Dict[str, int] = {}
        self.restarts_observed = 0
        self.drain_exit_code: Optional[int] = None
        self.job_id: Optional[str] = None
        self.job_status_after_drain: Optional[str] = None
        self.job_resumable = False
        self.disk_hits_after_restart = 0
        self.checks: Dict[str, bool] = {}

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(self.checks.values())

    def finalize(self) -> None:
        """Derive the pass/fail checklist from the raw observations."""
        self.checks = {
            "served_requests": self.requests > 0,
            "zero_mismatches": not self.mismatches,
            "zero_client_failures": not self.client_failures,
            "restarts_cover_kills": (
                self.kills == 0 or self.restarts_observed >= 1
            ),
            "clean_drain_exit": self.drain_exit_code == 0,
            "job_resumable": self.job_resumable,
            "disk_cache_rewarmed": self.disk_hits_after_restart > 0,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "processes": self.processes,
            "duration_seconds": self.duration_seconds,
            "requests": self.requests,
            "mismatches": self.mismatches[:5],
            "client_failures": self.client_failures[:10],
            "kills": self.kills,
            "mischief": dict(sorted(self.mischief.items())),
            "restarts_observed": self.restarts_observed,
            "drain_exit_code": self.drain_exit_code,
            "job_id": self.job_id,
            "job_status_after_drain": self.job_status_after_drain,
            "job_resumable": self.job_resumable,
            "disk_hits_after_restart": self.disk_hits_after_restart,
            "checks": self.checks,
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            f"chaos campaign: seed={self.seed} processes={self.processes} "
            f"duration={self.duration_seconds:.0f}s",
            f"  requests served : {self.requests}",
            f"  worker kills    : {self.kills} "
            f"(restarts observed: {self.restarts_observed})",
            f"  mischief        : "
            + (", ".join(f"{k}={v}" for k, v in sorted(self.mischief.items()))
               or "none"),
            f"  drain exit code : {self.drain_exit_code}",
            f"  explore job     : {self.job_id} -> "
            f"{self.job_status_after_drain} "
            f"({'resumable' if self.job_resumable else 'NOT RESUMABLE'})",
            f"  disk cache hits : {self.disk_hits_after_restart} "
            f"(restarted worker)",
        ]
        for name, passed in self.checks.items():
            lines.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
        for failure in self.client_failures[:10]:
            lines.append(f"  failure: {failure}")
        for mismatch in self.mismatches[:5]:
            lines.append(f"  mismatch: {mismatch}")
        lines.append(f"verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


# -- expected responses (the oracle) -----------------------------------


def expected_bodies(workload: List[Dict[str, Any]]) -> List[bytes]:
    """Canonical response bytes for each workload item, computed
    directly (no server): the byte-identity oracle."""
    from repro.serve.app import _run_analyze
    from repro.serve.encoding import parse_analyze_request

    return [
        _run_analyze(parse_analyze_request(dict(item)))
        for item in workload
    ]


# -- connection mischief -----------------------------------------------


def _connect(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=2.0)
    sock.settimeout(2.0)
    return sock


def _mischief_garbage(host: str, port: int) -> None:
    """Bytes that are not HTTP at all (a TLS hello, roughly)."""
    with _connect(host, port) as sock:
        sock.sendall(b"\x16\x03\x01\x02\x00garbage\r\n\r\n")


def _mischief_half_close(host: str, port: int) -> None:
    """Send half a request line, then close only our write side."""
    with _connect(host, port) as sock:
        sock.sendall(b"POST /v1/ana")
        sock.shutdown(socket.SHUT_WR)
        try:
            sock.recv(256)
        except OSError:
            pass


def _mischief_rst(host: str, port: int) -> None:
    """Abortive close: SO_LINGER(1, 0) turns close() into a TCP RST."""
    sock = _connect(host, port)
    try:
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            b"\x01\x00\x00\x00\x00\x00\x00\x00",
        )
        sock.sendall(b"GET /healthz HTTP/1.1\r\n")
    finally:
        sock.close()


def _mischief_slow(host: str, port: int) -> None:
    """A request trickled one byte at a time (slowloris-lite)."""
    with _connect(host, port) as sock:
        for byte in b"POST /v1/analyze HTTP/1.1\r\n":
            sock.sendall(bytes([byte]))
            time.sleep(0.02)


def _mischief_drop(host: str, port: int) -> None:
    """Connect and vanish without sending anything."""
    _connect(host, port).close()


_MISCHIEF: Dict[str, Callable[[str, int], None]] = {
    "garbage": _mischief_garbage,
    "half_close": _mischief_half_close,
    "rst": _mischief_rst,
    "slow": _mischief_slow,
    "drop": _mischief_drop,
}


# -- campaign ----------------------------------------------------------


def _wait_healthy(url: str, timeout: float = 30.0) -> None:
    client = ServeClient(url, timeout=2.0)
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.healthz()
            client.close()
            return
        except ServeError:
            if time.monotonic() > deadline:
                raise ReproError(f"fleet at {url} never became healthy")
            time.sleep(0.1)


def _client_loop(
    url: str,
    config: ChaosConfig,
    index: int,
    workload: List[Dict[str, Any]],
    expected: List[bytes],
    report: ChaosReport,
    lock: threading.Lock,
    stop: threading.Event,
) -> None:
    """One load-generating client: request, verify bytes, repeat."""
    rng = random.Random(config.seed * 1000 + index)
    client = ServeClient(
        url,
        timeout=config.request_timeout,
        retry=RetryPolicy(
            retries=8,
            backoff_base=0.05,
            backoff_cap=2.0,
            seed=config.seed * 1000 + index,
        ),
    )
    try:
        while not stop.is_set():
            idx = rng.randrange(len(workload))
            item = dict(workload[idx])
            system = item.pop("system")
            try:
                body = client.analyze_raw(system, **item)
            except ServeError as error:
                with lock:
                    report.client_failures.append(
                        f"client {index}: {error} "
                        f"(status={error.status}, "
                        f"transport={error.transport})"
                    )
                continue
            with lock:
                report.requests += 1
                if body != expected[idx]:
                    report.mismatches.append(
                        {
                            "client": index,
                            "workload": idx,
                            "got_bytes": len(body),
                            "want_bytes": len(expected[idx]),
                        }
                    )
    finally:
        client.close()


def _killer_loop(
    supervisor: Supervisor,
    config: ChaosConfig,
    report: ChaosReport,
    lock: threading.Lock,
    stop: threading.Event,
) -> None:
    """SIGKILL a random worker on a jittered cadence."""
    rng = random.Random(config.seed + 7)
    while not stop.is_set():
        delay = config.kill_every_seconds * rng.uniform(0.5, 1.5)
        if stop.wait(delay):
            return
        pids = supervisor.worker_pids()
        if not pids:
            continue
        victim = rng.choice(pids)
        try:
            os.kill(victim, signal.SIGKILL)
        except OSError:
            continue
        with lock:
            report.kills += 1
        _LOG.info("chaos killed worker %s", kv(pid=victim))


def _mischief_loop(
    host: str,
    port: int,
    config: ChaosConfig,
    report: ChaosReport,
    lock: threading.Lock,
    stop: threading.Event,
) -> None:
    """Inject one connection-level fault on a jittered cadence."""
    rng = random.Random(config.seed + 13)
    names = sorted(_MISCHIEF)
    while not stop.is_set():
        delay = config.mischief_every_seconds * rng.uniform(0.5, 1.5)
        if stop.wait(delay):
            return
        name = rng.choice(names)
        try:
            _MISCHIEF[name](host, port)
        except OSError:
            # A refused/reset connection is itself a fine outcome: the
            # fault landed while a worker was down.
            pass
        with lock:
            report.mischief[name] = report.mischief.get(name, 0) + 1


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _job_after_drain(state_dir: Path, job_id: str) -> Dict[str, Any]:
    """The job's durable record once the fleet is gone."""
    record_path = state_dir / job_id / "job.json"
    try:
        return json.loads(record_path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}


def _job_resumable(state_dir: Path, job_id: str, status: str) -> bool:
    """Done counts; pending is parked/queued; running only if the
    claim is stale (its worker is dead, so recover() will requeue)."""
    if status in ("done", "pending"):
        return True
    if status != "running":
        return False
    claim = state_dir / job_id / "claim"
    try:
        pid = int(claim.read_text().strip())
    except (OSError, ValueError):
        return True
    return not _pid_alive(pid)


def run_chaos(config: ChaosConfig) -> ChaosReport:
    """Run the full campaign; returns the report (``report.ok``)."""
    report = ChaosReport(config)
    lock = threading.Lock()
    state_dir = Path(
        config.state_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    )
    state_dir.mkdir(parents=True, exist_ok=True)
    cache_dir = str(state_dir / "cache")
    status_path = str(state_dir / "supervisor.json")
    worker_argv = [
        sys.executable, "-m", "repro", "serve",
        "--processes", "1",
        "--workers", "2",
        "--job-workers", "1",
        "--state-dir", str(state_dir),
        "--cache-dir", cache_dir,
        "--drain-timeout", str(config.drain_timeout),
    ]
    supervisor = Supervisor(SupervisorConfig(
        worker_argv,
        processes=config.processes,
        host=config.host,
        port=0,
        status_path=status_path,
        drain_timeout=config.drain_timeout + 10.0,
        backoff_base=0.2,
        backoff_cap=2.0,
        poll_seconds=0.05,
    ))
    supervisor.start()
    exit_box: Dict[str, int] = {}

    def _supervise() -> None:
        exit_box["code"] = supervisor.run(install_signals=False)

    sup_thread = threading.Thread(
        target=_supervise, name="chaos-supervisor", daemon=True
    )
    sup_thread.start()
    url = supervisor.url
    _LOG.info("chaos fleet up %s", kv(url=url, state_dir=str(state_dir)))
    try:
        _wait_healthy(url)
        workload = build_workload()
        expected = expected_bodies(workload)

        # A long exploration job that must survive everything below.
        submit = ServeClient(
            url,
            timeout=config.request_timeout,
            retry=RetryPolicy(retries=8, seed=config.seed),
        )
        stub = submit.explore(
            "cruise",
            generations=100000,
            population=16,
            seed=config.seed,
            checkpoint_every=1,
        )
        submit.close()
        report.job_id = stub["id"]

        stop = threading.Event()
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(url, config, i, workload, expected, report, lock, stop),
                name=f"chaos-client-{i}",
            )
            for i in range(config.clients)
        ]
        threads.append(threading.Thread(
            target=_killer_loop,
            args=(supervisor, config, report, lock, stop),
            name="chaos-killer",
            daemon=True,
        ))
        threads.append(threading.Thread(
            target=_mischief_loop,
            args=(config.host, supervisor.port, config, report, lock, stop),
            name="chaos-mischief",
            daemon=True,
        ))
        for thread in threads:
            thread.start()
        time.sleep(config.duration_seconds)
        stop.set()
        for thread in threads:
            thread.join(timeout=config.request_timeout + 30.0)
    finally:
        # Graceful drain: ends the campaign even when setup failed.
        supervisor.request_stop()
        sup_thread.join(timeout=config.drain_timeout + 30.0)
    report.drain_exit_code = exit_box.get("code")
    try:
        status = json.loads(Path(status_path).read_text())
        report.restarts_observed = int(status.get("restarts_total", 0))
    except (OSError, json.JSONDecodeError, ValueError):
        pass
    if report.job_id:
        record = _job_after_drain(state_dir, report.job_id)
        report.job_status_after_drain = record.get("status")
        report.job_resumable = bool(record) and _job_resumable(
            state_dir, report.job_id, record.get("status", "")
        )

    # Cold restart: a fresh single worker over the same cache dir must
    # answer from the disk tier (nonzero hit rate), proving the cache
    # actually crosses process boundaries.
    restarted = Supervisor(SupervisorConfig(
        worker_argv,
        processes=1,
        host=config.host,
        port=0,
        status_path=status_path,
        drain_timeout=config.drain_timeout,
    ))
    restarted.start()
    rexit: Dict[str, int] = {}

    def _supervise_restart() -> None:
        rexit["code"] = restarted.run(install_signals=False)

    restart_thread = threading.Thread(
        target=_supervise_restart, name="chaos-restart", daemon=True
    )
    restart_thread.start()
    try:
        _wait_healthy(restarted.url)
        probe = ServeClient(
            restarted.url,
            timeout=config.request_timeout,
            retry=RetryPolicy(retries=4, seed=config.seed),
        )
        item = dict(build_workload()[0])
        probe.analyze_raw(item.pop("system"), **item)
        snapshot = probe.metrics()
        probe.close()
        disk = (snapshot.get("schedule_cache") or {}).get("disk") or {}
        report.disk_hits_after_restart = int(disk.get("hits", 0))
    except (ReproError, ServeError) as error:
        with lock:
            report.client_failures.append(f"restart probe: {error}")
    finally:
        restarted.request_stop()
        restart_thread.join(timeout=config.drain_timeout + 30.0)

    report.finalize()
    if config.report_path:
        Path(config.report_path).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
        )
    return report


# -- overload campaign -------------------------------------------------


#: The five built-in suites every overload campaign covers.
OVERLOAD_SUITES = ("cruise", "dt-large", "dt-med", "synth-1", "synth-2")


class OverloadConfig:
    """Shape of one overload campaign (``repro chaos --mode overload``).

    A single in-process server (small worker pool, brownout enabled, no
    quotas) is driven well past capacity by closed-loop clients of all
    three criticality classes.  Analyze requests cover all five built-in
    suites and are byte-checked against a direct :func:`repro.api`
    oracle; best-effort clients additionally pump *uncacheable* ballast
    (Monte-Carlo campaigns under fresh seeds), so dedup and the schedule
    cache cannot quietly absorb the overload.
    """

    def __init__(
        self,
        seed: int = 0,
        duration_seconds: float = 20.0,
        critical_budget_seconds: float = 10.0,
        report_path: Optional[str] = None,
        workers: int = 2,
        queue_size: int = 64,
        brownout_enter: float = 0.4,
        brownout_exit: float = 0.1,
        brownout_dwell: float = 1.0,
        aging_seconds: float = 2.0,
        critical_clients: int = 2,
        standard_clients: int = 4,
        best_effort_clients: int = 10,
        ballast_profiles: int = 400,
        request_timeout: float = 60.0,
    ):
        if duration_seconds <= 0:
            raise ReproError("overload duration must be positive")
        if critical_budget_seconds <= 0:
            raise ReproError("critical latency budget must be positive")
        self.seed = seed
        self.duration_seconds = duration_seconds
        self.critical_budget_seconds = critical_budget_seconds
        self.report_path = report_path
        self.workers = workers
        self.queue_size = queue_size
        self.brownout_enter = brownout_enter
        self.brownout_exit = brownout_exit
        self.brownout_dwell = brownout_dwell
        self.aging_seconds = aging_seconds
        self.critical_clients = critical_clients
        self.standard_clients = standard_clients
        self.best_effort_clients = best_effort_clients
        self.ballast_profiles = ballast_profiles
        self.request_timeout = request_timeout


class _ClassStats:
    """Raw per-class observations (guarded by the campaign lock)."""

    def __init__(self):
        self.sent = 0
        self.ok = 0
        self.degraded = 0
        self.shed = 0            # 503 brownout rejections
        self.saturated = 0       # 429 pool/quota rejections
        self.expired = 0         # 504 deadline rejections
        self.transport = 0
        self.other = 0
        self.latencies: List[float] = []
        self.first_shed: Optional[float] = None

    @staticmethod
    def _quantile(values: List[float], q: float) -> Optional[float]:
        if not values:
            return None
        ordered = sorted(values)
        return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1)))]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sent": self.sent,
            "ok": self.ok,
            "degraded": self.degraded,
            "shed": self.shed,
            "saturated": self.saturated,
            "expired": self.expired,
            "transport": self.transport,
            "other": self.other,
            "p50_seconds": self._quantile(self.latencies, 0.50),
            "p99_seconds": self._quantile(self.latencies, 0.99),
            "first_shed_seconds": self.first_shed,
        }


class OverloadReport:
    """Outcome of one overload campaign; ``ok`` iff every check passed.

    The checks are the paper's rely-guarantee contract mapped onto the
    serving tier: under sustained overload, critical requests are never
    shed or degraded and keep their latency budget, best-effort load is
    shed first, and every degraded response says so.
    """

    def __init__(self, config: OverloadConfig):
        self.seed = config.seed
        self.duration_seconds = config.duration_seconds
        self.critical_budget_seconds = config.critical_budget_seconds
        self.classes: Dict[str, _ClassStats] = {
            "critical": _ClassStats(),
            "standard": _ClassStats(),
            "best-effort": _ClassStats(),
        }
        #: Analyze responses that differed from the oracle *without*
        #: carrying ``"degraded": true`` — each one a lie.
        self.unmarked_mismatches: List[Dict[str, Any]] = []
        self.max_stage = 0
        self.drain_clean: Optional[bool] = None
        self.checks: Dict[str, bool] = {}

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(self.checks.values())

    def finalize(self) -> None:
        critical = self.classes["critical"]
        standard = self.classes["standard"]
        best_effort = self.classes["best-effort"]
        p99 = _ClassStats._quantile(critical.latencies, 0.99)
        self.checks = {
            "served_all_classes": (
                critical.ok > 0
                and (standard.ok + standard.degraded) > 0
                and best_effort.sent > 0
            ),
            "brownout_engaged": self.max_stage >= 1,
            "zero_critical_shed": (
                critical.shed == 0 and critical.degraded == 0
            ),
            "critical_p99_within_budget": (
                p99 is not None and p99 <= self.critical_budget_seconds
            ),
            "best_effort_shed_first": (
                best_effort.shed > 0
                and (
                    standard.first_shed is None
                    or best_effort.first_shed is not None
                    and best_effort.first_shed <= standard.first_shed
                )
            ),
            "degraded_truthfully_marked": not self.unmarked_mismatches,
            "clean_drain": bool(self.drain_clean),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": "overload",
            "seed": self.seed,
            "duration_seconds": self.duration_seconds,
            "critical_budget_seconds": self.critical_budget_seconds,
            "classes": {
                name: stats.to_dict()
                for name, stats in self.classes.items()
            },
            "unmarked_mismatches": self.unmarked_mismatches[:5],
            "max_brownout_stage": self.max_stage,
            "drain_clean": self.drain_clean,
            "checks": self.checks,
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            f"overload campaign: seed={self.seed} "
            f"duration={self.duration_seconds:.0f}s "
            f"critical-budget={self.critical_budget_seconds:g}s",
            f"  max brownout stage: {self.max_stage}",
        ]
        for name in ("critical", "standard", "best-effort"):
            stats = self.classes[name].to_dict()
            p99 = stats["p99_seconds"]
            lines.append(
                f"  {name:>12}: sent={stats['sent']} ok={stats['ok']} "
                f"degraded={stats['degraded']} shed={stats['shed']} "
                f"429={stats['saturated']} 504={stats['expired']} "
                f"p99={p99:.3f}s" if p99 is not None else
                f"  {name:>12}: sent={stats['sent']} ok={stats['ok']} "
                f"degraded={stats['degraded']} shed={stats['shed']} "
                f"429={stats['saturated']} 504={stats['expired']}"
            )
        for name, passed in self.checks.items():
            lines.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
        for mismatch in self.unmarked_mismatches[:5]:
            lines.append(f"  unmarked mismatch: {mismatch}")
        lines.append(f"verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def _overload_analyze(
    client: ServeClient,
    item: Dict[str, Any],
    expected: bytes,
    stats: _ClassStats,
    report: OverloadReport,
    lock: threading.Lock,
    started: float,
    criticality: str,
) -> None:
    """One analyze round trip: classify the outcome, verify the bytes."""
    payload = dict(item)
    system = payload.pop("system")
    t0 = time.monotonic()
    try:
        body = client.analyze_raw(system, **payload)
    except ServeError as error:
        elapsed = time.monotonic() - started
        with lock:
            stats.sent += 1
            if error.status == 503:
                stats.shed += 1
                if stats.first_shed is None:
                    stats.first_shed = round(elapsed, 3)
            elif error.status == 429:
                stats.saturated += 1
            elif error.status == 504:
                stats.expired += 1
            elif error.transport:
                stats.transport += 1
            else:
                stats.other += 1
        return
    latency = time.monotonic() - t0
    degraded_body = False
    if body != expected:
        try:
            decoded = json.loads(body)
        except json.JSONDecodeError:
            decoded = {}
        degraded_body = decoded.get("degraded") is True
    with lock:
        stats.sent += 1
        stats.latencies.append(latency)
        if body == expected:
            stats.ok += 1
        elif degraded_body:
            stats.degraded += 1
            if criticality == "critical":
                # A degraded critical response violates the guarantee
                # even though it is marked; count it where finalize()
                # checks (zero_critical_shed also covers degraded).
                pass
        else:
            report.unmarked_mismatches.append({
                "class": criticality,
                "got_bytes": len(body),
                "want_bytes": len(expected),
            })


def _overload_client_loop(
    url: str,
    config: OverloadConfig,
    criticality: str,
    index: int,
    workload: List[Dict[str, Any]],
    expected: List[bytes],
    ballast: Optional[Dict[str, Any]],
    report: OverloadReport,
    lock: threading.Lock,
    stop: threading.Event,
    started: float,
) -> None:
    """One closed-loop client of a fixed criticality class.

    Critical clients run with no retry policy: a shed or failed critical
    request must land in the report, never be papered over by a retry.
    Best-effort clients interleave analyze probes with uncacheable
    simulate ballast — the load that actually saturates the pool.
    """
    rng = random.Random(config.seed * 10_000 + hash(criticality) % 997 + index)
    stats = report.classes[criticality]
    client = ServeClient(
        url,
        timeout=config.request_timeout,
        retry=None,
        criticality=criticality,
        client_id=f"overload-{criticality}-{index}",
    )
    try:
        turn = 0
        while not stop.is_set():
            idx = rng.randrange(len(workload))
            _overload_analyze(
                client, workload[idx], expected[idx], stats, report,
                lock, started, criticality,
            )
            if ballast is not None:
                payload = dict(ballast)
                system = payload.pop("system")
                payload["seed"] = rng.getrandbits(31)
                try:
                    client.simulate_raw(system, **payload)
                except ServeError as error:
                    elapsed = time.monotonic() - started
                    with lock:
                        stats.sent += 1
                        if error.status == 503:
                            stats.shed += 1
                            if stats.first_shed is None:
                                stats.first_shed = round(elapsed, 3)
                        elif error.status == 429:
                            stats.saturated += 1
                        elif error.status == 504:
                            stats.expired += 1
                        elif error.transport:
                            stats.transport += 1
                        else:
                            stats.other += 1
                else:
                    with lock:
                        stats.sent += 1
                        stats.ok += 1
            else:
                # Keep non-ballast classes from busy-spinning the server
                # with millisecond analyze hits: a short think time keeps
                # their request rate realistic while the ballast clients
                # provide the overload.
                stop.wait(0.05 + rng.random() * 0.05)
            turn += 1
    finally:
        client.close()


def _overload_monitor(
    url: str,
    report: OverloadReport,
    lock: threading.Lock,
    stop: threading.Event,
) -> None:
    """Track the peak brownout stage through the public /metrics API."""
    client = ServeClient(url, timeout=5.0)
    try:
        while not stop.wait(0.2):
            try:
                snapshot = client.metrics()
            except ServeError:
                continue
            stage = (snapshot.get("admission") or {}).get("brownout_stage", 0)
            with lock:
                report.max_stage = max(report.max_stage, int(stage))
    finally:
        client.close()


def run_overload(config: OverloadConfig) -> OverloadReport:
    """Run one overload campaign; returns the report (``report.ok``)."""
    from repro.serve.app import ReproServer, ServeConfig

    report = OverloadReport(config)
    lock = threading.Lock()

    workload = [
        {"system": mapped_system(name), "method": "proposed",
         "granularity": "job"}
        for name in OVERLOAD_SUITES
    ]
    expected = expected_bodies(workload)
    ballast = {
        "system": workload[0]["system"],
        "profiles": config.ballast_profiles,
    }

    server = ReproServer(ServeConfig(
        port=0,
        workers=config.workers,
        queue_size=config.queue_size,
        brownout=True,
        brownout_enter=config.brownout_enter,
        brownout_exit=config.brownout_exit,
        brownout_dwell=config.brownout_dwell,
        aging_seconds=config.aging_seconds,
    ))
    server.start()
    _LOG.info(
        "overload campaign up %s",
        kv(url=server.url, seed=config.seed,
           duration=config.duration_seconds),
    )
    try:
        stop = threading.Event()
        started = time.monotonic()
        threads: List[threading.Thread] = []
        plan = (
            [("critical", None)] * config.critical_clients
            + [("standard", None)] * config.standard_clients
            + [("best-effort", ballast)] * config.best_effort_clients
        )
        for index, (criticality, load) in enumerate(plan):
            threads.append(threading.Thread(
                target=_overload_client_loop,
                args=(server.url, config, criticality, index, workload,
                      expected, load, report, lock, stop, started),
                name=f"overload-{criticality}-{index}",
            ))
        threads.append(threading.Thread(
            target=_overload_monitor,
            args=(server.url, report, lock, stop),
            name="overload-monitor",
            daemon=True,
        ))
        for thread in threads:
            thread.start()
        time.sleep(config.duration_seconds)
        stop.set()
        for thread in threads:
            thread.join(timeout=config.request_timeout + 30.0)
    finally:
        report.drain_clean = server.drain(timeout=60.0)
    report.finalize()
    if config.report_path:
        Path(config.report_path).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
        )
    return report
