"""Pre-fork supervisor: N worker processes behind one SO_REUSEPORT port.

One Python process cannot exploit many cores for CPU-bound analysis
(the GIL serializes ``sched()`` fixed points), and a single process is
a single fault domain — one segfault, OOM kill, or stuck thread takes
the whole service down.  The supervisor runs ``repro serve`` N times as
child processes that all bind the *same* port with ``SO_REUSEPORT``;
the kernel load-balances incoming connections across them, so no
userspace proxy is needed and a dying worker only drops its own
connections (the retrying :class:`~repro.serve.client.ServeClient`
re-sends those to a surviving sibling).

Crash handling: a worker that exits unexpectedly is restarted with
bounded exponential backoff (``backoff_base * 2**consecutive`` capped
at ``backoff_cap``); a worker that stays up ``healthy_after_seconds``
resets its failure streak.  Fleet state is published atomically to a
JSON status file that the workers surface under ``/healthz`` and
``/metrics`` (``supervisor`` section), and that the chaos harness reads
to find victim pids.

Graceful shutdown: SIGTERM/SIGINT forwards SIGTERM to every worker,
whose own handler runs the drain sequence (finish in-flight work, park
explore jobs on committed checkpoints).  Workers still alive after
``drain_timeout`` are SIGKILLed.  The supervisor exits 0 iff every
worker drained cleanly.

Durable work survives all of this by construction: explore jobs live in
the shared ``state_dir`` (claim files prevent double-runs, see
:mod:`repro.serve.jobs`) and warm analysis state lives in the shared
``cache_dir`` disk tier (:mod:`repro.serve.cachestore`).
"""

import json
import os
import signal
import socket
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.logging import get_logger, kv

_LOG = get_logger("serve")

__all__ = ["Supervisor", "SupervisorConfig"]


class SupervisorConfig:
    """Tuning knobs of one supervised fleet."""

    def __init__(
        self,
        worker_argv: List[str],
        processes: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        status_path: Optional[str] = None,
        drain_timeout: float = 30.0,
        backoff_base: float = 0.5,
        backoff_cap: float = 10.0,
        healthy_after_seconds: float = 30.0,
        poll_seconds: float = 0.2,
    ):
        if processes < 1:
            raise ReproError("supervisor needs >= 1 worker process")
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise ReproError("need 0 < backoff_base <= backoff_cap")
        #: Base command of one worker (``[sys.executable, -m, repro,
        #: serve, ...]`` without port/identity flags — those are
        #: appended per worker).
        self.worker_argv = list(worker_argv)
        self.processes = processes
        self.host = host
        #: 0 picks a free port once; all workers share the choice.
        self.port = port
        self.status_path = status_path
        self.drain_timeout = drain_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.healthy_after_seconds = healthy_after_seconds
        self.poll_seconds = poll_seconds


@dataclass
class _WorkerSlot:
    """Book-keeping for one worker process slot."""

    id: int
    process: Optional[subprocess.Popen] = None
    started: float = 0.0
    restarts: int = 0
    consecutive_failures: int = 0
    #: Monotonic time before which the slot must not respawn.
    backoff_until: float = 0.0
    last_exit_code: Optional[int] = None
    state: str = "starting"
    extra: Dict[str, Any] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "pid": self.process.pid if self.process is not None else None,
            "state": self.state,
            "restarts": self.restarts,
            "last_exit_code": self.last_exit_code,
            "started": self.started,
        }


class Supervisor:
    """Runs and heals a fleet of SO_REUSEPORT ``repro serve`` workers."""

    def __init__(self, config: SupervisorConfig):
        self.config = config
        self._slots = [_WorkerSlot(id=i) for i in range(config.processes)]
        self._placeholder: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._stopping = False
        self._started = time.time()
        self._restarts_total = 0

    # -- port reservation ------------------------------------------------

    @property
    def port(self) -> int:
        """The concrete port the fleet serves on (after :meth:`reserve`)."""
        if self._port is None:
            raise ReproError("supervisor has not reserved a port yet")
        return self._port

    @property
    def url(self) -> str:
        """Base URL of the fleet."""
        return f"http://{self.config.host}:{self.port}"

    def reserve(self) -> int:
        """Pin the fleet's port with a bound (never listening) socket.

        ``port=0`` must resolve to *one* concrete port that every worker
        can bind; the placeholder holds the kernel's choice without
        receiving connections (only listening sockets do), so the port
        cannot be lost to another process between worker restarts.
        """
        if self._port is not None:
            return self._port
        if not hasattr(socket, "SO_REUSEPORT"):
            raise ReproError(
                "the pre-fork supervisor needs SO_REUSEPORT "
                "(unavailable on this platform); run with --processes 1"
            )
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        placeholder.bind((self.config.host, self.config.port))
        self._placeholder = placeholder
        self._port = placeholder.getsockname()[1]
        return self._port

    # -- status file -----------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The fleet state as published to the status file."""
        return {
            "pid": os.getpid(),
            "started": self._started,
            "host": self.config.host,
            "port": self._port,
            "processes": self.config.processes,
            "stopping": self._stopping,
            "restarts_total": self._restarts_total,
            "workers": [slot.snapshot() for slot in self._slots],
        }

    def _publish_status(self) -> None:
        path = self.config.status_path
        if not path:
            return
        target = Path(path)
        tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(self.status(), sort_keys=True))
            os.replace(tmp, target)
        except OSError as error:
            _LOG.warning(
                "cannot publish supervisor status %s",
                kv(path=path, error=str(error)),
            )

    # -- worker lifecycle ------------------------------------------------

    def _spawn(self, slot: _WorkerSlot) -> None:
        argv = list(self.config.worker_argv) + [
            "--host",
            self.config.host,
            "--port",
            str(self.port),
            "--reuse-port",
            "--_worker-id",
            str(slot.id),
        ]
        if self.config.status_path:
            argv += ["--_status-file", self.config.status_path]
        slot.process = subprocess.Popen(argv)
        slot.started = time.monotonic()
        slot.state = "running"
        _LOG.info(
            "spawned worker %s",
            kv(worker=slot.id, pid=slot.process.pid, restarts=slot.restarts),
        )

    def _reap_and_heal(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            process = slot.process
            if process is not None:
                code = process.poll()
                if code is None:
                    if (
                        slot.consecutive_failures
                        and now - slot.started
                        > self.config.healthy_after_seconds
                    ):
                        slot.consecutive_failures = 0
                    continue
                # Unexpected death (we are not stopping): schedule a
                # respawn with bounded exponential backoff.
                slot.process = None
                slot.last_exit_code = code
                slot.state = "restarting"
                backoff = min(
                    self.config.backoff_cap,
                    self.config.backoff_base
                    * (2.0 ** slot.consecutive_failures),
                )
                slot.consecutive_failures += 1
                slot.backoff_until = now + backoff
                _LOG.warning(
                    "worker died %s",
                    kv(
                        worker=slot.id,
                        exit_code=code,
                        backoff_seconds=round(backoff, 3),
                    ),
                )
            if slot.process is None and now >= slot.backoff_until:
                slot.restarts += 1
                self._restarts_total += 1
                self._spawn(slot)

    # -- main loop -------------------------------------------------------

    def start(self) -> None:
        """Reserve the port and launch the initial fleet."""
        self.reserve()
        for slot in self._slots:
            self._spawn(slot)
        self._publish_status()

    def run(self, install_signals: bool = True) -> int:
        """Supervise until stopped; returns the process exit code.

        SIGTERM/SIGINT triggers :meth:`stop` (graceful fleet drain).
        Exit code 0 means every worker drained cleanly.
        """
        if self._port is None:
            self.start()
        if install_signals:

            def _on_signal(signum, _frame):
                _LOG.info("supervisor received %s", kv(signal=signum))
                self._stopping = True

            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        last_publish = 0.0
        try:
            while not self._stopping:
                self._reap_and_heal()
                now = time.monotonic()
                if now - last_publish >= 1.0:
                    self._publish_status()
                    last_publish = now
                time.sleep(self.config.poll_seconds)
        except KeyboardInterrupt:
            pass
        return self.stop()

    def request_stop(self) -> None:
        """Ask :meth:`run` to exit its loop and drain (thread-safe).

        The signal-free twin of SIGTERM, for harnesses driving the
        supervisor from a thread where signal handlers cannot be
        installed.
        """
        self._stopping = True

    def stop(self) -> int:
        """Drain the fleet: SIGTERM all, wait, SIGKILL stragglers.

        Returns 0 iff every *live* worker exited 0 within
        ``drain_timeout``.  A slot that crashed earlier and sits in
        restart backoff has nothing in flight to drain — the crash is
        already on record in ``restarts_total``/``last_exit_code``, so
        it does not mark the drain itself unclean.
        """
        self._stopping = True
        for slot in self._slots:
            slot.state = "draining"
            if slot.process is not None and slot.process.poll() is None:
                try:
                    slot.process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + self.config.drain_timeout
        clean = True
        for slot in self._slots:
            process = slot.process
            if process is None:
                slot.state = "stopped"
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                code = process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                _LOG.warning(
                    "worker ignored drain, killing %s",
                    kv(worker=slot.id, pid=process.pid),
                )
                process.kill()
                try:
                    code = process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    code = -9
                clean = False
            slot.last_exit_code = code
            slot.state = "stopped"
            # -SIGTERM means the worker died from our own drain signal
            # before installing its handler (startup window) — it had
            # no work in flight, so the drain is still clean.  Once the
            # handler is up, SIGTERM always drains to exit 0.
            if code not in (0, -signal.SIGTERM):
                clean = False
        if self._placeholder is not None:
            try:
                self._placeholder.close()
            except OSError:
                pass
            self._placeholder = None
        self._publish_status()
        _LOG.info("supervisor stopped %s", kv(clean=clean))
        return 0 if clean else 1

    # -- helpers for harnesses -------------------------------------------

    def worker_pids(self) -> List[int]:
        """Pids of the currently live workers."""
        return [
            slot.process.pid
            for slot in self._slots
            if slot.process is not None and slot.process.poll() is None
        ]
