"""Async exploration jobs with crash-safe resume.

``POST /v1/explore`` cannot answer synchronously — a real exploration
runs minutes to hours — so it becomes a *job*: accepted immediately,
polled via ``GET /v1/jobs/<id>``, cancellable, and **durable**.  Each
job owns a directory under the server's state dir holding

* ``job.json`` — the job record (atomic write-then-rename, like the DSE
  snapshots), including the full canonical system payload so a restart
  needs no external files;
* ``ckpt/`` — the :mod:`repro.dse.checkpoint` snapshot directory of its
  exploration.

A SIGKILLed server therefore loses nothing it had committed: on
restart, :meth:`JobStore.recover` re-queues every job that was pending
or running, and the explorer resumes from the newest valid snapshot —
replaying the identical trajectory, so the finished front equals an
uninterrupted run (the PR-2 determinism guarantee carried up to the
service layer).

Cancellation is cooperative: the explorer's per-generation progress
callback raises ``KeyboardInterrupt`` when a cancel (or the job's
deadline) is observed, which the explorer converts into a final
checkpoint plus a partial result.

Multi-process coordination (the pre-fork supervisor runs N workers over
one shared state dir) rides on three kinds of marker files per job:

* ``claim`` — created ``O_EXCL`` with the owner's pid before a job
  starts running; :meth:`JobStore.recover` skips records claimed by a
  live process, so a restarted sibling cannot double-run a job.  Claims
  of dead pids are stale and are broken.
* ``cancel`` — dropped by any worker that receives the cancel request;
  the owning worker's progress callback polls it each generation.
* ``.idem/<key>`` — maps a client idempotency key to its job id
  (``O_EXCL``), so a retried ``POST /v1/explore`` coalesces onto the
  first accepted job instead of spawning a duplicate exploration.

Graceful drain (:meth:`JobStore.drain`) interrupts running jobs the
same way a cancel does, but *parks* them: the final checkpoint commits,
the record goes back to ``pending``, and the claim is released — so the
next incarnation's :meth:`~JobStore.recover` resumes the identical
trajectory.
"""

import json
import os
import shutil
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import SpanContext, activate, span as trace_span
from repro.serve.encoding import exploration_result_to_dict

_LOG = get_logger("serve")

__all__ = ["Job", "JobStore", "JOB_STATES"]

#: Lifecycle: pending -> running -> done | failed | cancelled.
#: A drained (parked) job goes back to pending with its checkpoints.
JOB_STATES = ("pending", "running", "done", "failed", "cancelled")

_TERMINAL_STATES = ("done", "failed", "cancelled")


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we could signal."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


@dataclass
class Job:
    """One exploration job and its durable record."""

    id: str
    params: Dict[str, Any]
    status: str = "pending"
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    generations_run: int = 0
    #: Generation of the newest committed checkpoint (resume point).
    checkpoint_generation: Optional[int] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    #: How often the record was re-queued after a server restart.
    restarts: int = 0
    #: Trace context of the submitting request (``SpanContext.to_dict``
    #: form), persisted so a restarted job continues the same trace.
    trace: Optional[Dict[str, Any]] = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: Serializes writes of this job's record file (creator thread and
    #: runner thread may persist concurrently).
    _save_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def to_dict(self, with_result: bool = True) -> Dict[str, Any]:
        """The job record as shipped to clients and to ``job.json``."""
        with self._lock:
            payload = {
                "id": self.id,
                "kind": "shard" if self.params.get("op") else "explore",
                "status": self.status,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "generations_run": self.generations_run,
                "checkpoint_generation": self.checkpoint_generation,
                "cancel_requested": self.cancel_requested,
                "restarts": self.restarts,
                "trace": self.trace,
                "error": self.error,
                "params": self.params,
            }
            if with_result:
                payload["result"] = self.result
            else:
                payload["result"] = None
            return payload

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Job":
        """Rebuild a job record from ``job.json``."""
        return Job(
            id=payload["id"],
            params=payload["params"],
            status=payload.get("status", "pending"),
            created=payload.get("created", 0.0),
            started=payload.get("started"),
            finished=payload.get("finished"),
            generations_run=payload.get("generations_run", 0),
            checkpoint_generation=payload.get("checkpoint_generation"),
            result=payload.get("result"),
            error=payload.get("error"),
            cancel_requested=payload.get("cancel_requested", False),
            restarts=payload.get("restarts", 0),
            trace=payload.get("trace"),
        )


class JobStore:
    """Runs explore jobs on dedicated threads and persists their state.

    Jobs get their own small executor (default: one thread) so a long
    exploration can never starve the analyze/simulate worker pool.
    """

    def __init__(self, state_dir, workers: int = 1):
        if workers < 1:
            raise ReproError("job store workers must be >= 1")
        self._dir = Path(state_dir)
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReproError(
                f"cannot create job state directory {self._dir}: {error}"
            ) from error
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._queue: List[str] = []
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._draining = False
        #: Jobs this process has claimed and run (their in-memory record
        #: is authoritative; everything else may be refreshed from disk).
        self._owned: set = set()
        self._threads = [
            threading.Thread(
                target=self._runner, name=f"serve-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- directories -----------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        """The durable directory of one job."""
        return self._dir / job_id

    def _record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def checkpoint_dir(self, job_id: str) -> Path:
        """Where the job's exploration snapshots go."""
        return self.job_dir(job_id) / "ckpt"

    def _claim_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "claim"

    def _cancel_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "cancel"

    def _idem_path(self, key: str) -> Path:
        return self._dir / ".idem" / key

    # -- cross-process markers -------------------------------------------

    def _claim_pid(self, job_id: str) -> Optional[int]:
        """The pid recorded in the job's claim file, if any."""
        try:
            return int(self._claim_path(job_id).read_text().strip() or 0)
        except (OSError, ValueError):
            return None

    def _try_claim(self, job_id: str) -> bool:
        """Atomically claim the job for this process (break stale claims)."""
        path = self._claim_path(job_id)
        for _attempt in range(2):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                pid = self._claim_pid(job_id)
                if pid is not None and pid != os.getpid() and _pid_alive(pid):
                    return False
                # Stale (dead owner) or unreadable: break it and retry.
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    return False
                continue
            except OSError:
                return False
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            return True
        return False

    def _release_claim(self, job_id: str) -> None:
        try:
            self._claim_path(job_id).unlink(missing_ok=True)
        except OSError:
            pass

    def _cancel_marked(self, job_id: str) -> bool:
        try:
            return self._cancel_path(job_id).exists()
        except OSError:
            return False

    def _mark_cancel(self, job_id: str) -> None:
        try:
            path = self._cancel_path(job_id)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.touch()
        except OSError as error:
            _LOG.warning(
                "cannot write cancel marker %s",
                kv(job=job_id, error=str(error)),
            )

    # -- persistence -----------------------------------------------------

    def _save(self, job: Job) -> None:
        path = self._record_path(job.id)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with job._save_lock:
                # Snapshot under the save lock: a snapshot taken outside
                # could be written after a newer one, persisting a stale
                # record (e.g. a finished job left on disk as 'running').
                payload = job.to_dict(with_result=True)
                path.parent.mkdir(parents=True, exist_ok=True)
                with open(tmp, "w") as handle:
                    json.dump(payload, handle, sort_keys=True)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
        except OSError as error:
            _LOG.warning(
                "cannot persist job record %s",
                kv(job=job.id, error=str(error)),
            )

    def recover(self) -> List[str]:
        """Re-queue every job that was unfinished when the process died.

        Returns the re-queued job ids.  Corrupt records are skipped with
        a warning; finished jobs are loaded for serving but not re-run.
        Records claimed by a live sibling worker are loaded for serving
        but left alone — the owner is still running them; stale claims
        (dead owners) are broken and the job re-queued.
        """
        requeued: List[str] = []
        for record in sorted(self._dir.glob("*/job.json")):
            try:
                payload = json.loads(record.read_text())
                job = Job.from_dict(payload)
            except (OSError, json.JSONDecodeError, KeyError, TypeError) as error:
                _LOG.warning(
                    "skipping unreadable job record %s",
                    kv(path=str(record), error=str(error)),
                )
                continue
            if job.status in ("pending", "running"):
                pid = self._claim_pid(job.id)
                if pid is not None and pid != os.getpid() and _pid_alive(pid):
                    with self._lock:
                        if job.id not in self._jobs:
                            self._jobs[job.id] = job
                    continue
                if pid is not None:
                    self._release_claim(job.id)
            with self._lock:
                if job.id in self._jobs:
                    continue
                self._jobs[job.id] = job
                if job.status in ("pending", "running"):
                    job.status = "pending"
                    job.restarts += 1
                    job.checkpoint_generation = self._latest_checkpoint(job.id)
                    self._queue.append(job.id)
                    self._wakeup.notify()
                    requeued.append(job.id)
            if job.id in requeued:
                self._save(job)
                metrics().counter("serve.jobs.recovered").inc()
                _LOG.info(
                    "recovered job %s",
                    kv(
                        job=job.id,
                        resume_generation=job.checkpoint_generation,
                        restarts=job.restarts,
                    ),
                )
        return requeued

    def _latest_checkpoint(self, job_id: str) -> Optional[int]:
        from repro.dse.checkpoint import latest_snapshot_generation

        return latest_snapshot_generation(self.checkpoint_dir(job_id))

    # -- API -------------------------------------------------------------

    def create(
        self,
        params: Dict[str, Any],
        trace: Optional[Dict[str, Any]] = None,
        idempotency_key: Optional[str] = None,
    ) -> Job:
        """Accept a validated explore request as a new pending job.

        With an ``idempotency_key``, a retried submission returns the
        job the first submission created instead of a duplicate: the key
        is bound to the winning job id via an ``O_EXCL`` marker file, so
        the race is settled identically in every worker process.
        """
        if idempotency_key:
            existing = self._idem_lookup(idempotency_key)
            if existing is not None:
                metrics().counter("serve.jobs.idempotent_replays").inc()
                return existing
        job = Job(
            id=f"job-{uuid.uuid4().hex[:12]}",
            params=params,
            created=time.time(),
            trace=trace,
        )
        with self._lock:
            if self._closed:
                raise ReproError("job store is shut down")
            self._jobs[job.id] = job
        # Persist before publishing the idempotency marker, so a marker
        # never points at a job without a durable record.
        self._save(job)
        if idempotency_key:
            winner = self._idem_claim(idempotency_key, job.id)
            if winner != job.id:
                # Lost the race: discard our record, adopt the winner.
                with self._lock:
                    self._jobs.pop(job.id, None)
                shutil.rmtree(self.job_dir(job.id), ignore_errors=True)
                adopted = self.get(winner)
                if adopted is not None:
                    metrics().counter("serve.jobs.idempotent_replays").inc()
                    return adopted
                # Winner's record is unreadable; fall back to running
                # ours (re-register and proceed).
                with self._lock:
                    self._jobs[job.id] = job
                self._save(job)
        with self._lock:
            if self._closed:
                raise ReproError("job store is shut down")
            self._queue.append(job.id)
            self._wakeup.notify()
        metrics().counter("serve.jobs.created").inc()
        return job

    def _idem_lookup(self, key: str) -> Optional[Job]:
        try:
            job_id = self._idem_path(key).read_text().strip()
        except OSError:
            return None
        return self.get(job_id) if job_id else None

    def _idem_claim(self, key: str, job_id: str) -> str:
        """Bind ``key`` to ``job_id``; returns the id that owns the key."""
        path = self._idem_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            try:
                existing = path.read_text().strip()
            except OSError:
                existing = ""
            if existing and self.get(existing) is not None:
                return existing
            # Orphaned marker (job record lost): take it over.
            try:
                path.write_text(job_id)
            except OSError:
                pass
            return job_id
        except OSError:
            return job_id
        with os.fdopen(fd, "w") as handle:
            handle.write(job_id)
        return job_id

    def _load_record(self, job_id: str) -> Optional[Job]:
        """Read a job record straight from disk (no registration)."""
        try:
            payload = json.loads(self._record_path(job_id).read_text())
            return Job.from_dict(payload)
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            return None

    def get(self, job_id: str) -> Optional[Job]:
        """The job record, or ``None`` for an unknown id.

        Records this process owns (it ran them) or that reached a
        terminal state are served from memory; anything else may be
        progressing in a sibling worker, so the on-disk record — the
        cross-process source of truth — is re-read.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            owned = job_id in self._owned
        if job is not None and (owned or job.status in _TERMINAL_STATES):
            return job
        loaded = self._load_record(job_id)
        if loaded is None:
            return job
        with self._lock:
            if job_id in self._owned:
                return self._jobs.get(job_id, loaded)
            if job_id in self._jobs:
                # Keep queue membership intact; just swap the record so
                # pollers see the freshest cross-process state.
                self._jobs[job_id] = loaded
        return loaded

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; pending jobs cancel immediately.

        Running jobs observe the flag at their next generation boundary
        and finish as ``cancelled`` with a partial result.  The request
        also drops a durable ``cancel`` marker, so a job running in a
        sibling worker process (or resumed after a restart) observes it
        too.
        """
        job = self.get(job_id)
        if job is None:
            return None
        if job.status in _TERMINAL_STATES:
            return job
        self._mark_cancel(job_id)
        with self._lock:
            known = self._jobs.get(job_id)
            owned = job_id in self._owned
        if known is None:
            # Disk-only record owned by a sibling; the marker is the
            # cancellation. Reflect the request in the returned copy.
            job.cancel_requested = True
            metrics().counter("serve.jobs.cancelled").inc()
            return job
        job = known
        finalize = False
        with self._lock:
            job.cancel_requested = True
            if job.status == "pending":
                # Only cancel in place if no sibling has claimed it.
                if owned or self._try_claim(job_id):
                    job.status = "cancelled"
                    job.finished = time.time()
                    if job_id in self._queue:
                        self._queue.remove(job_id)
                    finalize = True
        if finalize:
            self._save(job)
            self._release_claim(job_id)
        metrics().counter("serve.jobs.cancelled").inc()
        return job

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (the ``/metrics`` summary)."""
        with self._lock:
            jobs = list(self._jobs.values())
        tally = {state: 0 for state in JOB_STATES}
        for job in jobs:
            tally[job.status] = tally.get(job.status, 0) + 1
        return tally

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no job is pending or running (tests, shutdown)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            tally = self.counts()
            if tally["pending"] == 0 and tally["running"] == 0:
                return True
            time.sleep(0.02)
        return False

    # -- execution -------------------------------------------------------

    def _runner(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed and not self._draining:
                    self._wakeup.wait()
                if self._draining or (self._closed and not self._queue):
                    # On drain, queued jobs stay durable on disk as
                    # pending — the next incarnation re-queues them.
                    return
                job = self._jobs[self._queue.pop(0)]
                if job.status != "pending":
                    continue
            # Claim outside the lock (file I/O); a sibling worker that
            # recovered the same record may be racing us for it.
            if not self._try_claim(job.id):
                continue
            fresh = self._load_record(job.id)
            if fresh is not None and fresh.status not in ("pending", "running"):
                # Finished or cancelled elsewhere while queued here.
                with self._lock:
                    if job.id not in self._owned:
                        self._jobs[job.id] = fresh
                self._release_claim(job.id)
                continue
            with self._lock:
                if job.status != "pending":
                    self._release_claim(job.id)
                    continue
                job.status = "running"
                job.started = time.time()
                self._owned.add(job.id)
            self._save(job)
            try:
                self._run_job(job)
            except BaseException as error:  # noqa: BLE001 — recorded
                job.status = "failed"
                job.error = f"{type(error).__name__}: {error}"
                job.finished = time.time()
                metrics().counter("serve.jobs.failed").inc()
                _LOG.warning(
                    "job failed %s", kv(job=job.id, error=job.error)
                )
            self._save(job)
            self._release_claim(job.id)
            if job.status == "pending":
                # Parked by a drain: disown so later polls re-read disk
                # (the next incarnation owns its progress).
                with self._lock:
                    self._owned.discard(job.id)

    def _run_job(self, job: Job) -> None:
        from dataclasses import replace

        from repro.dse.islands import has_island_state, run_explore
        from repro.serve.encoding import explore_request_from_params

        if job.params.get("op"):
            self._run_shard(job)
            return
        params = job.params
        base = explore_request_from_params(params)
        ckpt_dir = self.checkpoint_dir(job.id)
        multi = base.topology.normalized().islands > 1
        config = replace(
            base.config,
            quarantine_path=str(self.job_dir(job.id) / "quarantine.jsonl"),
            checkpoint_dir=str(ckpt_dir),
            # A restarted job continues its recorded trajectory; a fresh
            # one starts clean (no spurious no-snapshot warning).
            resume=(
                has_island_state(ckpt_dir)
                if multi
                else self._latest_checkpoint(job.id) is not None
            ),
        )
        request = replace(base, config=config)
        deadline = (
            time.monotonic() + params["deadline_seconds"]
            if params.get("deadline_seconds") is not None
            else None
        )

        def progress(generation: int, _stats) -> None:
            job.generations_run = generation
            if not job.cancel_requested and self._cancel_marked(job.id):
                # Cancel arrived at a sibling worker (or a previous
                # incarnation); the marker file is the relay.
                job.cancel_requested = True
            if job.cancel_requested:
                raise KeyboardInterrupt
            if self._draining:
                # Drain, not cancel: commit a final checkpoint and park.
                raise KeyboardInterrupt
            if deadline is not None and time.monotonic() > deadline:
                job.cancel_requested = True
                job.error = "deadline exceeded"
                raise KeyboardInterrupt

        timer = metrics().timer("serve.job_seconds")
        # A restarted job carries the submitting request's trace context
        # in its record, so the resumed run continues the original trace
        # instead of starting a fresh root.  Island runs execute inline —
        # the job thread IS the coordinator — and their progress hook
        # fires at migration barriers instead of every generation, which
        # keeps cancel/drain/deadline handling cooperative either way.
        trace_ctx = SpanContext.from_dict(job.trace)
        with activate(trace_ctx), trace_span(
            "serve.job",
            job=job.id,
            resume=config.resume,
            restarts=job.restarts,
        ), timer.time():
            result = run_explore(
                request, execution="inline", progress=progress
            )
        job.generations_run = result.generations_run
        job.checkpoint_generation = self._latest_checkpoint(job.id)
        if (
            result.statistics.interrupted
            and self._draining
            and not job.cancel_requested
        ):
            # Drained mid-run: the explorer committed a final checkpoint,
            # so park the job for the next incarnation to resume the
            # identical trajectory (PR-2 determinism carried through a
            # graceful shutdown, not just a crash).
            job.result = None
            job.started = None
            job.finished = None
            job.status = "pending"
            metrics().counter("serve.jobs.parked").inc()
            _LOG.info(
                "parked job for resume %s",
                kv(job=job.id, checkpoint=job.checkpoint_generation),
            )
            return
        job.result = exploration_result_to_dict(result)
        job.finished = time.time()
        if result.statistics.interrupted and job.cancel_requested:
            job.status = "cancelled"
            metrics().counter("serve.jobs.cancelled").inc()
        else:
            job.status = "done"
            metrics().counter("serve.jobs.done").inc()

    def _run_shard(self, job: Job) -> None:
        """One durable island-coordination step (``POST /v1/shard``).

        A client-side fleet coordinator decomposes an island run into
        ``epoch``/``migrate``/``merge`` jobs sharing a ``run_id``; all
        state lives under ``<state_dir>/islands/<run_id>`` so any worker
        of the fleet can pick up any step.  Steps are idempotent (epochs
        resume from island checkpoints, migration rewrites snapshots
        atomically at the same generation), so retried jobs converge on
        identical state.
        """
        from repro.dse import islands as island_mod
        from repro.serve.encoding import explore_request_from_params

        params = job.params
        request = explore_request_from_params(params)
        state_dir = self._dir / "islands" / params["run_id"]
        op = params["op"]
        timer = metrics().timer("serve.job_seconds")
        trace_ctx = SpanContext.from_dict(job.trace)
        with activate(trace_ctx), trace_span(
            "serve.shard", job=job.id, op=op, run=params["run_id"]
        ), timer.time():
            if op == "epoch":
                island_mod.run_shard_epoch(
                    request, state_dir, params["island"], params["stop"]
                )
                job.generations_run = params["stop"]
                job.result = {
                    "op": op,
                    "island": params["island"],
                    "stop": params["stop"],
                }
            elif op == "migrate":
                moved = island_mod.run_shard_migration(
                    request, state_dir, params["stop"]
                )
                job.generations_run = params["stop"]
                job.result = {"op": op, "stop": params["stop"],
                              "migrants": moved}
            else:  # merge
                result = island_mod.run_shard_merge(request, state_dir)
                job.generations_run = result.generations_run
                job.result = exploration_result_to_dict(result)
        job.finished = time.time()
        job.status = "done"
        metrics().counter("serve.jobs.done").inc()

    def drain(self, timeout: float = 60.0) -> bool:
        """Gracefully stop: park running jobs, keep pending jobs durable.

        Every running job is interrupted at its next generation
        boundary, commits a final checkpoint, and goes back to
        ``pending`` on disk; queued jobs are already durable as
        ``pending``.  After a drain, :meth:`recover` in a fresh process
        resumes every one of them on its recorded trajectory.  Returns
        whether all runner threads stopped within ``timeout``.
        """
        with self._lock:
            self._draining = True
            self._closed = True
            self._wakeup.notify_all()
        deadline = time.monotonic() + timeout
        clean = True
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                clean = False
        if not clean:
            _LOG.warning(
                "drain timed out with runner threads alive %s",
                kv(timeout=timeout),
            )
        return clean

    def shutdown(self) -> None:
        """Stop the runner threads (running jobs keep their checkpoints)."""
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
