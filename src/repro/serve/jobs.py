"""Async exploration jobs with crash-safe resume.

``POST /v1/explore`` cannot answer synchronously — a real exploration
runs minutes to hours — so it becomes a *job*: accepted immediately,
polled via ``GET /v1/jobs/<id>``, cancellable, and **durable**.  Each
job owns a directory under the server's state dir holding

* ``job.json`` — the job record (atomic write-then-rename, like the DSE
  snapshots), including the full canonical system payload so a restart
  needs no external files;
* ``ckpt/`` — the :mod:`repro.dse.checkpoint` snapshot directory of its
  exploration.

A SIGKILLed server therefore loses nothing it had committed: on
restart, :meth:`JobStore.recover` re-queues every job that was pending
or running, and the explorer resumes from the newest valid snapshot —
replaying the identical trajectory, so the finished front equals an
uninterrupted run (the PR-2 determinism guarantee carried up to the
service layer).

Cancellation is cooperative: the explorer's per-generation progress
callback raises ``KeyboardInterrupt`` when a cancel (or the job's
deadline) is observed, which the explorer converts into a final
checkpoint plus a partial result.
"""

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import SpanContext, activate, span as trace_span
from repro.serve.encoding import exploration_result_to_dict, resolve_system

_LOG = get_logger("serve")

__all__ = ["Job", "JobStore", "JOB_STATES"]

#: Lifecycle: pending -> running -> done | failed | cancelled.
JOB_STATES = ("pending", "running", "done", "failed", "cancelled")


@dataclass
class Job:
    """One exploration job and its durable record."""

    id: str
    params: Dict[str, Any]
    status: str = "pending"
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    generations_run: int = 0
    #: Generation of the newest committed checkpoint (resume point).
    checkpoint_generation: Optional[int] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    #: How often the record was re-queued after a server restart.
    restarts: int = 0
    #: Trace context of the submitting request (``SpanContext.to_dict``
    #: form), persisted so a restarted job continues the same trace.
    trace: Optional[Dict[str, Any]] = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: Serializes writes of this job's record file (creator thread and
    #: runner thread may persist concurrently).
    _save_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def to_dict(self, with_result: bool = True) -> Dict[str, Any]:
        """The job record as shipped to clients and to ``job.json``."""
        with self._lock:
            payload = {
                "id": self.id,
                "kind": "explore",
                "status": self.status,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "generations_run": self.generations_run,
                "checkpoint_generation": self.checkpoint_generation,
                "cancel_requested": self.cancel_requested,
                "restarts": self.restarts,
                "trace": self.trace,
                "error": self.error,
                "params": self.params,
            }
            if with_result:
                payload["result"] = self.result
            else:
                payload["result"] = None
            return payload

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Job":
        """Rebuild a job record from ``job.json``."""
        return Job(
            id=payload["id"],
            params=payload["params"],
            status=payload.get("status", "pending"),
            created=payload.get("created", 0.0),
            started=payload.get("started"),
            finished=payload.get("finished"),
            generations_run=payload.get("generations_run", 0),
            checkpoint_generation=payload.get("checkpoint_generation"),
            result=payload.get("result"),
            error=payload.get("error"),
            cancel_requested=payload.get("cancel_requested", False),
            restarts=payload.get("restarts", 0),
            trace=payload.get("trace"),
        )


class JobStore:
    """Runs explore jobs on dedicated threads and persists their state.

    Jobs get their own small executor (default: one thread) so a long
    exploration can never starve the analyze/simulate worker pool.
    """

    def __init__(self, state_dir, workers: int = 1):
        if workers < 1:
            raise ReproError("job store workers must be >= 1")
        self._dir = Path(state_dir)
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ReproError(
                f"cannot create job state directory {self._dir}: {error}"
            ) from error
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._queue: List[str] = []
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._runner, name=f"serve-job-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- directories -----------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        """The durable directory of one job."""
        return self._dir / job_id

    def _record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def checkpoint_dir(self, job_id: str) -> Path:
        """Where the job's exploration snapshots go."""
        return self.job_dir(job_id) / "ckpt"

    # -- persistence -----------------------------------------------------

    def _save(self, job: Job) -> None:
        path = self._record_path(job.id)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with job._save_lock:
                # Snapshot under the save lock: a snapshot taken outside
                # could be written after a newer one, persisting a stale
                # record (e.g. a finished job left on disk as 'running').
                payload = job.to_dict(with_result=True)
                path.parent.mkdir(parents=True, exist_ok=True)
                with open(tmp, "w") as handle:
                    json.dump(payload, handle, sort_keys=True)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
        except OSError as error:
            _LOG.warning(
                "cannot persist job record %s",
                kv(job=job.id, error=str(error)),
            )

    def recover(self) -> List[str]:
        """Re-queue every job that was unfinished when the process died.

        Returns the re-queued job ids.  Corrupt records are skipped with
        a warning; finished jobs are loaded for serving but not re-run.
        """
        requeued: List[str] = []
        for record in sorted(self._dir.glob("*/job.json")):
            try:
                payload = json.loads(record.read_text())
                job = Job.from_dict(payload)
            except (OSError, json.JSONDecodeError, KeyError, TypeError) as error:
                _LOG.warning(
                    "skipping unreadable job record %s",
                    kv(path=str(record), error=str(error)),
                )
                continue
            with self._lock:
                if job.id in self._jobs:
                    continue
                self._jobs[job.id] = job
                if job.status in ("pending", "running"):
                    job.status = "pending"
                    job.restarts += 1
                    job.checkpoint_generation = self._latest_checkpoint(job.id)
                    self._queue.append(job.id)
                    self._wakeup.notify()
                    requeued.append(job.id)
            if job.id in requeued:
                self._save(job)
                metrics().counter("serve.jobs.recovered").inc()
                _LOG.info(
                    "recovered job %s",
                    kv(
                        job=job.id,
                        resume_generation=job.checkpoint_generation,
                        restarts=job.restarts,
                    ),
                )
        return requeued

    def _latest_checkpoint(self, job_id: str) -> Optional[int]:
        from repro.dse.checkpoint import latest_snapshot_generation

        return latest_snapshot_generation(self.checkpoint_dir(job_id))

    # -- API -------------------------------------------------------------

    def create(
        self,
        params: Dict[str, Any],
        trace: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Accept a validated explore request as a new pending job."""
        job = Job(
            id=f"job-{uuid.uuid4().hex[:12]}",
            params=params,
            created=time.time(),
            trace=trace,
        )
        with self._lock:
            if self._closed:
                raise ReproError("job store is shut down")
            self._jobs[job.id] = job
            self._queue.append(job.id)
            self._wakeup.notify()
        self._save(job)
        metrics().counter("serve.jobs.created").inc()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job record, or ``None`` for an unknown id."""
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; pending jobs cancel immediately.

        Running jobs observe the flag at their next generation boundary
        and finish as ``cancelled`` with a partial result.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.cancel_requested = True
            if job.status == "pending":
                job.status = "cancelled"
                job.finished = time.time()
                if job_id in self._queue:
                    self._queue.remove(job_id)
        if job is not None:
            self._save(job)
            metrics().counter("serve.jobs.cancelled").inc()
        return job

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (the ``/metrics`` summary)."""
        with self._lock:
            jobs = list(self._jobs.values())
        tally = {state: 0 for state in JOB_STATES}
        for job in jobs:
            tally[job.status] = tally.get(job.status, 0) + 1
        return tally

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no job is pending or running (tests, shutdown)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            tally = self.counts()
            if tally["pending"] == 0 and tally["running"] == 0:
                return True
            time.sleep(0.02)
        return False

    # -- execution -------------------------------------------------------

    def _runner(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._queue:
                    return
                job = self._jobs[self._queue.pop(0)]
                if job.status != "pending":
                    continue
                job.status = "running"
                job.started = time.time()
            self._save(job)
            try:
                self._run_job(job)
            except BaseException as error:  # noqa: BLE001 — recorded
                job.status = "failed"
                job.error = f"{type(error).__name__}: {error}"
                job.finished = time.time()
                metrics().counter("serve.jobs.failed").inc()
                _LOG.warning(
                    "job failed %s", kv(job=job.id, error=job.error)
                )
            self._save(job)

    def _run_job(self, job: Job) -> None:
        from repro.core.problem import Problem
        from repro.dse import Explorer, ExplorerConfig

        params = job.params
        bundle = resolve_system(params["system"])
        problem = Problem(
            applications=bundle.applications,
            architecture=bundle.architecture,
        )
        ckpt_dir = self.checkpoint_dir(job.id)
        config = ExplorerConfig(
            population_size=params["population"],
            offspring_size=params["population"],
            archive_size=params["population"],
            generations=params["generations"],
            seed=params["seed"],
            workers=params["workers"],
            eval_retries=params["eval_retries"],
            eval_soft_budget_seconds=params["eval_budget"],
            quarantine_path=str(self.job_dir(job.id) / "quarantine.jsonl"),
            checkpoint_dir=str(ckpt_dir),
            checkpoint_every=params["checkpoint_every"],
            # A restarted job continues its recorded trajectory; a fresh
            # one starts clean (no spurious no-snapshot warning).
            resume=self._latest_checkpoint(job.id) is not None,
        )
        deadline = (
            time.monotonic() + params["deadline_seconds"]
            if params.get("deadline_seconds") is not None
            else None
        )

        def progress(generation: int, _stats) -> None:
            job.generations_run = generation
            if job.cancel_requested:
                raise KeyboardInterrupt
            if deadline is not None and time.monotonic() > deadline:
                job.cancel_requested = True
                job.error = "deadline exceeded"
                raise KeyboardInterrupt

        explorer = Explorer(problem, config)
        timer = metrics().timer("serve.job_seconds")
        # A restarted job carries the submitting request's trace context
        # in its record, so the resumed run continues the original trace
        # instead of starting a fresh root.
        trace_ctx = SpanContext.from_dict(job.trace)
        try:
            with activate(trace_ctx), trace_span(
                "serve.job",
                job=job.id,
                resume=config.resume,
                restarts=job.restarts,
            ), timer.time():
                result = explorer.run(progress=progress)
        finally:
            if explorer.quarantine is not None:
                explorer.quarantine.close()
        job.generations_run = result.generations_run
        job.checkpoint_generation = self._latest_checkpoint(job.id)
        job.result = exploration_result_to_dict(result)
        job.finished = time.time()
        if result.statistics.interrupted and job.cancel_requested:
            job.status = "cancelled"
            metrics().counter("serve.jobs.cancelled").inc()
        else:
            job.status = "done"
            metrics().counter("serve.jobs.done").inc()

    def shutdown(self) -> None:
        """Stop the runner threads (running jobs keep their checkpoints)."""
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
