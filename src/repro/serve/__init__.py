"""Concurrent analysis/exploration service over :mod:`repro.api`.

Stdlib-only JSON-over-HTTP serving layer: micro-batching with
request dedup (:mod:`repro.serve.batcher`), a bounded worker pool with
backpressure (:mod:`repro.serve.pool`), durable, crash-resumable
exploration jobs (:mod:`repro.serve.jobs`), a pre-fork multi-process
supervisor (:mod:`repro.serve.supervisor`), a disk-backed cross-process
schedule-cache tier (:mod:`repro.serve.cachestore`), and a fault-
injection chaos harness (:mod:`repro.serve.chaos`).  Start one with
``repro serve``; talk to it with ``repro submit`` or the retrying
:class:`~repro.serve.client.ServeClient`.  See ``docs/serving.md``.
"""

from repro.serve.admission import (
    AdmissionContext,
    AdmissionController,
    BrownoutController,
    BrownoutShed,
    ClientQuotas,
    QuotaExceeded,
    TokenBucket,
)
from repro.serve.app import ReproServer, ServeConfig, ServiceUnavailable
from repro.serve.batcher import Batcher, BatchEntry
from repro.serve.cachestore import DiskCacheStore, TieredScheduleCache
from repro.serve.client import (
    DeadlineExhausted,
    RetryPolicy,
    ServeClient,
    ServeError,
)
from repro.serve.jobs import Job, JobStore
from repro.serve.pool import DeadlineExceeded, PoolSaturated, WorkerPool
from repro.serve.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "ReproServer",
    "ServeConfig",
    "ServiceUnavailable",
    "ServeClient",
    "ServeError",
    "RetryPolicy",
    "DeadlineExhausted",
    "AdmissionContext",
    "AdmissionController",
    "BrownoutController",
    "BrownoutShed",
    "ClientQuotas",
    "QuotaExceeded",
    "TokenBucket",
    "Batcher",
    "BatchEntry",
    "WorkerPool",
    "PoolSaturated",
    "DeadlineExceeded",
    "DiskCacheStore",
    "TieredScheduleCache",
    "Job",
    "JobStore",
    "Supervisor",
    "SupervisorConfig",
]
