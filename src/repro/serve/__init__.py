"""Concurrent analysis/exploration service over :mod:`repro.api`.

Stdlib-only JSON-over-HTTP serving layer: micro-batching with
request dedup (:mod:`repro.serve.batcher`), a bounded worker pool with
backpressure (:mod:`repro.serve.pool`), and durable, crash-resumable
exploration jobs (:mod:`repro.serve.jobs`).  Start one with ``repro
serve``; talk to it with ``repro submit`` or
:class:`~repro.serve.client.ServeClient`.  See ``docs/serving.md``.
"""

from repro.serve.app import ReproServer, ServeConfig
from repro.serve.batcher import Batcher, BatchEntry
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobStore
from repro.serve.pool import DeadlineExceeded, PoolSaturated, WorkerPool

__all__ = [
    "ReproServer",
    "ServeConfig",
    "ServeClient",
    "ServeError",
    "Batcher",
    "BatchEntry",
    "WorkerPool",
    "PoolSaturated",
    "DeadlineExceeded",
    "Job",
    "JobStore",
]
