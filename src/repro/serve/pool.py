"""Bounded worker pool with strict-priority admission and deadlines.

The service must degrade predictably under overload, not queue without
bound: admission happens against a fixed-capacity queue, and a full
queue rejects immediately with a ``Retry-After`` estimate instead of
letting latency grow unobserved (the standard load-shedding contract of
an analysis back-end serving many exploration clients).

The queue is **strict-priority** (mirroring the paper's criticality
classes): level 0 (critical) is always picked before level 1
(standard) before level 2 (best-effort) — so a critical request's wait
is bounded by the critical backlog alone, not the total backlog.  An
**aging floor** keeps lower levels live under bounded load: an item
that has waited longer than ``aging_seconds`` is served ahead of
younger higher-priority items, so best-effort work cannot starve
forever as long as the queue is not permanently saturated with
critical work.

Deadlines are enforced at the *pickup* boundary: a request whose
deadline elapsed while it sat in the queue fails with
:class:`DeadlineExceeded` without burning a worker on an answer nobody
is waiting for.  Python threads cannot preempt a running analysis, so a
deadline that expires mid-run is recorded (``serve.deadline_overruns``)
rather than aborted; explore jobs get cooperative cancellation at
generation boundaries instead (see :mod:`repro.serve.jobs`).
"""

import math
import queue
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import span as trace_span

_LOG = get_logger("serve")

__all__ = [
    "WorkerPool",
    "WorkItem",
    "PoolSaturated",
    "DeadlineExceeded",
    "PRIORITY_LEVELS",
    "DEFAULT_PRIORITY",
]

#: Number of strict-priority levels (mirrors the criticality classes:
#: 0 = critical, 1 = standard, 2 = best-effort).
PRIORITY_LEVELS = 3
DEFAULT_PRIORITY = 1


class PoolSaturated(ReproError):
    """The admission queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: int):
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceeded(ReproError):
    """The request's deadline elapsed before a worker could serve it."""


class WorkItem:
    """One admitted unit of work; wait on :meth:`result`."""

    __slots__ = (
        "_fn", "_deadline", "_event", "_value", "_error", "enqueued",
        "priority",
    )

    def __init__(
        self,
        fn: Callable[[], Any],
        deadline: Optional[float],
        priority: int = DEFAULT_PRIORITY,
    ):
        self._fn = fn
        #: Absolute monotonic deadline, or ``None``.
        self._deadline = deadline
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self.enqueued = time.monotonic()
        #: Strict queue level (0 is picked first).
        self.priority = priority

    def _resolve(self, value: Any = None, error: Optional[BaseException] = None):
        self._value = value
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        """Whether the item has resolved (value or error)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the outcome; re-raises the work function's error."""
        if not self._event.wait(timeout):
            raise DeadlineExceeded("timed out waiting for the worker pool")
        if self._error is not None:
            raise self._error
        return self._value

    def _run(self) -> None:
        registry = metrics()
        if self._deadline is not None and time.monotonic() > self._deadline:
            registry.counter("serve.deadline_expired").inc()
            self._resolve(error=DeadlineExceeded(
                "deadline elapsed while queued"
            ))
            return
        started = time.monotonic()
        # A root span on the worker thread: request work re-roots itself
        # onto its own trace, so this records pool mechanics (queue wait,
        # work wall time), not request semantics.
        with trace_span(
            "serve.pool_work",
            queue_seconds=round(started - self.enqueued, 6),
            priority=self.priority,
        ):
            try:
                value = self._fn()
            except BaseException as error:  # noqa: BLE001 — resolved, not lost
                self._resolve(error=error)
            else:
                self._resolve(value=value)
        if (
            self._deadline is not None
            and time.monotonic() > self._deadline
        ):
            registry.counter("serve.deadline_overruns").inc()
        registry.timer("serve.work_seconds").observe(
            time.monotonic() - started
        )


class _PriorityQueue:
    """Bounded strict-priority levels with an aging floor.

    ``get`` normally serves the lowest non-empty level index; an item
    whose wait exceeds ``aging_seconds`` jumps the strict order — among
    aged heads, the oldest wins — so starvation is bounded by the aging
    floor whenever higher-priority load leaves any pickup slots at all.
    Shutdown sentinels (``None``) are delivered only once every level is
    empty, so pending work drains before the workers exit.
    """

    def __init__(self, maxsize: int, aging_seconds: float):
        self.maxsize = maxsize
        self.aging_seconds = aging_seconds
        self._levels: List[deque] = [deque() for _ in range(PRIORITY_LEVELS)]
        self._sentinels = 0
        self._size = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def put_nowait(self, item: Optional[WorkItem]) -> None:
        with self._not_empty:
            if item is None:
                self._sentinels += 1
            else:
                if self._size >= self.maxsize:
                    raise queue.Full
                priority = getattr(item, "priority", DEFAULT_PRIORITY)
                level = min(max(priority, 0), PRIORITY_LEVELS - 1)
                self._levels[level].append(item)
                self._size += 1
            self._not_empty.notify()

    def put(self, item: Optional[WorkItem], block: bool = True,
            timeout: Optional[float] = None) -> None:
        """`queue.Queue`-shaped alias (tests inject items directly)."""
        self.put_nowait(item)

    def _pick(self) -> Optional[WorkItem]:
        """The next item under strict priority + aging (lock held)."""
        now = time.monotonic()
        aged: Optional[WorkItem] = None
        aged_level = -1
        for level, items in enumerate(self._levels):
            if not items:
                continue
            head = items[0]
            if (
                now - head.enqueued > self.aging_seconds
                and (aged is None or head.enqueued < aged.enqueued)
            ):
                aged, aged_level = head, level
        if aged is not None:
            self._levels[aged_level].popleft()
            if aged_level > 0:
                metrics().counter("serve.pool.aged_promotions").inc()
            self._size -= 1
            return aged
        for items in self._levels:
            if items:
                self._size -= 1
                return items.popleft()
        return None

    def get(self) -> Optional[WorkItem]:
        """Block for the next item; ``None`` means shut down."""
        with self._not_empty:
            while True:
                if self._size:
                    item = self._pick()
                    if item is not None:
                        return item
                if self._sentinels:
                    self._sentinels -= 1
                    return None
                self._not_empty.wait()

    def qsize(self) -> int:
        with self._lock:
            return self._size

    def depths(self) -> List[int]:
        with self._lock:
            return [len(items) for items in self._levels]


class WorkerPool:
    """Fixed worker threads draining a bounded strict-priority queue."""

    def __init__(
        self,
        workers: int = 4,
        queue_size: int = 64,
        aging_seconds: float = 5.0,
    ):
        if workers < 1:
            raise ReproError("pool workers must be >= 1")
        if queue_size < 1:
            raise ReproError("pool queue size must be >= 1")
        if aging_seconds <= 0:
            raise ReproError("pool aging floor must be positive")
        self._queue = _PriorityQueue(queue_size, aging_seconds)
        self._workers = workers
        self._closed = False
        # EWMAs feeding the Retry-After estimate and the brownout
        # controller's queue-delay signal.
        self._ewma_seconds = 0.05
        self._queue_delay_ewma = 0.0
        self._ewma_lock = threading.Lock()
        self._threads: List[threading.Thread] = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"serve-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def queue_depth(self) -> int:
        """Items currently admitted but not picked up."""
        return self._queue.qsize()

    def class_depths(self) -> Dict[int, int]:
        """Queued items per priority level (0 = critical)."""
        return dict(enumerate(self._queue.depths()))

    def retry_after(self) -> int:
        """Whole seconds a rejected client should wait before retrying."""
        with self._ewma_lock:
            ewma = self._ewma_seconds
        backlog = self._queue.qsize()
        return max(1, int(math.ceil(ewma * (backlog + 1) / self._workers)))

    def estimated_delay(self) -> float:
        """Estimated queue delay in seconds (the brownout signal).

        Combines the EWMA of observed pickup waits with a backlog
        forecast (``depth * work / workers``): the forecast reacts
        immediately when the queue grows while every worker is pinned —
        exactly when pickup observations go stale.
        """
        with self._ewma_lock:
            observed = self._queue_delay_ewma
            work = self._ewma_seconds
        forecast = self._queue.qsize() * work / self._workers
        return max(observed, forecast)

    def submit(
        self,
        fn: Callable[[], Any],
        deadline_seconds: Optional[float] = None,
        priority: int = DEFAULT_PRIORITY,
    ) -> WorkItem:
        """Admit ``fn``; raises :class:`PoolSaturated` when the queue is full."""
        if self._closed:
            raise ReproError("worker pool is shut down")
        deadline = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        item = WorkItem(fn, deadline, priority=priority)
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            metrics().counter("serve.rejected").inc()
            retry = self.retry_after()
            _LOG.warning(
                "admission queue full %s",
                kv(depth=self._queue.qsize(), retry_after=retry),
            )
            raise PoolSaturated(
                f"admission queue full ({self._queue.maxsize} pending)",
                retry_after=retry,
            ) from None
        self._record_depths()
        return item

    def _record_depths(self) -> None:
        registry = metrics()
        depths = self._queue.depths()
        registry.gauge("serve.queue_depth").set(sum(depths))
        for level, depth in enumerate(depths):
            registry.gauge(f"serve.queue_depth.p{level}").set(depth)

    def _worker_loop(self, index: int) -> None:
        """Self-healing wrapper: a worker that dies is brought back.

        :meth:`WorkItem._run` already contains item failures, so an
        escape here means infrastructure trouble (telemetry failure,
        ``MemoryError``, a poisoned item).  Losing the thread would
        silently shrink the pool until nothing drains the queue, so the
        loop logs, counts, and resumes instead.
        """
        while True:
            try:
                self._worker()
                return  # sentinel: clean shutdown
            except BaseException as error:  # noqa: BLE001 — must survive
                if self._closed:
                    return
                metrics().counter("serve.pool.worker_respawns").inc()
                _LOG.warning(
                    "pool worker died, resuming %s",
                    kv(worker=index, error=f"{type(error).__name__}: {error}"),
                )

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            self._record_depths()
            queued = time.monotonic() - item.enqueued
            metrics().timer("serve.queue_seconds").observe(queued)
            started = time.monotonic()
            item._run()
            elapsed = time.monotonic() - started
            with self._ewma_lock:
                self._ewma_seconds += 0.2 * (elapsed - self._ewma_seconds)
                self._queue_delay_ewma += 0.2 * (
                    queued - self._queue_delay_ewma
                )

    def shutdown(self) -> None:
        """Stop accepting work and let the workers drain and exit."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put_nowait(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
