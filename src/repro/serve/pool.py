"""Bounded worker pool with backpressure and queue-time deadlines.

The service must degrade predictably under overload, not queue without
bound: admission happens against a fixed-capacity queue, and a full
queue rejects immediately with a ``Retry-After`` estimate instead of
letting latency grow unobserved (the standard load-shedding contract of
an analysis back-end serving many exploration clients).

Deadlines are enforced at the *pickup* boundary: a request whose
deadline elapsed while it sat in the queue fails with
:class:`DeadlineExceeded` without burning a worker on an answer nobody
is waiting for.  Python threads cannot preempt a running analysis, so a
deadline that expires mid-run is recorded (``serve.deadline_overruns``)
rather than aborted; explore jobs get cooperative cancellation at
generation boundaries instead (see :mod:`repro.serve.jobs`).
"""

import math
import queue
import threading
import time
from typing import Any, Callable, List, Optional

from repro.errors import ReproError
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import span as trace_span

_LOG = get_logger("serve")

__all__ = ["WorkerPool", "WorkItem", "PoolSaturated", "DeadlineExceeded"]


class PoolSaturated(ReproError):
    """The admission queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: int):
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceeded(ReproError):
    """The request's deadline elapsed before a worker could serve it."""


class WorkItem:
    """One admitted unit of work; wait on :meth:`result`."""

    __slots__ = ("_fn", "_deadline", "_event", "_value", "_error", "enqueued")

    def __init__(self, fn: Callable[[], Any], deadline: Optional[float]):
        self._fn = fn
        #: Absolute monotonic deadline, or ``None``.
        self._deadline = deadline
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self.enqueued = time.monotonic()

    def _resolve(self, value: Any = None, error: Optional[BaseException] = None):
        self._value = value
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        """Whether the item has resolved (value or error)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the outcome; re-raises the work function's error."""
        if not self._event.wait(timeout):
            raise DeadlineExceeded("timed out waiting for the worker pool")
        if self._error is not None:
            raise self._error
        return self._value

    def _run(self) -> None:
        registry = metrics()
        if self._deadline is not None and time.monotonic() > self._deadline:
            registry.counter("serve.deadline_expired").inc()
            self._resolve(error=DeadlineExceeded(
                "deadline elapsed while queued"
            ))
            return
        started = time.monotonic()
        # A root span on the worker thread: request work re-roots itself
        # onto its own trace, so this records pool mechanics (queue wait,
        # work wall time), not request semantics.
        with trace_span(
            "serve.pool_work",
            queue_seconds=round(started - self.enqueued, 6),
        ):
            try:
                value = self._fn()
            except BaseException as error:  # noqa: BLE001 — resolved, not lost
                self._resolve(error=error)
            else:
                self._resolve(value=value)
        if (
            self._deadline is not None
            and time.monotonic() > self._deadline
        ):
            registry.counter("serve.deadline_overruns").inc()
        registry.timer("serve.work_seconds").observe(
            time.monotonic() - started
        )


class WorkerPool:
    """Fixed worker threads draining a bounded admission queue."""

    def __init__(self, workers: int = 4, queue_size: int = 64):
        if workers < 1:
            raise ReproError("pool workers must be >= 1")
        if queue_size < 1:
            raise ReproError("pool queue size must be >= 1")
        self._queue: "queue.Queue[Optional[WorkItem]]" = queue.Queue(queue_size)
        self._workers = workers
        self._closed = False
        # EWMA of work durations feeding the Retry-After estimate.
        self._ewma_seconds = 0.05
        self._ewma_lock = threading.Lock()
        self._threads: List[threading.Thread] = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"serve-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def queue_depth(self) -> int:
        """Items currently admitted but not picked up."""
        return self._queue.qsize()

    def retry_after(self) -> int:
        """Whole seconds a rejected client should wait before retrying."""
        with self._ewma_lock:
            ewma = self._ewma_seconds
        backlog = self._queue.qsize()
        return max(1, int(math.ceil(ewma * (backlog + 1) / self._workers)))

    def submit(
        self,
        fn: Callable[[], Any],
        deadline_seconds: Optional[float] = None,
    ) -> WorkItem:
        """Admit ``fn``; raises :class:`PoolSaturated` when the queue is full."""
        if self._closed:
            raise ReproError("worker pool is shut down")
        deadline = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        item = WorkItem(fn, deadline)
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            metrics().counter("serve.rejected").inc()
            retry = self.retry_after()
            _LOG.warning(
                "admission queue full %s",
                kv(depth=self._queue.qsize(), retry_after=retry),
            )
            raise PoolSaturated(
                f"admission queue full ({self._queue.maxsize} pending)",
                retry_after=retry,
            ) from None
        metrics().gauge("serve.queue_depth").set(self._queue.qsize())
        return item

    def _worker_loop(self, index: int) -> None:
        """Self-healing wrapper: a worker that dies is brought back.

        :meth:`WorkItem._run` already contains item failures, so an
        escape here means infrastructure trouble (telemetry failure,
        ``MemoryError``, a poisoned item).  Losing the thread would
        silently shrink the pool until nothing drains the queue, so the
        loop logs, counts, and resumes instead.
        """
        while True:
            try:
                self._worker()
                return  # sentinel: clean shutdown
            except BaseException as error:  # noqa: BLE001 — must survive
                if self._closed:
                    return
                metrics().counter("serve.pool.worker_respawns").inc()
                _LOG.warning(
                    "pool worker died, resuming %s",
                    kv(worker=index, error=f"{type(error).__name__}: {error}"),
                )

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            metrics().gauge("serve.queue_depth").set(self._queue.qsize())
            queued = time.monotonic() - item.enqueued
            metrics().timer("serve.queue_seconds").observe(queued)
            started = time.monotonic()
            item._run()
            elapsed = time.monotonic() - started
            with self._ewma_lock:
                self._ewma_seconds += 0.2 * (elapsed - self._ewma_seconds)

    def shutdown(self) -> None:
        """Stop accepting work and let the workers drain and exit."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
