"""The ``repro serve`` HTTP service (stdlib only).

JSON over HTTP on :class:`http.server.ThreadingHTTPServer` — one
connection thread per request, all actual work funneled through the
:class:`~repro.serve.batcher.Batcher` (dedup + micro-batching) into the
bounded :class:`~repro.serve.pool.WorkerPool`.  One concurrency model
(threads) is used end to end, matching the DSE's thread-pool evaluator;
no third-party dependency is introduced.

Endpoints
---------
``POST /v1/analyze``      synchronous WCRT analysis (batched, deduped)
``POST /v1/simulate``     synchronous Monte-Carlo campaign (ditto)
``POST /v1/explore``      async exploration job -> 202 + job id
``POST /v1/shard``        one island-coordination step (epoch/migrate/
                          merge) as a durable job -> 202 + job id
``GET  /v1/jobs/<id>``    job status/result
``POST /v1/jobs/<id>/cancel``  cooperative cancel (also DELETE)
``GET  /healthz``         liveness + queue depth
``GET  /metrics``         metrics registry + shared-cache stats + jobs
                          (``?format=prometheus`` for text exposition)

Tracing: a ``traceparent`` request header (W3C syntax) makes the
request's spans continue the caller's trace; every response carries the
serving trace ID in ``X-Repro-Trace``.  Trace context rides *headers
only* — request bodies stay untouched, so dedup keys and the
byte-identity guarantee are unaffected.

Error contract: 400 malformed/invalid request, 404 unknown route or
job, 429 + ``Retry-After`` when the admission queue is full, 503 +
``Retry-After`` while draining, 504 when a request's deadline elapsed
in the queue, 500 otherwise.  Every error body is
``{"error": {"type": ..., "message": ...}}``.

Resilience: ``reuse_port=True`` binds with ``SO_REUSEPORT`` so a
pre-fork supervisor (:mod:`repro.serve.supervisor`) can run N worker
processes on one port with kernel load-balancing; ``cache_dir`` installs
the disk-backed :class:`~repro.serve.cachestore.TieredScheduleCache`
process-wide so warm analysis state survives restarts and is shared
across workers; :meth:`ReproServer.drain` is the graceful-shutdown
sequence (stop accepting, shed new compute with 503, finish in-flight
work, park explore jobs on their final checkpoints, exit).
"""

import json
import os
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.errors import ReproError
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import (
    RESPONSE_TRACE_HEADER,
    TRACEPARENT_HEADER,
    activate,
    capture_context,
    from_traceparent,
    span as trace_span,
)
from repro.serve.admission import (
    AdmissionContext,
    AdmissionController,
    BrownoutController,
    BrownoutShed,
    ClientQuotas,
    QuotaExceeded,
)
from repro.serve.batcher import Batcher
from repro.serve.encoding import (
    analysis_result_to_dict,
    canonical_bytes,
    montecarlo_result_to_dict,
    parse_analyze_request,
    parse_explore_request,
    parse_shard_request,
    parse_simulate_request,
    request_digest,
)
from repro.serve.jobs import JobStore
from repro.serve.pool import DeadlineExceeded, PoolSaturated, WorkerPool

_LOG = get_logger("serve")

__all__ = ["ServeConfig", "ReproServer", "ServiceUnavailable"]

#: Upper bound on accepted request bodies (64 MiB covers DT-large many
#: times over; anything bigger is a client bug, not a workload).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Connection threads waiting on a shared in-flight entry give up after
#: this long even without a client deadline (prevents waiter leaks).
DEFAULT_WAIT_SECONDS = 600.0


class ServeConfig:
    """Tuning knobs of one server instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8352,
        workers: int = 4,
        queue_size: int = 64,
        max_batch: int = 8,
        batch_window_seconds: float = 0.002,
        state_dir: Optional[str] = None,
        job_workers: int = 1,
        cache_capacity: Optional[int] = None,
        allow_local_paths: bool = False,
        cache_dir: Optional[str] = None,
        reuse_port: bool = False,
        drain_timeout: float = 30.0,
        worker_id: Optional[int] = None,
        supervisor_status_path: Optional[str] = None,
        quota_rps: Optional[float] = None,
        quota_burst: Optional[float] = None,
        brownout: bool = False,
        brownout_enter: float = 0.75,
        brownout_exit: float = 0.25,
        brownout_dwell: float = 2.0,
        aging_seconds: float = 5.0,
    ):
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_size = queue_size
        self.max_batch = max_batch
        self.batch_window_seconds = batch_window_seconds
        self.state_dir = state_dir
        self.job_workers = job_workers
        self.cache_capacity = cache_capacity
        #: Whether a request's ``system`` field may name a server-local
        #: file (off by default: clients could read arbitrary paths).
        self.allow_local_paths = allow_local_paths
        #: Directory of the disk-backed schedule-cache tier (shared
        #: across worker processes and restarts); ``None`` keeps the
        #: in-memory LRU only.
        self.cache_dir = cache_dir
        #: Bind with ``SO_REUSEPORT`` (pre-fork workers share the port).
        self.reuse_port = reuse_port
        #: Default budget of :meth:`ReproServer.drain`.
        self.drain_timeout = drain_timeout
        #: Identity under a supervisor (reported in ``/healthz``).
        self.worker_id = worker_id
        #: The supervisor's status file, surfaced in ``/healthz`` and
        #: ``/metrics`` so any worker can report fleet state.
        self.supervisor_status_path = supervisor_status_path
        #: Per-client token-bucket quota (``None`` disables quotas).
        self.quota_rps = quota_rps
        self.quota_burst = quota_burst
        #: Brownout controller (overload shedding/degradation stages).
        self.brownout = brownout
        self.brownout_enter = brownout_enter
        self.brownout_exit = brownout_exit
        self.brownout_dwell = brownout_dwell
        #: Aging floor of the strict-priority admission queue.
        self.aging_seconds = aging_seconds


def _run_in_context(ctx, fn: Callable[[Dict[str, Any]], bytes], params) -> bytes:
    """Run one request body under the submitting request's trace context.

    The computation executes on a pool worker thread; ``ctx`` was
    captured on the request thread, so activating it here re-roots the
    worker and the ``api.*`` spans join the request's trace.  Deduped
    waiters attach to the first submitter's entry, so shared work is
    attributed to the trace that actually ran it.
    """
    with activate(ctx):
        return fn(params)


def _run_analyze(params: Dict[str, Any]) -> bytes:
    """Execute one analyze request; returns the canonical response body.

    Runs through :func:`repro.api.analyze` with the *shared* fast path:
    memoization + warm starts against the process-wide schedule cache,
    pruning off — so the response is byte-identical to a cold
    ``repro.api.analyze`` (the PR-3 equality guarantee) while repeated
    ``sched()`` runs are amortized across the whole process.
    """
    from repro.api import analyze
    from repro.core.fastpath import FastPathConfig
    from repro.serve.encoding import bundle_from_payload

    bundle = bundle_from_payload(params["system"])
    result = analyze(
        bundle,
        method=params["method"],
        backend=params["backend"],
        granularity=params["granularity"],
        dropped=tuple(params["dropped"]),
        policy=params["policy"],
        bus_contention=params["bus_contention"],
        fast_path=(
            FastPathConfig.shared() if params["method"] == "proposed" else None
        ),
    )
    return canonical_bytes(analysis_result_to_dict(result))


def _run_analyze_degraded(params: Dict[str, Any]) -> bytes:
    """Brownout fallback: bounded fast-window analysis, honestly marked.

    Forces ``backend="fast"`` (the bounded fast-window heuristic the
    analysis guard also falls back to) with no shared fast path, so a
    degraded run can never write into the schedule cache that backs the
    byte-identity guarantee.  The response carries ``"degraded": true``
    and is keyed under a *separate* dedup digest, so degraded bytes can
    never be replayed to a client that was promised full service.
    """
    from repro.api import analyze
    from repro.serve.encoding import bundle_from_payload

    bundle = bundle_from_payload(params["system"])
    result = analyze(
        bundle,
        method="proposed",
        backend="fast",
        granularity=params["granularity"],
        dropped=tuple(params["dropped"]),
        policy=params["policy"],
        bus_contention=params["bus_contention"],
        fast_path=None,
    )
    payload = analysis_result_to_dict(result)
    payload["degraded"] = True
    return canonical_bytes(payload)


def _run_simulate(params: Dict[str, Any]) -> bytes:
    """Execute one simulate request; returns the canonical response body."""
    from repro.api import simulate
    from repro.serve.encoding import bundle_from_payload

    bundle = bundle_from_payload(params["system"])
    result = simulate(
        bundle,
        profiles=params["profiles"],
        seed=params["seed"],
        dropped=tuple(params["dropped"]),
        policy=params["policy"],
        max_faults=params["max_faults"],
        worst_bias=params["worst_bias"],
    )
    return canonical_bytes(montecarlo_result_to_dict(result))


class ReproServer:
    """Owns the HTTP listener and the concurrency machinery behind it."""

    def __init__(self, config: Optional[ServeConfig] = None):
        from repro.core.fastpath import (
            SHARED_CACHE_CAPACITY,
            configure_shared_cache,
            shared_cache,
        )

        self.config = config or ServeConfig()
        if self.config.cache_dir:
            from repro.serve.cachestore import (
                DiskCacheStore,
                TieredScheduleCache,
            )

            store = DiskCacheStore(self.config.cache_dir)
            configure_shared_cache(
                TieredScheduleCache(
                    store,
                    capacity=(
                        self.config.cache_capacity or SHARED_CACHE_CAPACITY
                    ),
                )
            )
        else:
            # Touch the shared cache early so /metrics reports it from
            # the first request and a capacity override applies.
            shared_cache(self.config.cache_capacity)
        self._draining = False
        self._active = 0
        self._active_lock = threading.Lock()
        self.pool = WorkerPool(
            workers=self.config.workers,
            queue_size=self.config.queue_size,
            aging_seconds=self.config.aging_seconds,
        )
        self.admission = AdmissionController(
            self.pool,
            quotas=(
                ClientQuotas(
                    self.config.quota_rps, burst=self.config.quota_burst
                )
                if self.config.quota_rps is not None
                else None
            ),
            brownout=(
                BrownoutController(
                    enter_seconds=self.config.brownout_enter,
                    exit_seconds=self.config.brownout_exit,
                    dwell_seconds=self.config.brownout_dwell,
                )
                if self.config.brownout
                else None
            ),
        )
        self.batcher = Batcher(
            self.pool,
            max_batch=self.config.max_batch,
            window_seconds=self.config.batch_window_seconds,
        )
        self.jobs: Optional[JobStore] = (
            JobStore(self.config.state_dir, workers=self.config.job_workers)
            if self.config.state_dir
            else None
        )
        self.started = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        if self.jobs is not None:
            recovered = self.jobs.recover()
            if recovered:
                _LOG.info(
                    "resuming %d unfinished job(s) %s",
                    len(recovered),
                    kv(jobs=",".join(recovered)),
                )

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """Bound (host, port) — port resolved after :meth:`start`."""
        if self._httpd is None:
            return (self.config.host, self.config.port)
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Bind and serve on a background thread (non-blocking)."""
        self._bind()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-listener",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("serving %s", kv(url=self.url))

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread (the CLI entry point).

        Returns when the serve loop is interrupted (``KeyboardInterrupt``
        or :meth:`request_stop`); the caller decides between a graceful
        :meth:`drain` and a hard :meth:`close`.
        """
        self._bind()
        _LOG.info("serving %s", kv(url=self.url))
        self._httpd.serve_forever()

    def _bind(self) -> None:
        if self._httpd is not None:
            raise ReproError("server already started")
        server = self

        class Handler(_RequestHandler):
            app = server

        class Listener(ThreadingHTTPServer):
            daemon_threads = True
            # Never join handler threads in server_close: kept-alive
            # client connections sit in readline() until the peer closes
            # and would block shutdown indefinitely.
            block_on_close = False
            # The default accept backlog (5) resets connections under a
            # concurrent burst; admission control belongs to the worker
            # pool, not the TCP listen queue.
            request_queue_size = 128

            def server_bind(self) -> None:
                if server.config.reuse_port:
                    if not hasattr(socket, "SO_REUSEPORT"):
                        raise ReproError(
                            "SO_REUSEPORT is not available on this platform"
                        )
                    self.socket.setsockopt(
                        socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                    )
                super().server_bind()

            def handle_error(self, request, client_address) -> None:
                # Aborted/reset/half-open client connections are a
                # normal hazard of serving (and a staple of the chaos
                # harness) — one log line, not a stack trace.
                kind = sys.exc_info()[0]
                if kind is not None and issubclass(
                    kind, (ConnectionError, TimeoutError, socket.timeout)
                ):
                    metrics().counter("serve.connection_errors").inc()
                    _LOG.debug(
                        "client connection error %s",
                        kv(peer=client_address[0], error=kind.__name__),
                    )
                    return
                super().handle_error(request, client_address)

        self._httpd = Listener((self.config.host, self.config.port), Handler)

    # -- drain bookkeeping -----------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether the server is in its graceful-shutdown window."""
        return self._draining

    def _request_started(self) -> None:
        with self._active_lock:
            self._active += 1

    def _request_finished(self) -> None:
        with self._active_lock:
            self._active -= 1

    @property
    def active_requests(self) -> int:
        """HTTP requests currently inside a handler."""
        with self._active_lock:
            return self._active

    def request_stop(self) -> None:
        """Stop the serve loop from any thread (signal-handler safe).

        Only flips the shutdown flag — never blocks — so it may run
        inside a signal handler while :meth:`serve_forever` owns the
        main thread.  The loop exits at its next poll tick.
        """
        httpd = self._httpd
        if httpd is not None:
            # BaseServer.shutdown() would deadlock called from the
            # serving thread; setting the request flag is enough.
            httpd._BaseServer__shutdown_request = True

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop accepting, finish or park, then stop.

        Sequence: (1) mark draining — new compute requests are shed with
        503 + ``Retry-After`` while job polls stay served; (2) stop the
        accept loop; (3) wait for in-flight HTTP requests; (4) drain the
        batcher and pool; (5) park running explore jobs on a final
        committed checkpoint (status back to ``pending``) so the next
        incarnation resumes identical trajectories.  Returns whether
        everything stopped within ``timeout`` seconds.
        """
        timeout = self.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout
        already = self._draining
        self._draining = True
        if not already:
            metrics().counter("serve.drains").inc()
            _LOG.info("draining %s", kv(timeout=timeout))
        httpd = self._httpd
        if httpd is not None and self._thread is not None:
            # Background-thread mode: stop the accept loop from here.
            httpd.shutdown()
        clean = True
        while True:
            active = self.active_requests
            if active <= 0:
                break
            if time.monotonic() > deadline:
                clean = False
                _LOG.warning(
                    "drain timed out %s", kv(active_requests=active)
                )
                break
            time.sleep(0.02)
        self.batcher.shutdown()
        self.pool.shutdown()
        if self.jobs is not None:
            remaining = max(5.0, deadline - time.monotonic())
            clean = self.jobs.drain(timeout=remaining) and clean
        if httpd is not None:
            httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        _LOG.info("drained %s", kv(clean=clean))
        return clean

    def close(self) -> None:
        """Stop the listener and the machinery (hard stop, no drain)."""
        if self._httpd is not None:
            if self._thread is not None:
                self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.batcher.shutdown()
        self.pool.shutdown()
        if self.jobs is not None:
            self.jobs.shutdown()

    # -- endpoint bodies -------------------------------------------------

    def _shed_if_draining(self) -> None:
        """Refuse new compute while draining (honest 503 + Retry-After).

        Job polls and health/metrics stay served so clients can observe
        the drain; only work that would extend it is shed.  The hint is
        short: a supervisor restarts workers within its backoff window.
        """
        if self._draining:
            raise ServiceUnavailable("server is draining", retry_after=1)

    def _admit(
        self,
        endpoint: str,
        payload: Dict[str, Any],
        admission: Optional[AdmissionContext],
    ) -> AdmissionContext:
        """Fold body admission fields into the context and admit.

        Body fields (``criticality``/``client``) are *popped* from the
        payload before canonical parsing, so admission metadata can
        never split the dedup digest of an otherwise identical request.
        Raises the typed rejections mapped by ``_dispatch`` (400 / 429 /
        503 / 504).
        """
        ctx = admission if admission is not None else AdmissionContext()
        ctx.absorb_body_fields(payload)
        ctx.decision = self.admission.admit(endpoint, ctx)
        return ctx

    def handle_analyze(
        self,
        payload: Dict[str, Any],
        admission: Optional[AdmissionContext] = None,
    ) -> Tuple[int, bytes]:
        self._shed_if_draining()
        actx = self._admit("analyze", payload, admission)
        params = parse_analyze_request(
            payload, allow_paths=self.config.allow_local_paths
        )
        deadline = actx.merged_deadline(params["deadline_seconds"])
        if actx.decision.degraded:
            # Degraded bytes live under their own digest: they must
            # never be replayed to a request admitted at full service.
            key = request_digest("analyze-degraded", params)
            run = _run_analyze_degraded
        else:
            key = request_digest("analyze", params)
            run = _run_analyze
        ctx = capture_context()
        entry = self.batcher.submit(
            key,
            lambda: _run_in_context(ctx, run, params),
            deadline_seconds=deadline,
            priority=actx.decision.priority,
        )
        body = entry.result(deadline or DEFAULT_WAIT_SECONDS)
        return 200, body

    def handle_simulate(
        self,
        payload: Dict[str, Any],
        admission: Optional[AdmissionContext] = None,
    ) -> Tuple[int, bytes]:
        self._shed_if_draining()
        actx = self._admit("simulate", payload, admission)
        params = parse_simulate_request(
            payload, allow_paths=self.config.allow_local_paths
        )
        deadline = actx.merged_deadline(params["deadline_seconds"])
        key = request_digest("simulate", params)
        ctx = capture_context()
        entry = self.batcher.submit(
            key,
            lambda: _run_in_context(ctx, _run_simulate, params),
            deadline_seconds=deadline,
            priority=actx.decision.priority,
        )
        body = entry.result(deadline or DEFAULT_WAIT_SECONDS)
        return 200, body

    def handle_explore(
        self,
        payload: Dict[str, Any],
        admission: Optional[AdmissionContext] = None,
    ) -> Tuple[int, bytes]:
        self._shed_if_draining()
        if self.jobs is None:
            raise ReproError(
                "exploration jobs need a durable state dir; "
                "restart the server with --state-dir"
            )
        actx = self._admit("explore", payload, admission)
        params = parse_explore_request(
            payload, allow_paths=self.config.allow_local_paths
        )
        deadline = actx.merged_deadline(params["deadline_seconds"])
        if deadline is not None:
            # The merged budget becomes the job's cooperative deadline
            # (jobs check it at generation boundaries).
            params["deadline_seconds"] = deadline
        ctx = capture_context()
        job = self.jobs.create(
            params,
            trace=ctx.to_dict() if ctx is not None else None,
            idempotency_key=params.get("idempotency_key"),
        )
        body = canonical_bytes(
            {"id": job.id, "status": job.status, "url": f"/v1/jobs/{job.id}"}
        )
        return 202, body

    def handle_shard(
        self,
        payload: Dict[str, Any],
        admission: Optional[AdmissionContext] = None,
    ) -> Tuple[int, bytes]:
        """One island-coordination step as a durable job (202 + id).

        The building block of fleet-mode exploration: a client-side
        coordinator posts ``epoch``/``migrate``/``merge`` steps sharing
        a ``run_id`` and deterministic idempotency keys, so a restarted
        coordinator re-attaches to finished steps instead of re-running
        them.
        """
        self._shed_if_draining()
        if self.jobs is None:
            raise ReproError(
                "shard jobs need a durable state dir; "
                "restart the server with --state-dir"
            )
        actx = self._admit("shard", payload, admission)
        params = parse_shard_request(
            payload, allow_paths=self.config.allow_local_paths
        )
        deadline = actx.merged_deadline(params["deadline_seconds"])
        if deadline is not None:
            params["deadline_seconds"] = deadline
        ctx = capture_context()
        job = self.jobs.create(
            params,
            trace=ctx.to_dict() if ctx is not None else None,
            idempotency_key=params.get("idempotency_key"),
        )
        body = canonical_bytes(
            {"id": job.id, "status": job.status, "url": f"/v1/jobs/{job.id}"}
        )
        return 202, body

    def handle_job(self, job_id: str) -> Tuple[int, bytes]:
        if self.jobs is None:
            raise _NotFound("no job store configured")
        job = self.jobs.get(job_id)
        if job is None:
            raise _NotFound(f"unknown job {job_id!r}")
        return 200, canonical_bytes(job.to_dict())

    def handle_cancel(self, job_id: str) -> Tuple[int, bytes]:
        if self.jobs is None:
            raise _NotFound("no job store configured")
        job = self.jobs.cancel(job_id)
        if job is None:
            raise _NotFound(f"unknown job {job_id!r}")
        return 200, canonical_bytes(job.to_dict(with_result=False))

    def _supervisor_status(self) -> Optional[Dict[str, Any]]:
        """The supervisor's status-file contents, if one manages us."""
        path = self.config.supervisor_status_path
        if not path:
            return None
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _worker_info(self) -> Dict[str, Any]:
        """This process's identity and health, for ``/healthz``."""
        return {
            "id": self.config.worker_id,
            "pid": os.getpid(),
            "draining": self._draining,
            "active_requests": self.active_requests,
        }

    def handle_healthz(self) -> Tuple[int, bytes]:
        body = canonical_bytes(
            {
                "status": "draining" if self._draining else "ok",
                "uptime_seconds": round(time.time() - self.started, 3),
                "queue_depth": self.pool.queue_depth,
                "brownout_stage": (
                    self.admission.brownout.stage
                    if self.admission.brownout is not None
                    else 0
                ),
                "jobs": self.jobs.counts() if self.jobs is not None else None,
                "worker": self._worker_info(),
                "supervisor": self._supervisor_status(),
            }
        )
        return 200, body

    def handle_metrics(self) -> Tuple[int, bytes]:
        from repro.api import cache_stats

        body = canonical_bytes(
            {
                "uptime_seconds": round(time.time() - self.started, 3),
                "metrics": metrics().snapshot(),
                "admission": self.admission.snapshot(),
                "schedule_cache": cache_stats(),
                "jobs": self.jobs.counts() if self.jobs is not None else None,
                "worker": self._worker_info(),
                "supervisor": self._supervisor_status(),
            }
        )
        return 200, body

    def handle_metrics_prometheus(self) -> Tuple[int, bytes, str]:
        """``GET /metrics?format=prometheus`` — text exposition 0.0.4."""
        lines = list(metrics().prometheus_lines())
        lines.append("# TYPE repro_uptime_seconds gauge")
        lines.append(
            f"repro_uptime_seconds {round(time.time() - self.started, 3)}"
        )
        if self.jobs is not None:
            lines.append("# TYPE repro_jobs gauge")
            for state, count in sorted(self.jobs.counts().items()):
                lines.append(f'repro_jobs{{state="{state}"}} {count}')
        lines.append("# TYPE repro_draining gauge")
        lines.append(f"repro_draining {1 if self._draining else 0}")
        from repro.serve.admission import CLASSES

        admission = self.admission.snapshot()
        registry = metrics()
        lines.append("# TYPE repro_admission_brownout_stage gauge")
        lines.append(
            f"repro_admission_brownout_stage {admission['brownout_stage']}"
        )
        depths = self.pool.class_depths()
        lines.append("# TYPE repro_admission_queue_depth gauge")
        for index, cls in enumerate(CLASSES):
            lines.append(
                f'repro_admission_queue_depth{{class="{cls}"}} '
                f"{depths.get(index, 0)}"
            )
        lines.append("# TYPE repro_admission_shed_total counter")
        for cls in CLASSES:
            lines.append(
                f'repro_admission_shed_total{{class="{cls}"}} '
                f"{admission['shed'][cls]}"
            )
        lines.append("# TYPE repro_admission_degraded_total counter")
        lines.append(
            f"repro_admission_degraded_total {admission['degraded']}"
        )
        lines.append("# TYPE repro_admission_quota_rejected_total counter")
        lines.append(
            "repro_admission_quota_rejected_total "
            f"{admission['quota_rejected']}"
        )
        lines.append("# TYPE repro_admission_expired_total counter")
        lines.append(
            "repro_admission_expired_total "
            f"{registry.counter('serve.admission.expired').value}"
        )
        supervisor = self._supervisor_status()
        if supervisor is not None:
            lines.append("# TYPE repro_supervisor_restarts_total counter")
            lines.append(
                "repro_supervisor_restarts_total "
                f"{supervisor.get('restarts_total', 0)}"
            )
            states: Dict[str, int] = {}
            for worker in supervisor.get("workers", []):
                state = str(worker.get("state", "unknown"))
                states[state] = states.get(state, 0) + 1
            lines.append("# TYPE repro_supervisor_workers gauge")
            for state, count in sorted(states.items()):
                lines.append(
                    f'repro_supervisor_workers{{state="{state}"}} {count}'
                )
        body = ("\n".join(lines) + "\n").encode("utf-8")
        return 200, body, "text/plain; version=0.0.4; charset=utf-8"


class _NotFound(ReproError):
    """Route or resource does not exist (404)."""


class ServiceUnavailable(ReproError):
    """The server is draining; retry after ``retry_after`` seconds (503)."""

    def __init__(self, message: str, retry_after: int = 1):
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes requests into the owning :class:`ReproServer`."""

    app: ReproServer  # bound by the per-server subclass
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    #: Per-socket timeout: a peer that stops sending mid-request (slow
    #: read, half-open connection) cannot pin a handler thread forever —
    #: ``handle_one_request`` turns the timeout into a connection close.
    timeout = 30.0
    #: Per-request trace headers (``X-Repro-Trace``); reset at the top
    #: of every ``do_*`` so kept-alive connections never leak a stale ID.
    _trace_headers: Optional[Dict[str, str]] = None

    # -- plumbing --------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: A003 — stdlib signature
        _LOG.debug("http %s", fmt % args)

    def _body_length(self) -> int:
        try:
            return int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # Cannot tell where this request's body ends, so the
            # connection cannot be reused safely.
            self.close_connection = True
            raise ReproError("malformed Content-Length header") from None

    def _read_json(self) -> Dict[str, Any]:
        length = self._body_length()
        if length <= 0:
            raise ReproError("request body required")
        if length > MAX_BODY_BYTES:
            # Rejected without reading the body: the unread bytes would
            # be parsed as the next request line on a kept-alive
            # connection, so it must close.
            self.close_connection = True
            raise ReproError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise ReproError(f"malformed JSON body: {error}") from None

    def _discard_body(self) -> None:
        """Consume an unparsed request body so keep-alive stays in sync."""
        try:
            length = self._body_length()
        except ReproError:
            return  # close_connection already set
        if length <= 0:
            return
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            return
        self.rfile.read(length)

    def _send(
        self,
        status: int,
        body: bytes,
        extra_headers: Optional[Dict[str, str]] = None,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell the client, too — BaseHTTPRequestHandler only stops
            # its own keep-alive loop, it never advertises the close.
            self.send_header("Connection", "close")
        headers = dict(self._trace_headers or {})
        headers.update(extra_headers or {})
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(
        self,
        status: int,
        error: BaseException,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        metrics().counter("serve.errors").inc()
        body = canonical_bytes(
            {
                "error": {
                    "type": type(error).__name__,
                    "message": str(error),
                }
            }
        )
        self._send(status, body, extra_headers)

    def _dispatch(self, handler, *args) -> None:
        registry = metrics()
        started = time.monotonic()
        endpoint = handler.__name__.replace("handle_", "")
        registry.counter(f"serve.requests.{endpoint}").inc()
        remote_ctx = from_traceparent(self.headers.get(TRACEPARENT_HEADER))
        self.app._request_started()
        try:
            # The request span adopts the caller's traceparent (if any)
            # and covers the handler body — including the wait on the
            # batcher entry, so queue time is attributed to the request.
            with activate(remote_ctx), trace_span(
                "serve.request", endpoint=endpoint
            ) as request_span:
                trace_id = getattr(request_span, "trace_id", None)
                if trace_id:
                    self._trace_headers = {RESPONSE_TRACE_HEADER: trace_id}
                result = handler(*args)
            status, body = result[0], result[1]
            content_type = (
                result[2] if len(result) > 2 else "application/json"
            )
            self._send(status, body, content_type=content_type)
        except PoolSaturated as error:
            self._send_error(
                429, error, {"Retry-After": str(error.retry_after)}
            )
        except QuotaExceeded as error:
            self._send_error(
                429, error, {"Retry-After": str(error.retry_after)}
            )
        except BrownoutShed as error:
            self._send_error(
                503, error, {"Retry-After": str(error.retry_after)}
            )
        except ServiceUnavailable as error:
            self._send_error(
                503, error, {"Retry-After": str(error.retry_after)}
            )
        except DeadlineExceeded as error:
            self._send_error(504, error)
        except _NotFound as error:
            self._send_error(404, error)
        except ReproError as error:
            self._send_error(400, error)
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as error:  # noqa: BLE001 — 500 boundary
            _LOG.warning(
                "internal error %s",
                kv(endpoint=endpoint, error=f"{type(error).__name__}: {error}"),
            )
            self._send_error(500, error)
        finally:
            self.app._request_finished()
            registry.timer(f"serve.latency.{endpoint}").observe(
                time.monotonic() - started
            )
            registry.histogram(
                "serve.latency_ms",
                buckets=(1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
                         5000, 10000),
            ).observe((time.monotonic() - started) * 1000.0)

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        self._trace_headers = None
        raw_path, _, query = self.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        app = self.app
        if path == "/healthz":
            self._dispatch(app.handle_healthz)
        elif path == "/metrics":
            wants = parse_qs(query).get("format", [""])[-1]
            if wants == "prometheus":
                self._dispatch(app.handle_metrics_prometheus)
            else:
                self._dispatch(app.handle_metrics)
        elif path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            if "/" in job_id or not job_id:
                self._send_error(404, _NotFound(f"no such route: {path}"))
            else:
                self._dispatch(app.handle_job, job_id)
        else:
            self._send_error(404, _NotFound(f"no such route: {path}"))

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        self._trace_headers = None
        path = self.path.split("?", 1)[0].rstrip("/")
        app = self.app
        compute = {
            "/v1/analyze": app.handle_analyze,
            "/v1/simulate": app.handle_simulate,
            "/v1/explore": app.handle_explore,
            "/v1/shard": app.handle_shard,
        }
        try:
            if path in compute:
                # Body first, headers second: the body must be consumed
                # before any 400 so a kept-alive connection stays in
                # sync with the request framing.
                payload = self._read_json()
                admission = AdmissionContext.from_headers(self.headers)
                self._dispatch(compute[path], payload, admission)
            elif path.startswith("/v1/jobs/") and path.endswith("/cancel"):
                job_id = path[len("/v1/jobs/"):-len("/cancel")]
                self._discard_body()
                self._dispatch(app.handle_cancel, job_id)
            else:
                self._discard_body()
                self._send_error(404, _NotFound(f"no such route: {path}"))
        except ReproError as error:
            # _read_json failures (body errors) land here.
            self._send_error(400, error)

    def do_DELETE(self) -> None:  # noqa: N802 — stdlib naming
        self._trace_headers = None
        path = self.path.split("?", 1)[0].rstrip("/")
        self._discard_body()
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            self._dispatch(self.app.handle_cancel, job_id)
        else:
            self._send_error(404, _NotFound(f"no such route: {path}"))
