"""Micro-batching and in-flight dedup in front of the worker pool.

Exploration clients hammer an analysis service with *near-simultaneous,
frequently identical* requests (a GA population evaluating against the
same system, retries, mirrored dashboards).  Two mechanisms exploit
that:

* **Dedup** — requests are keyed by their canonical digest
  (:func:`repro.serve.encoding.request_digest`).  A request whose key
  matches one that is still pending or in flight *attaches* to it
  instead of computing again: all waiters receive the same response
  bytes, so deduped responses are byte-identical by construction
  (``serve.dedup.hits``).
* **Micro-batching** — unique pending requests are coalesced for a short
  window (a few milliseconds) and dispatched to the pool as one batch
  occupying one worker slot.  Entries of a batch run back-to-back on one
  thread against the process-wide schedule cache, so a burst warms the
  cache for its own tail (``serve.batches`` / ``serve.batched``).

Non-identical requests still share ``sched()`` runs one layer down: the
process-wide :class:`~repro.core.fastpath.ScheduleCache` is keyed by the
canonical :meth:`~repro.sched.jobs.JobSet.fingerprint`, so any two
requests inducing an identical job set reuse one back-end invocation.
"""

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.logging import get_logger, kv
from repro.obs.metrics import metrics
from repro.obs.trace import span as trace_span
from repro.serve.pool import (
    DEFAULT_PRIORITY,
    PRIORITY_LEVELS,
    DeadlineExceeded,
    WorkerPool,
)

_LOG = get_logger("serve")

__all__ = ["Batcher", "BatchEntry"]


class BatchEntry:
    """One unique computation plus every request waiting on it."""

    __slots__ = (
        "key", "_fn", "_event", "_value", "_error", "waiters", "deadline",
        "priority",
    )

    def __init__(
        self,
        key: str,
        fn: Callable[[], Any],
        deadline: Optional[float] = None,
        priority: int = DEFAULT_PRIORITY,
    ):
        self.key = key
        self._fn = fn
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None
        #: Number of requests sharing this entry (1 = no dedup).
        self.waiters = 1
        #: Absolute monotonic deadline after which running the entry is
        #: pointless — the *loosest* over all attached waiters (``None``
        #: if any waiter set no deadline), so dedup can never tighten
        #: what an individual request asked for.
        self.deadline = deadline
        #: Strict queue level — the *most urgent* over all attached
        #: waiters, so dedup can never demote what a critical request
        #: asked for (mirrors ``relax_deadline``, in the other
        #: direction).
        self.priority = priority

    def relax_deadline(self, deadline: Optional[float]) -> None:
        """Widen the entry deadline for a newly attached waiter."""
        if self.deadline is None:
            return
        if deadline is None:
            self.deadline = None
        else:
            self.deadline = max(self.deadline, deadline)

    def run(self) -> None:
        """Execute the computation and release every waiter."""
        try:
            self._value = self._fn()
        except BaseException as error:  # noqa: BLE001 — delivered to waiters
            self._error = error
        self._event.set()

    def resolve_error(self, error: BaseException) -> None:
        """Fail every waiter without running (pool rejection path)."""
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        """Whether the entry has resolved (value or error)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the shared computation resolves."""
        if not self._event.wait(timeout):
            raise DeadlineExceeded("timed out waiting for a batched request")
        if self._error is not None:
            raise self._error
        return self._value


class Batcher:
    """Coalesces submissions by key and dispatches them in micro-batches."""

    def __init__(
        self,
        pool: WorkerPool,
        max_batch: int = 8,
        window_seconds: float = 0.002,
    ):
        if max_batch < 1:
            raise ReproError("max batch size must be >= 1")
        if window_seconds < 0:
            raise ReproError("batch window must be >= 0")
        self._pool = pool
        self._max_batch = max_batch
        self._window = window_seconds
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        #: Per-priority pending maps (key -> entry, accepted but not yet
        #: dispatched).  Batches are single-priority and drained
        #: most-urgent level first, so a batch's pool priority honestly
        #: describes every entry inside it.
        self._pending: List["OrderedDict[str, BatchEntry]"] = [
            OrderedDict() for _ in range(PRIORITY_LEVELS)
        ]
        #: key -> entry, for every pending entry regardless of level.
        self._pending_keys: Dict[str, BatchEntry] = {}
        #: key -> entry, dispatched and not yet resolved.
        self._inflight: Dict[str, BatchEntry] = {}
        self._closed = False
        self._drainer = threading.Thread(
            target=self._drain_loop, name="serve-batcher", daemon=True
        )
        self._drainer.start()

    def submit(
        self,
        key: str,
        fn: Callable[[], Any],
        deadline_seconds: Optional[float] = None,
        priority: int = DEFAULT_PRIORITY,
    ) -> BatchEntry:
        """Accept one request; identical in-flight requests are shared.

        Raises :class:`~repro.serve.pool.PoolSaturated` only later, at
        dispatch time, delivered through the entry (admission itself is
        unbounded but tiny: entries hold closures, not results).
        """
        registry = metrics()
        deadline = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        priority = min(max(priority, 0), PRIORITY_LEVELS - 1)
        with self._lock:
            if self._closed:
                raise ReproError("batcher is shut down")
            entry = self._pending_keys.get(key) or self._inflight.get(key)
            if entry is not None:
                entry.waiters += 1
                entry.relax_deadline(deadline)
                if priority < entry.priority and key in self._pending_keys:
                    # A more critical waiter attached: promote the still
                    # pending entry to its level (an in-flight entry is
                    # already past queueing, nothing left to promote).
                    del self._pending[entry.priority][key]
                    entry.priority = priority
                    self._pending[priority][key] = entry
                    registry.counter("serve.dedup.promoted").inc()
                registry.counter("serve.dedup.hits").inc()
                return entry
            # The deadline is enforced per entry at batch pickup (see
            # ``_dispatch``) — never as a min over the whole batch, so
            # one short-deadline request cannot expire its batchmates.
            entry = BatchEntry(key, fn, deadline=deadline, priority=priority)
            self._pending[priority][key] = entry
            self._pending_keys[key] = entry
            self._wakeup.notify()
            return entry

    def _drain_loop(self) -> None:
        while True:
            with self._lock:
                while not self._pending_keys and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._pending_keys:
                    return
                # Let the coalescing window elapse so a burst of identical
                # requests lands on one entry before dispatch.
                if self._window > 0:
                    self._wakeup.wait(self._window)
                # Drain the most urgent non-empty level; a batch never
                # mixes levels, so its pool priority holds for every
                # entry inside it.
                batch: List[BatchEntry] = []
                level = next(
                    (i for i, d in enumerate(self._pending) if d), None
                )
                if level is None:
                    continue
                pending = self._pending[level]
                while pending and len(batch) < self._max_batch:
                    key, entry = pending.popitem(last=False)
                    del self._pending_keys[key]
                    self._inflight[key] = entry
                    batch.append(entry)
            self._dispatch(batch, level)

    def _dispatch(self, batch: List[BatchEntry], priority: int) -> None:
        registry = metrics()
        registry.counter("serve.batches").inc()
        if len(batch) > 1:
            registry.counter("serve.batched").inc(len(batch))
        registry.histogram("serve.batch_size").observe(float(len(batch)))

        def run_batch(entries: List[BatchEntry] = batch) -> None:
            # Deadlines are checked here, per entry, at pickup — never
            # delegated to the pool's whole-item deadline.  The pool
            # path would drop ``run_batch`` wholesale on expiry, leaving
            # every entry unresolved and still registered in
            # ``_inflight``: waiters would hang until their own wait
            # timeout and the key would be poisoned for all future
            # identical requests.  Here an expired entry is first
            # unregistered (so new submissions start a fresh entry) and
            # then failed, while its batchmates still run.
            try:
                with trace_span(
                    "serve.batch",
                    size=len(entries),
                    window_ms=self._window * 1000,
                ) as batch_span:
                    executed = 0
                    for entry in entries:
                        with self._lock:
                            expired = (
                                entry.deadline is not None
                                and time.monotonic() > entry.deadline
                            )
                            if expired:
                                self._inflight.pop(entry.key, None)
                        if expired:
                            registry.counter("serve.deadline_expired").inc()
                            entry.resolve_error(
                                DeadlineExceeded("deadline elapsed while queued")
                            )
                            continue
                        entry.run()
                        executed += 1
                        with self._lock:
                            self._inflight.pop(entry.key, None)
                    batch_span.set_attribute("executed", executed)
            finally:
                # ``entry.run`` contains entry failures, so reaching here
                # with unresolved entries means the worker thread itself
                # is dying (infrastructure error, injected kill).  Fail
                # and unregister them: a waiter must get a typed,
                # retryable error, never a hang, and the dedup key must
                # not stay poisoned for future identical requests.
                unresolved = [e for e in entries if not e.done]
                if unresolved:
                    registry.counter("serve.batch.orphaned").inc(
                        len(unresolved)
                    )
                    with self._lock:
                        for entry in unresolved:
                            self._inflight.pop(entry.key, None)
                    for entry in unresolved:
                        entry.resolve_error(
                            ReproError("batch worker died mid-batch")
                        )

        try:
            self._pool.submit(run_batch, priority=priority)
        except ReproError as error:
            _LOG.warning(
                "batch dispatch rejected %s",
                kv(size=len(batch), error=str(error)),
            )
            with self._lock:
                for entry in batch:
                    self._inflight.pop(entry.key, None)
            for entry in batch:
                entry.resolve_error(error)

    def shutdown(self) -> None:
        """Stop accepting submissions; pending entries still dispatch."""
        with self._lock:
            self._closed = True
            self._wakeup.notify()
        self._drainer.join(timeout=5.0)
